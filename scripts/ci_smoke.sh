#!/usr/bin/env bash
# CI smoke runner: one place for every `python -m repro ...` smoke the
# workflow used to inline.  Each subcommand is a fast end-to-end check
# of one subsystem; JSON-emitting smokes tee their payloads into
# $SMOKE_OUT so the workflow can upload them as artifacts.
#
# Usage:
#   scripts/ci_smoke.sh <serve|chaos|fleet-chaos|profile|kernels|sim|sweep|search|control|all>
#
# Environment:
#   SMOKE_OUT   directory for JSON artifacts (default /tmp/repro-smoke)
set -euo pipefail

export PYTHONPATH="${PYTHONPATH:-src}"
OUT="${SMOKE_OUT:-/tmp/repro-smoke}"
mkdir -p "$OUT"

smoke_serve() {
  echo "== smoke: serving engine"
  python -m repro serve-bench \
    --requests 64 --workers 2 --max-batch 8 \
    --concurrency 16 --calibration 64 --skip-baseline \
    --json | tee "$OUT/serve.json" >/dev/null
  python - "$OUT/serve.json" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["report"]["completed"] == 64, payload["report"]
assert payload["client_errors"] == 0
print(f"serve smoke: {payload['report']['throughput_ips']:.0f} img/s, "
      f"p99 {payload['report']['latency_ms_p99']:.1f} ms")
EOF
}

smoke_chaos() {
  echo "== smoke: seeded chaos, zero lost futures"
  python -m repro serve-bench \
    --requests 256 --workers 2 --max-batch 8 \
    --concurrency 16 --calibration 64 --skip-baseline \
    --chaos 0 --deadline-ms 500 --degrade fixed4 \
    --json | tee "$OUT/chaos.json" >/dev/null
  python - "$OUT/chaos.json" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["lost"] == 0, payload
print(f"chaos smoke: {payload['accounted']}/{payload['submitted']} "
      f"accounted, {payload['injected_faults']} faults injected")
EOF
}

smoke_fleet_chaos() {
  echo "== smoke: fleet chaos (2 replicas, one killed mid-run)"
  # --crash-after makes replica 1 die after two batches; the CLI exits
  # non-zero unless the monitor respawned it (restarts >= 1) and every
  # future resolved (lost == 0)
  python -m repro serve-bench \
    --requests 128 --max-batch 8 --concurrency 16 \
    --calibration 32 --skip-baseline \
    --replicas 2 --crash-after 2 \
    --json | tee "$OUT/fleet_chaos.json" >/dev/null
  python - "$OUT/fleet_chaos.json" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["lost"] == 0, payload
assert payload["fleet"]["restarts"] >= 1, payload["fleet"]
assert payload["report"]["completed"] == 128, payload["report"]
print(f"fleet-chaos smoke: {payload['fleet']['restarts']} restart(s), "
      f"{payload['fleet']['resubmissions']} resubmission(s), 0 lost")
EOF
}

smoke_profile() {
  echo "== smoke: energy/latency profiler"
  python -m repro profile --precision fixed8 --limit 64
}

smoke_kernels() {
  echo "== smoke: fused kernels (per-unit table + bitwise parity gate)"
  python -m repro profile --backend fused --precision fixed8 --limit 64
  python -m repro profile --backend fused --network convnet \
    --precision fixed4 --limit 32
  python -m pytest -q tests/kernels/test_parity.py
}

smoke_sim() {
  echo "== smoke: cycle-level simulator cross-check"
  python -m repro simulate --network lenet_small --precision fixed8 \
    --json | tee "$OUT/sim.json" >/dev/null
  python -m repro simulate --network lenet --validate
}

smoke_sweep() {
  echo "== smoke: parallel precision sweep"
  python -m repro sweep \
    --network lenet_small --workers 2 \
    --precisions float32 fixed8 binary \
    --n-train 128 --n-test 64 --float-epochs 1 --qat-epochs 1 \
    --cache-dir /tmp/repro-sweep-cache \
    --json | tee "$OUT/sweep.json" >/dev/null
}

smoke_search() {
  echo "== smoke: mixed-precision & width search -> promoted channel"
  rm -rf /tmp/repro-search-cache /tmp/repro-search-registry
  python -m repro search \
    --task lenet_small --energy-budget 50 \
    --generations 2 --population 3 --survivors 3 \
    --widths 0.5 1.0 --weight-bits 2 4 8 \
    --n-train 256 --n-test 96 --float-epochs 1 --qat-epochs 1 \
    --cache-dir /tmp/repro-search-cache \
    --registry /tmp/repro-search-registry \
    --json | tee "$OUT/search.json" >/dev/null
  python - "$OUT/search.json" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
assert payload["promoted"], payload.get("rejected")
assert payload["frontier"], payload
assert all(p["energy_uj"] <= 50.0 for p in payload["frontier"]), payload
print(f"search smoke: {payload['evaluated']} evaluated, "
      f"{len(payload['frontier'])} frontier point(s), "
      f"{len(payload['promoted'])} promoted, "
      f"dominates_fixed_grid={payload['dominates_fixed_grid']}")
EOF
}

smoke_control() {
  echo "== smoke: closed-loop autotuner under a flash crowd"
  # exit status is the verdict: non-zero unless the SLO held and no
  # request was lost, so the scenario itself is the assertion
  python -m repro serve-bench \
    --autotune --scenario flash_crowd --scenario-time-scale 0.2 \
    --workers 1 --max-batch 8 --slo-ms 8 --calibration 64 \
    --json | tee "$OUT/control.json" >/dev/null
  python - "$OUT/control.json" <<'EOF'
import json, sys
payload = json.load(open(sys.argv[1]))
control = payload["control"]
assert control["passed"], control
assert control["attainment"] >= control["attainment_target"], control
assert control["lost"] == 0, control
assert control["knob_trajectory"], control
print(f"control smoke: attainment {100 * control['attainment']:.1f}% "
      f"over {control['windows']} windows, "
      f"{len(control['actions'])} action(s), "
      f"energy saved {control['energy_saved_pct']:.1f}%")
EOF
}

usage() {
  grep '^#   scripts/' "$0" | sed 's/^# *//'
  exit 2
}

[ $# -ge 1 ] || usage
for target in "$@"; do
  case "$target" in
    serve)        smoke_serve ;;
    chaos)        smoke_chaos ;;
    fleet-chaos)  smoke_fleet_chaos ;;
    profile)      smoke_profile ;;
    kernels)      smoke_kernels ;;
    sim)          smoke_sim ;;
    sweep)        smoke_sweep ;;
    search)       smoke_search ;;
    control)      smoke_control ;;
    all)          smoke_serve; smoke_chaos; smoke_fleet_chaos; \
                  smoke_profile; smoke_kernels; smoke_sim; smoke_sweep; \
                  smoke_search; smoke_control ;;
    *)            echo "unknown smoke target: $target" >&2; usage ;;
  esac
done
