#!/usr/bin/env bash
# End-to-end registry lifecycle smoke for CI: train a tiny sweep,
# publish the artifacts, promote through the Pareto gate, serve the
# active artifact, roll back, and verify the prior digest is active
# again.  Mirrors docs/registry.md; any step failing fails the run.
set -euo pipefail

ROOT="${1:-$(mktemp -d)}"
mkdir -p "$ROOT"
export PYTHONPATH="${PYTHONPATH:-src}"

echo "== registry smoke: root=$ROOT"

python -m repro sweep --network lenet_small \
  --precisions float32 fixed8 \
  --n-train 128 --n-test 64 --float-epochs 1 --qat-epochs 0 \
  --no-cache --publish "$ROOT" --json > "$ROOT/sweep.json"

digest_for() {
  python - "$ROOT/sweep.json" "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as handle:
    payload = json.load(handle)
print(next(a["digest"] for a in payload["artifacts"]
           if a["precision"] == sys.argv[2]))
EOF
}

FLOAT_DIGEST=$(digest_for float32)
FIXED_DIGEST=$(digest_for fixed8)
echo "== published float32=$FLOAT_DIGEST fixed8=$FIXED_DIGEST"
python -m repro registry list --root "$ROOT"

# v1: the float baseline (no incumbent, the gate trivially passes).
python -m repro registry promote --root "$ROOT" --channel prod "$FLOAT_DIGEST"
# v2: fixed8 is strictly cheaper on energy, so the incumbent can never
# dominate it — the Pareto gate must admit this promotion.
python -m repro registry promote --root "$ROOT" --channel prod "$FIXED_DIGEST"

# Serve the active artifact; the exit code is non-zero on any client
# error or lost request.
python -m repro registry serve --root "$ROOT" --channel prod \
  --requests 32 --concurrency 8 --workers 2

# Roll back and verify the prior digest is active again.
python -m repro registry rollback --root "$ROOT" --channel prod

active_digest() {
  python - "$ROOT" <<'EOF'
import json, os, sys
with open(os.path.join(sys.argv[1], "channels", "prod.json")) as handle:
    payload = json.load(handle)
entry = next(v for v in payload["versions"] if v["version"] == payload["active"])
print(entry["digest"])
EOF
}

ACTIVE=$(active_digest)
if [ "$ACTIVE" != "$FLOAT_DIGEST" ]; then
  echo "rollback did not restore the prior digest:" \
       "active=$ACTIVE expected=$FLOAT_DIGEST" >&2
  exit 1
fi
echo "== rollback restored v1 ($FLOAT_DIGEST)"

# -- fleet canary rollouts -------------------------------------------
# Healthy canary: the fixed8 candidate runs on one of two replicas,
# beats the float incumbent's error rate/p99, and is auto-promoted.
# --expect makes the CLI exit non-zero on any other outcome.
python -m repro serve-bench --registry "$ROOT" --channel prod \
  --replicas 2 --requests 64 --concurrency 8 --max-batch 8 \
  --calibration 32 --skip-baseline \
  --canary "$FIXED_DIGEST" --canary-min-requests 10 \
  --expect promoted --json > "$ROOT/canary_promote.json"

ACTIVE=$(active_digest)
if [ "$ACTIVE" != "$FIXED_DIGEST" ]; then
  echo "healthy canary did not promote the candidate:" \
       "active=$ACTIVE expected=$FIXED_DIGEST" >&2
  exit 1
fi
echo "== healthy canary promoted fixed8 ($FIXED_DIGEST)"

# Regressing canary: redeploy the float artifact as a canary with its
# forward path sabotaged; the controller must roll it back and leave
# the channel pointer untouched.
python -m repro serve-bench --registry "$ROOT" --channel prod \
  --replicas 2 --requests 64 --concurrency 8 --max-batch 8 \
  --calibration 32 --skip-baseline \
  --canary "$FLOAT_DIGEST" --canary-min-requests 10 --sabotage-canary \
  --expect rolled_back --json > "$ROOT/canary_rollback.json"

ACTIVE=$(active_digest)
if [ "$ACTIVE" != "$FIXED_DIGEST" ]; then
  echo "sabotaged canary moved the channel pointer:" \
       "active=$ACTIVE expected=$FIXED_DIGEST" >&2
  exit 1
fi
echo "== sabotaged canary rolled back, channel still on $FIXED_DIGEST"
echo "== registry smoke OK"
