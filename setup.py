"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail; this shim enables the legacy ``pip install -e . --no-use-pep517``
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
