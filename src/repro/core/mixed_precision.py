"""Per-layer mixed precision — the paper's future-work extension.

Section VI: "we plan to develop architectures which support multiple
radix point locations between layers.  As discussed in V-B, this
feature may reduce the accuracy degradation significantly for lower
precision networks."  The base library already places an independent
radix point per tensor; this module goes one step further and assigns
an independent *bit-width* per weight tensor:

* :class:`MixedPrecisionNetwork` — quantized-inference wrapper with a
  per-layer weight precision assignment (activations share one width);
* :func:`greedy_bit_allocation` — sensitivity-driven search: starting
  from a uniform high-precision assignment, repeatedly lower the bit
  width of the layer whose quantization hurts accuracy least, while
  the total accuracy drop stays inside a budget;
* :func:`assignment_weight_kb` — parameter memory of an assignment
  (the objective the search trades accuracy against).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.precision import PrecisionKind, PrecisionSpec
from repro.core.factory import make_quantizers
from repro.core.quantized import QuantizedNetwork
from repro.core.quantizers import Quantizer
from repro.errors import ConfigurationError
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential
from repro.nn.tensor import Parameter


class MixedPrecisionNetwork(QuantizedNetwork):
    """Quantized inference with per-weight-tensor precision.

    Args:
        network: the float network (parameters shared, as in the base).
        assignment: weight-parameter name -> :class:`PrecisionSpec`.
            Every weight tensor of ``network`` must be assigned.
        input_bits: activation/feature-map width (one radix per tensor
            is still chosen dynamically by the range trackers).
    """

    def __init__(
        self,
        network: Sequential,
        assignment: Dict[str, PrecisionSpec],
        input_bits: int = 16,
    ):
        weight_names = {p.name for p in network.weight_parameters()}
        missing = weight_names - set(assignment)
        if missing:
            raise ConfigurationError(
                f"assignment missing weight tensors: {sorted(missing)}"
            )
        extra = set(assignment) - weight_names
        if extra:
            raise ConfigurationError(
                f"assignment names unknown tensors: {sorted(extra)}"
            )
        # the wrapper-level spec carries the activation width; weight
        # bits vary per layer, so the headline number is the maximum
        max_weight_bits = max(spec.weight_bits for spec in assignment.values())
        headline = PrecisionSpec(
            kind=PrecisionKind.FIXED,
            weight_bits=max_weight_bits,
            input_bits=input_bits,
            key=f"mixed{max_weight_bits}",
        )
        super().__init__(network, headline)
        self.assignment = dict(assignment)
        self._per_param: Dict[int, Quantizer] = {}
        for param in network.weight_parameters():
            spec = assignment[param.name]
            quantizer, _ = make_quantizers(spec)
            self._per_param[id(param)] = quantizer

    def weight_quantizer_for(self, param: Parameter) -> Quantizer:
        return self._per_param[id(param)]

    def describe(self) -> str:
        """One line per layer: tensor name and its assigned precision."""
        lines = [f"MixedPrecisionNetwork({self.network.name!r}):"]
        for param in self.network.weight_parameters():
            lines.append(f"  {param.name:<24} {self.assignment[param.name].label}")
        return "\n".join(lines)


def assignment_weight_kb(
    network: Sequential, assignment: Dict[str, PrecisionSpec]
) -> float:
    """Parameter memory (KB) of a mixed-precision assignment.

    Biases are counted at the widest assigned precision, matching the
    uniform-precision accounting in :mod:`repro.hw.memory_footprint`.
    """
    total_bits = 0
    widest = max(spec.weight_bits for spec in assignment.values())
    weight_ids = {id(p) for p in network.weight_parameters()}
    for param in network.weight_parameters():
        total_bits += param.size * assignment[param.name].weight_bits
    for param in network.parameters():
        if id(param) not in weight_ids:
            total_bits += param.size * widest
    return total_bits / 8192.0


def greedy_bit_allocation(
    network: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    candidates: Optional[Sequence[PrecisionSpec]] = None,
    max_accuracy_drop: float = 0.02,
    input_bits: int = 16,
    calibration_images: Optional[np.ndarray] = None,
) -> Tuple[Dict[str, PrecisionSpec], List[dict]]:
    """Greedy per-layer bit allocation under an accuracy budget.

    Starting with every weight tensor at ``candidates[0]`` (the widest),
    the search repeatedly tries the next-narrower precision for each
    tensor and commits the single change that keeps the evaluated
    accuracy highest, until no change fits within ``max_accuracy_drop``
    of the float baseline.

    Returns ``(assignment, trace)`` where ``trace`` records each
    committed move (tensor, precision, accuracy, weight KB).
    """
    from repro.core.precision import get_precision

    if candidates is None:
        candidates = [
            get_precision("fixed16"),
            get_precision("fixed8"),
            get_precision("fixed4"),
        ]
    candidates = list(candidates)
    if not candidates:
        raise ConfigurationError("need at least one candidate precision")

    baseline = accuracy(network.predict(images), labels)
    floor = baseline - max_accuracy_drop
    calibration = calibration_images if calibration_images is not None else images

    assignment: Dict[str, PrecisionSpec] = {
        p.name: candidates[0] for p in network.weight_parameters()
    }
    levels = {p.name: 0 for p in network.weight_parameters()}

    def evaluate(current: Dict[str, PrecisionSpec]) -> float:
        qnet = MixedPrecisionNetwork(network, current, input_bits=input_bits)
        qnet.calibrate(calibration)
        return qnet.evaluate(images, labels)

    trace: List[dict] = [{
        "tensor": None,
        "precision": candidates[0].label,
        "accuracy": evaluate(assignment),
        "weight_kb": assignment_weight_kb(network, assignment),
    }]

    improved = True
    while improved:
        improved = False
        best_move: Optional[Tuple[str, float]] = None
        for name, level in levels.items():
            if level + 1 >= len(candidates):
                continue
            trial = dict(assignment)
            trial[name] = candidates[level + 1]
            trial_accuracy = evaluate(trial)
            if trial_accuracy >= floor and (
                best_move is None or trial_accuracy > best_move[1]
            ):
                best_move = (name, trial_accuracy)
        if best_move is not None:
            name, reached = best_move
            levels[name] += 1
            assignment[name] = candidates[levels[name]]
            trace.append({
                "tensor": name,
                "precision": assignment[name].label,
                "accuracy": reached,
                "weight_kb": assignment_weight_kb(network, assignment),
            })
            improved = True
    return assignment, trace
