"""Per-layer mixed precision — the paper's future-work extension.

Section VI: "we plan to develop architectures which support multiple
radix point locations between layers.  As discussed in V-B, this
feature may reduce the accuracy degradation significantly for lower
precision networks."  The base library already places an independent
radix point per tensor; this module goes one step further and assigns
an independent *bit-width* per weight tensor:

* :class:`MixedPrecisionNetwork` — quantized-inference wrapper with a
  per-layer weight precision assignment (activations share one width);
* :func:`greedy_bit_allocation` — sensitivity-driven search: starting
  from a uniform high-precision assignment, repeatedly lower the bit
  width of the layer whose quantization hurts accuracy least, while
  the total accuracy drop stays inside a budget;
* :func:`assignment_weight_kb` — parameter memory of an assignment
  (the objective the search trades accuracy against).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.precision import (
    LayeredPrecisionSpec,
    PrecisionKind,
    PrecisionSpec,
)
from repro.core.factory import make_quantizers
from repro.core.quantized import QuantizedNetwork
from repro.core.quantizers import Quantizer
from repro.errors import ConfigError, ConfigurationError
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential
from repro.nn.tensor import Parameter


class MixedPrecisionNetwork(QuantizedNetwork):
    """Quantized inference with per-weight-tensor precision.

    Args:
        network: the float network (parameters shared, as in the base).
        assignment: weight-parameter name -> :class:`PrecisionSpec`.
            Every weight tensor of ``network`` must be assigned.
        input_bits: activation/feature-map width (one radix per tensor
            is still chosen dynamically by the range trackers).
        headline: the spec this wrapper reports as ``self.spec``.
            Defaults to a synthetic ``mixed<maxbits>`` spec; callers
            constructing the network from a
            :class:`~repro.core.precision.LayeredPrecisionSpec` pass
            that spec so keys/labels round-trip (see
            :func:`make_quantized_network`).
    """

    def __init__(
        self,
        network: Sequential,
        assignment: Dict[str, PrecisionSpec],
        input_bits: int = 16,
        headline: Optional[PrecisionSpec] = None,
    ):
        weight_names = {p.name for p in network.weight_parameters()}
        missing = weight_names - set(assignment)
        if missing:
            raise ConfigurationError(
                f"assignment missing weight tensors: {sorted(missing)}"
            )
        extra = set(assignment) - weight_names
        if extra:
            raise ConfigurationError(
                f"assignment names unknown tensors: {sorted(extra)}"
            )
        # the wrapper-level spec carries the activation width; weight
        # bits vary per layer, so the headline number is the maximum
        if headline is None:
            max_weight_bits = max(spec.weight_bits for spec in assignment.values())
            headline = PrecisionSpec(
                kind=PrecisionKind.FIXED,
                weight_bits=max_weight_bits,
                input_bits=input_bits,
                key=f"mixed{max_weight_bits}",
            )
        super().__init__(network, headline)
        self.assignment = dict(assignment)
        self._per_param: Dict[int, Quantizer] = {}
        for param in network.weight_parameters():
            spec = assignment[param.name]
            quantizer, _ = make_quantizers(spec)
            self._per_param[id(param)] = quantizer

    def weight_quantizer_for(self, param: Parameter) -> Quantizer:
        return self._per_param[id(param)]

    @classmethod
    def from_layered(
        cls, network: Sequential, spec: "LayeredPrecisionSpec"
    ) -> "MixedPrecisionNetwork":
        """Build from a per-layer spec: widths map to weight tensors in
        network layer order (the order they are declared, the same
        order :meth:`Sequential.weight_parameters` returns)."""
        weights = network.weight_parameters()
        if len(spec.weight_bits_per_layer) != len(weights):
            raise ConfigError(
                "weight_bits_per_layer",
                f"spec {spec.key!r} assigns "
                f"{len(spec.weight_bits_per_layer)} layer widths but "
                f"{network.name!r} has {len(weights)} weight tensors",
            )
        assignment = {
            param.name: layer_spec
            for param, layer_spec in zip(weights, spec.per_layer_specs())
        }
        return cls(
            network, assignment, input_bits=spec.input_bits, headline=spec
        )

    def describe(self) -> str:
        """One line per layer: tensor name and its assigned precision."""
        lines = [f"MixedPrecisionNetwork({self.network.name!r}):"]
        for param in self.network.weight_parameters():
            lines.append(f"  {param.name:<24} {self.assignment[param.name].label}")
        return "\n".join(lines)


def make_quantized_network(
    network: Sequential,
    spec: "PrecisionSpec | str",
    **kwargs,
) -> QuantizedNetwork:
    """Quantized-inference wrapper for any parseable precision.

    The single construction point shared by sweeps, serving and the
    search: uniform specs build a plain :class:`QuantizedNetwork`,
    per-layer :class:`LayeredPrecisionSpec` s build a
    :class:`MixedPrecisionNetwork` whose reported ``spec`` is the
    layered spec itself (keys round-trip through caches and manifests).
    ``kwargs`` forward to :class:`QuantizedNetwork` for uniform specs
    (layered construction accepts none today).
    """
    spec = PrecisionSpec.parse(spec)
    if isinstance(spec, LayeredPrecisionSpec):
        if kwargs:
            raise ConfigurationError(
                f"layered precision does not accept options {sorted(kwargs)}"
            )
        return MixedPrecisionNetwork.from_layered(network, spec)
    return QuantizedNetwork(network, spec, **kwargs)


def assignment_weight_kb(
    network: Sequential, assignment: Dict[str, PrecisionSpec]
) -> float:
    """Parameter memory (KB) of a mixed-precision assignment.

    Biases are counted at the widest assigned precision, matching the
    uniform-precision accounting in :mod:`repro.hw.memory_footprint`.
    """
    total_bits = 0
    widest = max(spec.weight_bits for spec in assignment.values())
    weight_ids = {id(p) for p in network.weight_parameters()}
    for param in network.weight_parameters():
        total_bits += param.size * assignment[param.name].weight_bits
    for param in network.parameters():
        if id(param) not in weight_ids:
            total_bits += param.size * widest
    return total_bits / 8192.0


def greedy_bit_allocation(
    network: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    candidates: Optional[Sequence[PrecisionSpec]] = None,
    max_accuracy_drop: float = 0.02,
    input_bits: int = 16,
    calibration_images: Optional[np.ndarray] = None,
) -> Tuple[Dict[str, PrecisionSpec], List[dict]]:
    """Greedy per-layer bit allocation under an accuracy budget.

    Starting with every weight tensor at ``candidates[0]`` (the widest),
    the search repeatedly tries the next-narrower precision for each
    tensor and commits the single change that keeps the evaluated
    accuracy highest, until no change fits within ``max_accuracy_drop``
    of the float baseline.

    Returns ``(assignment, trace)`` where ``trace`` records each
    committed move (tensor, precision, accuracy, weight KB).
    """
    from repro.core.precision import get_precision

    if candidates is None:
        candidates = [
            get_precision("fixed16"),
            get_precision("fixed8"),
            get_precision("fixed4"),
        ]
    candidates = list(candidates)
    if not candidates:
        raise ConfigurationError("need at least one candidate precision")

    baseline = accuracy(network.predict(images), labels)
    floor = baseline - max_accuracy_drop
    calibration = calibration_images if calibration_images is not None else images

    assignment: Dict[str, PrecisionSpec] = {
        p.name: candidates[0] for p in network.weight_parameters()
    }
    levels = {p.name: 0 for p in network.weight_parameters()}

    def evaluate(current: Dict[str, PrecisionSpec]) -> float:
        qnet = MixedPrecisionNetwork(network, current, input_bits=input_bits)
        qnet.calibrate(calibration)
        return qnet.evaluate(images, labels)

    trace: List[dict] = [{
        "tensor": None,
        "precision": candidates[0].label,
        "accuracy": evaluate(assignment),
        "weight_kb": assignment_weight_kb(network, assignment),
    }]

    improved = True
    while improved:
        improved = False
        best_move: Optional[Tuple[str, float]] = None
        for name, level in levels.items():
            if level + 1 >= len(candidates):
                continue
            trial = dict(assignment)
            trial[name] = candidates[level + 1]
            trial_accuracy = evaluate(trial)
            if trial_accuracy >= floor and (
                best_move is None or trial_accuracy > best_move[1]
            ):
                best_move = (name, trial_accuracy)
        if best_move is not None:
            name, reached = best_move
            levels[name] += 1
            assignment[name] = candidates[levels[name]]
            trace.append({
                "tensor": name,
                "precision": assignment[name].label,
                "accuracy": reached,
                "weight_kb": assignment_weight_kb(network, assignment),
            })
            improved = True
    return assignment, trace
