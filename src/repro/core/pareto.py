"""Accuracy/energy design points and Pareto-frontier analysis (Fig. 4).

The paper plots every (network, precision) configuration on an
accuracy-vs-energy plane and argues that enlarged low-precision
networks dominate the full-precision baseline.  ``pareto_frontier``
extracts the non-dominated set used for that argument.

Search populations (``repro.search``) are ~100x the fig4 grid, so the
frontier extraction is a sort-based O(n log n) sweep; the original
quadratic scan survives as :func:`pareto_frontier_bruteforce`, the
oracle the property tests compare against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration.

    Attributes:
        label: display name, e.g. ``"Powers of Two++ (6,16)"``.
        accuracy: classification accuracy in percent.
        energy_uj: per-image inference energy in microjoules.
        metadata: free-form extras (network name, precision key, ...).

    Raises:
        ConfigError: if ``accuracy`` or ``energy_uj`` is NaN.  A
            diverged QAT point used to poison dominance comparisons
            silently (every NaN comparison is False, so the point was
            neither dominated nor dominating); rejecting it at
            construction makes the failure typed and attributable.
    """

    label: str
    accuracy: float
    energy_uj: float
    metadata: Dict[str, str] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if math.isnan(self.accuracy):
            raise ConfigError(
                "accuracy", f"design point {self.label!r} has NaN accuracy"
            )
        if math.isnan(self.energy_uj):
            raise ConfigError(
                "energy_uj", f"design point {self.label!r} has NaN energy"
            )


def dominates(a: DesignPoint, b: DesignPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes and
    strictly better on at least one (higher accuracy, lower energy)."""
    no_worse = a.accuracy >= b.accuracy and a.energy_uj <= b.energy_uj
    strictly_better = a.accuracy > b.accuracy or a.energy_uj < b.energy_uj
    return no_worse and strictly_better


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by increasing energy.

    Duplicate-coordinate points are all kept (none dominates the other).

    One pass over the points sorted by (energy asc, accuracy desc): an
    equal-energy group survives iff its best accuracy strictly exceeds
    the best accuracy seen at any strictly lower energy, and within a
    surviving group exactly the max-accuracy points (all duplicates)
    are kept.  O(n log n) versus the quadratic all-pairs scan kept as
    :func:`pareto_frontier_bruteforce`.
    """
    n = len(points)
    if n == 0:
        return []
    order = sorted(range(n), key=lambda i: (points[i].energy_uj, -points[i].accuracy))
    frontier: List[DesignPoint] = []
    best_cheaper_acc = -math.inf
    i = 0
    while i < n:
        energy = points[order[i]].energy_uj
        j = i
        while j < n and points[order[j]].energy_uj == energy:
            j += 1
        group = [points[order[k]] for k in range(i, j)]
        group_best = group[0].accuracy  # sorted descending within the group
        if group_best > best_cheaper_acc:
            frontier.extend(p for p in group if p.accuracy == group_best)
            best_cheaper_acc = group_best
        i = j
    return frontier


def pareto_frontier_bruteforce(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Quadratic all-pairs frontier: the test oracle for
    :func:`pareto_frontier` (identical output, O(n^2) time)."""
    frontier = [
        p for p in points
        if not any(dominates(q, p) for q in points)
    ]
    return sorted(frontier, key=lambda p: (p.energy_uj, -p.accuracy))


def dominated_by_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The complement of :func:`pareto_frontier` (diagnostics/plots)."""
    frontier = set(id(p) for p in pareto_frontier(points))
    return [p for p in points if id(p) not in frontier]
