"""Accuracy/energy design points and Pareto-frontier analysis (Fig. 4).

The paper plots every (network, precision) configuration on an
accuracy-vs-energy plane and argues that enlarged low-precision
networks dominate the full-precision baseline.  ``pareto_frontier``
extracts the non-dominated set used for that argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration.

    Attributes:
        label: display name, e.g. ``"Powers of Two++ (6,16)"``.
        accuracy: classification accuracy in percent.
        energy_uj: per-image inference energy in microjoules.
        metadata: free-form extras (network name, precision key, ...).
    """

    label: str
    accuracy: float
    energy_uj: float
    metadata: Dict[str, str] = field(default_factory=dict, compare=False, hash=False)


def dominates(a: DesignPoint, b: DesignPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` on both axes and
    strictly better on at least one (higher accuracy, lower energy)."""
    no_worse = a.accuracy >= b.accuracy and a.energy_uj <= b.energy_uj
    strictly_better = a.accuracy > b.accuracy or a.energy_uj < b.energy_uj
    return no_worse and strictly_better


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by increasing energy.

    Duplicate-coordinate points are all kept (none dominates the other).
    """
    frontier = [
        p for p in points
        if not any(dominates(q, p) for q in points)
    ]
    return sorted(frontier, key=lambda p: (p.energy_uj, -p.accuracy))


def dominated_by_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The complement of :func:`pareto_frontier` (diagnostics/plots)."""
    frontier = set(id(p) for p in pareto_frontier(points))
    return [p for p in points if id(p) not in frontier]
