"""Quantization-aware training (the paper's training-time techniques).

The paper combines two ideas (Section IV-A):

1. *Warm start* — initialize low-precision training from independently
   trained full-precision weights (Tann et al.), then fine-tune.
2. *Dual weight sets* — keep full-precision shadow weights for the
   backward pass and parameter updates while the forward pass sees
   quantized values (Courbariaux et al.); small gradient updates
   accumulate in the shadow copy until they flip a quantized value.

:class:`QATTrainer` implements both on top of the generic
:class:`repro.nn.trainer.Trainer` via its ``before_step``/``after_step``
hooks: quantized values are swapped into the shared parameters before
forward/backward, and the full-precision shadows are restored before
the optimizer applies the update.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.quantized import QuantizedNetwork
from repro.nn.losses import Loss
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.obs.metrics import get_metrics


class QATTrainer(Trainer):
    """Trainer that fine-tunes a :class:`QuantizedNetwork`.

    The optimizer must be constructed over the underlying float
    network's parameters (the shadow set).  Typical use::

        qnet = QuantizedNetwork(net, spec)
        qnet.calibrate(train_images[:256])
        optimizer = SGD(net.parameters(), lr=0.01, momentum=0.9)
        QATTrainer(qnet, optimizer).fit(...)

    With ``track_quant_error`` (default on), every evaluation also
    publishes the current per-layer weight quantization RMS error to
    the shared metrics registry as ``qat.weight_rms.<param>`` gauges —
    the per-layer error trajectory of quantization-aware training.
    """

    def __init__(
        self,
        quantized_network: QuantizedNetwork,
        optimizer: SGD,
        loss: Optional[Loss] = None,
        batch_size: int = 32,
        rng: Optional[np.random.Generator] = None,
        restore_best: bool = False,
        track_quant_error: bool = True,
    ):
        self.qnet = quantized_network
        self.track_quant_error = track_quant_error
        super().__init__(
            network=quantized_network.pipeline,
            optimizer=optimizer,
            loss=loss,
            batch_size=batch_size,
            rng=rng,
            before_step=quantized_network._swap_in_quantized,
            after_step=quantized_network._restore_shadow,
            restore_best=restore_best,
        )

    def evaluate(self, x: np.ndarray, y: np.ndarray):
        """Evaluate with quantized weights (unlike the base trainer)."""
        if self.track_quant_error:
            # Measured against the resident full-precision shadows, so
            # it must happen before the quantized swap below.
            metrics = get_metrics()
            for name, error in self.qnet.weight_quantization_errors().items():
                metrics.gauge(f"qat.weight_rms.{name}").set(error)
        with self.qnet.quantized_weights():
            return super().evaluate(x, y)


def post_training_quantize(
    network,
    spec,
    calibration_images: np.ndarray,
    batch_size: int = 64,
) -> QuantizedNetwork:
    """Quantize a trained float network without fine-tuning.

    This is the naive baseline the paper's training-time techniques
    improve on; the QAT-vs-PTQ ablation benchmark quantifies the gap.
    """
    qnet = QuantizedNetwork(network, spec)
    qnet.calibrate(calibration_images, batch_size=batch_size)
    return qnet
