"""Precision specifications and the paper's named precision registry.

A :class:`PrecisionSpec` captures one row of the paper's tables: the
representation kind, the weight bit-width ``w`` and the input/feature-
map bit-width ``in`` — written ``(w, in)`` throughout the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError


class PrecisionKind(enum.Enum):
    """The four representation families of Section IV-A."""

    FLOAT = "float"
    FIXED = "fixed"
    POW2 = "pow2"
    BINARY = "binary"


@dataclass(frozen=True)
class PrecisionSpec:
    """One (w, in) precision point.

    Attributes:
        kind: representation family.
        weight_bits: bits per weight (``w``).
        input_bits: bits per input / feature-map value (``in``).
        key: short registry key, e.g. ``"fixed8"``.
    """

    kind: PrecisionKind
    weight_bits: int
    input_bits: int
    key: str

    def __post_init__(self) -> None:
        if self.weight_bits < 1 or self.input_bits < 1:
            raise ConfigurationError("bit widths must be >= 1")
        if self.kind is PrecisionKind.BINARY and self.weight_bits != 1:
            raise ConfigurationError("binary precision requires weight_bits == 1")

    @property
    def label(self) -> str:
        """Row label in the paper's table style, e.g. ``Fixed-Point (8,8)``."""
        names = {
            PrecisionKind.FLOAT: "Floating-Point",
            PrecisionKind.FIXED: "Fixed-Point",
            PrecisionKind.POW2: "Powers of Two",
            PrecisionKind.BINARY: "Binary Net",
        }
        return f"{names[self.kind]} ({self.weight_bits},{self.input_bits})"

    @property
    def is_float(self) -> bool:
        return self.kind is PrecisionKind.FLOAT

    def __str__(self) -> str:
        return self.label


def _registry() -> Dict[str, PrecisionSpec]:
    specs = [
        PrecisionSpec(PrecisionKind.FLOAT, 32, 32, "float32"),
        PrecisionSpec(PrecisionKind.FIXED, 32, 32, "fixed32"),
        PrecisionSpec(PrecisionKind.FIXED, 16, 16, "fixed16"),
        PrecisionSpec(PrecisionKind.FIXED, 8, 8, "fixed8"),
        PrecisionSpec(PrecisionKind.FIXED, 4, 4, "fixed4"),
        PrecisionSpec(PrecisionKind.POW2, 6, 16, "pow2"),
        PrecisionSpec(PrecisionKind.BINARY, 1, 16, "binary"),
    ]
    return {spec.key: spec for spec in specs}


_REGISTRY = _registry()

#: The seven precision points of Tables III-V, in table order.
PAPER_PRECISIONS: List[PrecisionSpec] = list(_REGISTRY.values())

#: Expanded-network suffixes of Table II (ALEX, ALEX+, ALEX++).
EXPANDED_VARIANTS = ["", "+", "++"]


def get_precision(key: str) -> PrecisionSpec:
    """Look up a named precision (``float32``, ``fixed16``, ``pow2``...)."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown precision {key!r}; choose from {sorted(_REGISTRY)}"
        ) from None
