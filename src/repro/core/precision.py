"""Precision specifications and the paper's named precision registry.

A :class:`PrecisionSpec` captures one row of the paper's tables: the
representation kind, the weight bit-width ``w`` and the input/feature-
map bit-width ``in`` — written ``(w, in)`` throughout the paper.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError


class PrecisionKind(enum.Enum):
    """The four representation families of Section IV-A."""

    FLOAT = "float"
    FIXED = "fixed"
    POW2 = "pow2"
    BINARY = "binary"


@dataclass(frozen=True)
class PrecisionSpec:
    """One (w, in) precision point.

    Attributes:
        kind: representation family.
        weight_bits: bits per weight (``w``).
        input_bits: bits per input / feature-map value (``in``).
        key: short registry key, e.g. ``"fixed8"``.
    """

    kind: PrecisionKind
    weight_bits: int
    input_bits: int
    key: str

    def __post_init__(self) -> None:
        if self.weight_bits < 1 or self.input_bits < 1:
            raise ConfigurationError("bit widths must be >= 1")
        if self.kind is PrecisionKind.BINARY and self.weight_bits != 1:
            raise ConfigurationError("binary precision requires weight_bits == 1")

    @property
    def label(self) -> str:
        """Row label in the paper's table style, e.g. ``Fixed-Point (8,8)``."""
        names = {
            PrecisionKind.FLOAT: "Floating-Point",
            PrecisionKind.FIXED: "Fixed-Point",
            PrecisionKind.POW2: "Powers of Two",
            PrecisionKind.BINARY: "Binary Net",
        }
        return f"{names[self.kind]} ({self.weight_bits},{self.input_bits})"

    @property
    def is_float(self) -> bool:
        return self.kind is PrecisionKind.FLOAT

    def __str__(self) -> str:
        return self.label

    @classmethod
    def parse(cls, text: Union[str, "PrecisionSpec"]) -> "PrecisionSpec":
        """Parse a precision from its key or a ``kind:w:in`` string.

        Accepted forms (all case-insensitive):

        * registry keys — ``"fixed8"``, ``"pow2"``, ``"binary"``, ...
        * explicit widths — ``"fixed:8:8"``, ``"fixed:4:8"``,
          ``"pow2:6:16"``, ``"float:32"``; ``kind:w`` means ``w == in``
          (for ``binary``, the single width names the *input* bits,
          since binary weights are one bit by definition).
        * compact novel widths — ``"fixed12"`` (not in the registry)
          parses as ``fixed:12:12``.
        * per-layer widths — ``"fixed:2,4,8:8"`` parses as a
          :class:`LayeredPrecisionSpec` assigning one weight bit-width
          per weight tensor, in network layer order (see
          :func:`layered_spec`).

        Specs whose ``(kind, w, in)`` matches a registry entry come
        back as that canonical entry, so
        ``PrecisionSpec.parse("fixed:8:8") is get_precision("fixed8")``
        and ``parse(spec.key)`` round-trips for every spec this method
        produces.  A :class:`PrecisionSpec` input passes through.
        """
        if isinstance(text, PrecisionSpec):
            return text
        key = str(text).strip().lower()
        if key in _REGISTRY:
            return _REGISTRY[key]

        kinds = {kind.value: kind for kind in PrecisionKind}
        if ":" in key:
            parts = key.split(":")
            kind_name, bit_parts = parts[0], parts[1:]
            if bit_parts and "," in bit_parts[0]:
                if kind_name not in kinds or len(bit_parts) != 2:
                    raise ConfigurationError(
                        f"cannot parse precision {text!r}; per-layer form "
                        f"is 'kind:w1,w2,...:in' with kind in {sorted(kinds)}"
                    )
                try:
                    per_layer = [int(part) for part in bit_parts[0].split(",")]
                    input_bits = int(bit_parts[1])
                except ValueError:
                    raise ConfigurationError(
                        f"cannot parse precision {text!r}: bit widths must "
                        f"be integers"
                    ) from None
                return layered_spec(kinds[kind_name], per_layer, input_bits)
        else:
            match = re.fullmatch(r"(float|fixed|pow2|binary)(\d+)", key)
            if not match:
                raise ConfigurationError(
                    f"cannot parse precision {text!r}; expected a registry "
                    f"key ({sorted(_REGISTRY)}), 'kind:w:in', or 'kindN'"
                )
            kind_name, bit_parts = match.group(1), [match.group(2)]
        if kind_name not in kinds or not 1 <= len(bit_parts) <= 2:
            raise ConfigurationError(
                f"cannot parse precision {text!r}; expected 'kind:w:in' with "
                f"kind in {sorted(kinds)}"
            )
        try:
            bits = [int(part) for part in bit_parts]
        except ValueError:
            raise ConfigurationError(
                f"cannot parse precision {text!r}: bit widths must be integers"
            ) from None
        kind = kinds[kind_name]
        if kind is PrecisionKind.BINARY and len(bits) == 1:
            weight_bits, input_bits = 1, bits[0]
        elif len(bits) == 1:
            weight_bits = input_bits = bits[0]
        else:
            weight_bits, input_bits = bits
        for spec in _REGISTRY.values():
            if (spec.kind, spec.weight_bits, spec.input_bits) == (
                kind, weight_bits, input_bits,
            ):
                return spec
        return cls(kind, weight_bits, input_bits,
                   key=f"{kind.value}:{weight_bits}:{input_bits}")


@dataclass(frozen=True)
class LayeredPrecisionSpec(PrecisionSpec):
    """A precision spec with an independent weight width per layer.

    The paper's Section VI future-work direction (and the search's
    per-layer axis): one representation kind and one activation width,
    but each weight tensor carries its own bit count, in network layer
    order.  ``weight_bits`` (the inherited headline number the uniform
    code paths read — memory footprints, registry manifests) is the
    per-layer maximum.

    The canonical key is the parseable per-layer form,
    ``"fixed:2,4,8:8"``, so layered specs round-trip through
    :meth:`PrecisionSpec.parse` across cache entries, registry
    manifests and process boundaries exactly like uniform ones.
    Construct via :func:`layered_spec` (or ``parse``), which computes
    the derived fields.
    """

    weight_bits_per_layer: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.weight_bits_per_layer:
            raise ConfigurationError(
                "layered precision needs at least one per-layer width"
            )
        if any(bits < 1 for bits in self.weight_bits_per_layer):
            raise ConfigurationError("per-layer bit widths must be >= 1")
        if self.weight_bits != max(self.weight_bits_per_layer):
            raise ConfigurationError(
                "headline weight_bits must be the per-layer maximum"
            )

    @property
    def label(self) -> str:
        widths = ",".join(str(b) for b in self.weight_bits_per_layer)
        return f"{super().label.split(' (')[0]} ([{widths}],{self.input_bits})"

    def layer_spec(self, bits: int) -> PrecisionSpec:
        """The uniform spec one layer assigned ``bits`` runs at."""
        return PrecisionSpec.parse(
            f"{self.kind.value}:{bits}:{self.input_bits}"
        )

    def per_layer_specs(self) -> List[PrecisionSpec]:
        """Uniform specs in layer order (one per weight tensor)."""
        return [self.layer_spec(bits) for bits in self.weight_bits_per_layer]


def layered_spec(
    kind: Union[PrecisionKind, str],
    weight_bits_per_layer: Sequence[int],
    input_bits: int,
) -> LayeredPrecisionSpec:
    """Build a :class:`LayeredPrecisionSpec` with its canonical key."""
    if isinstance(kind, str):
        try:
            kind = PrecisionKind(kind.lower())
        except ValueError:
            raise ConfigurationError(
                f"unknown precision kind {kind!r}"
            ) from None
    per_layer = tuple(int(bits) for bits in weight_bits_per_layer)
    if not per_layer:
        raise ConfigurationError(
            "layered precision needs at least one per-layer width"
        )
    key = f"{kind.value}:{','.join(str(b) for b in per_layer)}:{input_bits}"
    return LayeredPrecisionSpec(
        kind=kind,
        weight_bits=max(per_layer),
        input_bits=int(input_bits),
        key=key,
        weight_bits_per_layer=per_layer,
    )


def _registry() -> Dict[str, PrecisionSpec]:
    specs = [
        PrecisionSpec(PrecisionKind.FLOAT, 32, 32, "float32"),
        PrecisionSpec(PrecisionKind.FIXED, 32, 32, "fixed32"),
        PrecisionSpec(PrecisionKind.FIXED, 16, 16, "fixed16"),
        PrecisionSpec(PrecisionKind.FIXED, 8, 8, "fixed8"),
        PrecisionSpec(PrecisionKind.FIXED, 4, 4, "fixed4"),
        PrecisionSpec(PrecisionKind.POW2, 6, 16, "pow2"),
        PrecisionSpec(PrecisionKind.BINARY, 1, 16, "binary"),
    ]
    return {spec.key: spec for spec in specs}


_REGISTRY = _registry()

#: The seven precision points of Tables III-V, in table order.
PAPER_PRECISIONS: List[PrecisionSpec] = list(_REGISTRY.values())

#: Expanded-network suffixes of Table II (ALEX, ALEX+, ALEX++).
EXPANDED_VARIANTS = ["", "+", "++"]


def get_precision(key: str) -> PrecisionSpec:
    """Look up a named precision (``float32``, ``fixed16``, ``pow2``...)."""
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown precision {key!r}; choose from {sorted(_REGISTRY)}"
        ) from None
