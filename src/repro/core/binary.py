"""Binary (1-bit) weight quantization.

Section IV-A.4 of the paper, following BinaryConnect (Courbariaux et
al.): weights are constrained to one bit while inputs and feature maps
stay at 16-bit fixed point — the accelerator keeps multi-bit inputs and
replaces the weight multiplier with a conditional negate.

Two scaling modes are provided:

``"mean"`` (default)
    ``sign(w) * mean(|w|)`` per tensor (the XNOR-Net/BWN scale).  The
    scale is a single shared constant, so hardware still needs only a
    negate plus one per-layer shift/multiply, and training is far more
    stable on small networks.
``"unit"``
    strict BinaryConnect ``±1``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.quantizers import Quantizer
from repro.errors import QuantizationError


class BinaryQuantizer(Quantizer):
    """Constrain values to ``±alpha`` (one stored bit per value)."""

    bits = 1

    def __init__(self, scale: str = "mean"):
        if scale not in ("mean", "unit"):
            raise QuantizationError(f"unknown binary scale mode {scale!r}")
        self.scale_mode = scale

    def scale_for(self, x: np.ndarray, range_hint: Optional[float] = None) -> float:
        if self.scale_mode == "unit":
            return 1.0
        if range_hint is not None:
            # range_hint carries max |x|; the mean scale still comes from
            # the data when available, so hint only guards empty arrays.
            pass
        mean_abs = float(np.mean(np.abs(x))) if x.size else 0.0
        return mean_abs if mean_abs > 0 else 1.0

    def quantize(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        alpha = self.scale_for(x, range_hint)
        # sign(0) would drop a weight entirely; map zeros to +alpha.
        signs = np.where(x >= 0, 1.0, -1.0).astype(np.float32)
        return signs * np.float32(alpha)

    def bit_repr(self, x: np.ndarray) -> np.ndarray:
        """The stored sign bits (1 for +alpha, 0 for -alpha)."""
        return (np.asarray(x) >= 0).astype(np.uint8)
