"""The paper's primary contribution: precision quantization of DNNs.

This package implements every numerical representation studied in
Section IV-A of the paper, the Ristretto-style range analysis that
places the radix point, quantized-inference emulation, the dual-weight
quantization-aware training scheme of Section IV-A ("Training Time
Techniques"), precision sweeps, and the accuracy/energy Pareto analysis
of Section V-B.

Typical use::

    from repro import core, nn

    spec = core.get_precision("fixed8")           # Fixed-Point (8,8)
    qnet = core.QuantizedNetwork(net, spec)       # wraps a Sequential
    qnet.calibrate(calibration_images)            # place radix points
    trainer = core.QATTrainer(qnet, optimizer)    # fine-tune quantized
    trainer.fit(...)
    accuracy = qnet.evaluate(test_images, test_labels)
"""

from repro.core.precision import (
    PAPER_PRECISIONS,
    EXPANDED_VARIANTS,
    LayeredPrecisionSpec,
    PrecisionKind,
    PrecisionSpec,
    get_precision,
    layered_spec,
)
from repro.core.quantizers import IdentityQuantizer, Quantizer
from repro.core.factory import make_quantizers
from repro.core.fixed_point import FixedPointQuantizer
from repro.core.power_of_two import PowerOfTwoQuantizer
from repro.core.binary import BinaryQuantizer
from repro.core.per_channel import (
    PerChannelFixedPointQuantizer,
    UnsignedFixedPointQuantizer,
)
from repro.core.range_tracker import RangeTracker
from repro.core.fake_quant import FakeQuantLayer
from repro.core.quantized import FrozenQuantizedNetwork, QuantizedNetwork
from repro.core.qat import QATTrainer, post_training_quantize
from repro.core.sweep import PrecisionResult, PrecisionSweep, SweepConfig
from repro.core.pareto import (
    DesignPoint,
    dominates,
    pareto_frontier,
    pareto_frontier_bruteforce,
)
from repro.core.integer_network import IntegerInference
from repro.core.mixed_precision import (
    MixedPrecisionNetwork,
    assignment_weight_kb,
    greedy_bit_allocation,
    make_quantized_network,
)
from repro.core.analysis import (
    TensorQuantizationStats,
    activation_range_report,
    layerwise_sensitivity,
    most_sensitive_layer,
    predicted_risk_ranking,
    quantization_report,
)

__all__ = [
    "PrecisionKind",
    "PrecisionSpec",
    "LayeredPrecisionSpec",
    "layered_spec",
    "PAPER_PRECISIONS",
    "EXPANDED_VARIANTS",
    "get_precision",
    "Quantizer",
    "IdentityQuantizer",
    "FixedPointQuantizer",
    "PowerOfTwoQuantizer",
    "BinaryQuantizer",
    "PerChannelFixedPointQuantizer",
    "UnsignedFixedPointQuantizer",
    "RangeTracker",
    "FakeQuantLayer",
    "QuantizedNetwork",
    "FrozenQuantizedNetwork",
    "make_quantizers",
    "QATTrainer",
    "post_training_quantize",
    "PrecisionSweep",
    "PrecisionResult",
    "SweepConfig",
    "DesignPoint",
    "pareto_frontier",
    "pareto_frontier_bruteforce",
    "dominates",
    "IntegerInference",
    "MixedPrecisionNetwork",
    "make_quantized_network",
    "greedy_bit_allocation",
    "assignment_weight_kb",
    "TensorQuantizationStats",
    "quantization_report",
    "activation_range_report",
    "layerwise_sensitivity",
    "most_sensitive_layer",
    "predicted_risk_ranking",
]
