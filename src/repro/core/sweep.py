"""Precision sweep orchestration.

A sweep reproduces the experimental protocol of Section V: train a
full-precision network, then for every precision point warm-start from
the float weights, fine-tune quantization-aware, and record the test
accuracy.  Non-convergent configurations (the paper's "NA" rows —
fixed-point (4,4) on SVHN/CIFAR, binary on SVHN) are detected by
comparing the final accuracy against chance level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.precision import PAPER_PRECISIONS, PrecisionSpec
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.core.qat import QATTrainer
from repro.core.quantized import QuantizedNetwork
from repro.data.dataset import DataSplit
from repro.errors import ConfigurationError, TrainingError
from repro.nn.network import Sequential
from repro.nn.optim import SGD, StepDecay
from repro.nn.serialization import (
    load_network_state,
    network_state,
    transfer_weights,
)
from repro.nn.trainer import Trainer


@dataclass
class SweepConfig:
    """Training budget for one sweep.

    The defaults are the quick budgets used by the benchmark harness;
    ``paper()`` returns longer ones for higher-fidelity runs.
    """

    float_epochs: int = 10
    qat_epochs: int = 4
    float_lr: float = 0.02
    qat_lr: float = 0.005
    momentum: float = 0.9
    weight_decay: float = 1e-4
    batch_size: int = 32
    lr_step: int = 6
    calibration_samples: int = 256
    convergence_factor: float = 1.8
    seed: int = 0

    @classmethod
    def paper(cls) -> "SweepConfig":
        """Longer schedule for closer-to-paper fidelity runs."""
        return cls(float_epochs=30, qat_epochs=10, lr_step=12)

    def __post_init__(self) -> None:
        if self.float_epochs < 1 or self.qat_epochs < 0:
            raise ConfigurationError("epoch counts must be positive")
        if self.convergence_factor < 1.0:
            raise ConfigurationError("convergence_factor must be >= 1")


@dataclass
class PrecisionResult:
    """Outcome of one (network, precision) training run."""

    spec: PrecisionSpec
    accuracy: float          # test accuracy in [0, 1]
    converged: bool          # False reproduces the paper's "NA" rows
    history: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def accuracy_percent(self) -> float:
        return 100.0 * self.accuracy


class PrecisionSweep:
    """Run the paper's protocol over a list of precision points.

    Args:
        builder: zero-argument callable returning a fresh, identically
            structured :class:`Sequential` (same layer/parameter names).
        split: train/val/test data.
        config: training budgets.
        keep_states: retain each point's trained full-precision
            parameter arrays in :attr:`point_states` (keyed by spec
            key).  Off by default — a full sweep's states are several
            networks' worth of memory — and switched on by publishers
            (``repro sweep --publish``) that turn sweep winners into
            registry artifacts.
    """

    def __init__(
        self,
        builder: Callable[[], Sequential],
        split: DataSplit,
        config: Optional[SweepConfig] = None,
        keep_states: bool = False,
    ):
        self.builder = builder
        self.split = split
        self.config = config or SweepConfig()
        self.keep_states = keep_states
        #: spec key -> trained parameter arrays (only with keep_states)
        self.point_states: Dict[str, Dict[str, np.ndarray]] = {}
        self._float_network: Optional[Sequential] = None
        self._float_result: Optional[PrecisionResult] = None

    # ------------------------------------------------------------------
    @property
    def chance_accuracy(self) -> float:
        return 1.0 / self.split.num_classes

    @property
    def float_network(self) -> Optional[Sequential]:
        """The trained full-precision network (None until trained)."""
        return self._float_network

    def seed_baseline(
        self, state: Dict[str, np.ndarray], result: PrecisionResult
    ) -> None:
        """Install a previously trained float baseline without retraining.

        ``state`` is a parameter name -> array mapping (as produced by
        :func:`repro.nn.serialization.network_state`) and ``result`` the
        baseline's :class:`PrecisionResult`.  Used by the parallel
        executor and the on-disk cache so workers and resumed sweeps
        warm-start from the exact weights the sequential run trained.
        """
        network = self.builder()
        load_network_state(network, state)
        self._float_network = network
        self._float_result = result
        if self.keep_states:
            self.point_states["float32"] = network_state(network)

    def _derived_rng(self, *stream: object) -> np.random.Generator:
        """Fresh generator for one named stream of this sweep.

        Seeds are derived from ``config.seed`` and the stream
        components alone (never from global numpy state or call
        order), so two sweeps in one process cannot interleave RNG
        draws and any point can be re-derived in isolation — the
        property the parallel executor's determinism contract rests
        on.
        """
        from repro.parallel.seeding import generator_for

        return generator_for(self.config.seed, *stream)

    def _make_optimizer(self, network: Sequential, lr: float) -> SGD:
        cfg = self.config
        return SGD(
            network.parameters(),
            lr=StepDecay(lr, step=cfg.lr_step),
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )

    def train_float_baseline(
        self, rng: Optional[np.random.Generator] = None
    ) -> PrecisionResult:
        """Train the full-precision reference network (cached)."""
        if self._float_result is not None:
            return self._float_result
        cfg = self.config
        network = self.builder()
        rng = rng if rng is not None else self._derived_rng("float")
        trainer = Trainer(
            network,
            self._make_optimizer(network, cfg.float_lr),
            batch_size=cfg.batch_size,
            rng=rng,
            restore_best=True,
        )
        trainer.fit(
            self.split.train.images, self.split.train.labels,
            self.split.val.images, self.split.val.labels,
            epochs=cfg.float_epochs,
        )
        metrics = trainer.evaluate(self.split.test.images, self.split.test.labels)
        self._float_network = network
        self._float_result = PrecisionResult(
            spec=PAPER_PRECISIONS[0],
            accuracy=metrics["accuracy"],
            converged=True,
            history={"val_accuracy": trainer.history.val_accuracy},
        )
        if self.keep_states:
            self.point_states["float32"] = network_state(network)
        return self._float_result

    def run_precision(
        self,
        spec: Union[PrecisionSpec, str],
        rng: Optional[np.random.Generator] = None,
    ) -> PrecisionResult:
        """Warm-start + QAT fine-tune + quantized evaluation for ``spec``.

        ``spec`` may be a :class:`PrecisionSpec` or any string
        :meth:`PrecisionSpec.parse` accepts.  The whole point runs
        inside a ``sweep.precision`` span tagged with the spec's key,
        and the outcome lands in the shared metrics registry as
        ``sweep.accuracy.<key>`` / ``sweep.converged.<key>`` gauges.

        ``rng`` overrides the QAT shuffling generator; by default each
        spec gets its own generator derived from ``config.seed`` and
        the spec key, so results are independent of the order (and the
        process) in which points run.
        """
        spec = PrecisionSpec.parse(spec)
        with get_tracer().span("sweep.precision", spec=spec.key):
            result = self._run_precision(spec, rng=rng)
        metrics = get_metrics()
        metrics.counter("sweep.precisions").inc()
        metrics.gauge(f"sweep.accuracy.{spec.key}").set(result.accuracy)
        metrics.gauge(f"sweep.converged.{spec.key}").set(float(result.converged))
        return result

    def _run_precision(
        self,
        spec: PrecisionSpec,
        rng: Optional[np.random.Generator] = None,
    ) -> PrecisionResult:
        baseline = self.train_float_baseline()
        if spec.is_float:
            return baseline

        cfg = self.config
        network = self.builder()
        transfer_weights(self._float_network, network)
        # layered specs build a MixedPrecisionNetwork; QAT and the
        # quantized evaluation flow through weight_quantizer_for either way
        from repro.core.mixed_precision import make_quantized_network

        qnet = make_quantized_network(network, spec)
        qnet.calibrate(self.split.train.images[: cfg.calibration_samples])

        history: Dict[str, List[float]] = {}
        if cfg.qat_epochs > 0:
            if rng is None:
                rng = self._derived_rng("qat", spec.key)
            trainer = QATTrainer(
                qnet,
                self._make_optimizer(network, cfg.qat_lr),
                batch_size=cfg.batch_size,
                rng=rng,
                restore_best=True,
            )
            try:
                trainer.fit(
                    self.split.train.images, self.split.train.labels,
                    self.split.val.images, self.split.val.labels,
                    epochs=cfg.qat_epochs,
                )
                history["val_accuracy"] = trainer.history.val_accuracy
            except TrainingError:
                # Diverged outright (e.g. 4-bit on a hard task): report
                # as non-convergent, like the paper's NA entries.
                return PrecisionResult(spec=spec, accuracy=0.0, converged=False)

        accuracy = qnet.evaluate(
            self.split.test.images, self.split.test.labels
        ).accuracy
        converged = accuracy >= cfg.convergence_factor * self.chance_accuracy
        if self.keep_states:
            # The network holds the QAT-fine-tuned *full-precision*
            # weights (the dual-weight scheme's shadow values); they are
            # what a registry artifact stores — quantization is re-applied
            # at deploy time from the precision spec.
            self.point_states[spec.key] = network_state(network)
        return PrecisionResult(
            spec=spec, accuracy=accuracy, converged=converged, history=history
        )

    def run(
        self,
        precisions: Optional[Sequence[PrecisionSpec]] = None,
        *,
        workers: int = 1,
        cache: object = None,
        refresh: bool = False,
    ) -> List[PrecisionResult]:
        """Sweep all (default: the paper's seven) precision points.

        Args:
            precisions: specs (or parseable strings) to run, in order.
            workers: number of worker *processes*.  ``1`` (default)
                runs in-process exactly as before; ``N > 1`` dispatches
                points through :mod:`repro.parallel` and is guaranteed
                to return bitwise-identical results for the same
                ``config.seed``.
            cache: on-disk result cache — ``None``/``False`` disables
                it, ``True`` uses the default directory
                (``~/.cache/repro-sweeps`` or ``$REPRO_SWEEP_CACHE``),
                a string names a directory, and a
                :class:`repro.parallel.SweepCache` is used as-is.
            refresh: ignore cached results (but still store fresh ones).
        """
        specs = [
            PrecisionSpec.parse(spec)
            for spec in (precisions if precisions is not None else PAPER_PRECISIONS)
        ]
        if workers <= 1 and not cache:
            return [self.run_precision(spec) for spec in specs]
        from repro.parallel.executor import run_sweep

        return run_sweep(
            self, specs, workers=workers, cache=cache, refresh=refresh
        )
