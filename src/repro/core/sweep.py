"""Precision sweep orchestration.

A sweep reproduces the experimental protocol of Section V: train a
full-precision network, then for every precision point warm-start from
the float weights, fine-tune quantization-aware, and record the test
accuracy.  Non-convergent configurations (the paper's "NA" rows —
fixed-point (4,4) on SVHN/CIFAR, binary on SVHN) are detected by
comparing the final accuracy against chance level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.precision import PAPER_PRECISIONS, PrecisionSpec
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.core.qat import QATTrainer
from repro.core.quantized import QuantizedNetwork
from repro.data.dataset import DataSplit
from repro.errors import ConfigurationError, TrainingError
from repro.nn.network import Sequential
from repro.nn.optim import SGD, StepDecay
from repro.nn.serialization import transfer_weights
from repro.nn.trainer import Trainer


@dataclass
class SweepConfig:
    """Training budget for one sweep.

    The defaults are the quick budgets used by the benchmark harness;
    ``paper()`` returns longer ones for higher-fidelity runs.
    """

    float_epochs: int = 10
    qat_epochs: int = 4
    float_lr: float = 0.02
    qat_lr: float = 0.005
    momentum: float = 0.9
    weight_decay: float = 1e-4
    batch_size: int = 32
    lr_step: int = 6
    calibration_samples: int = 256
    convergence_factor: float = 1.8
    seed: int = 0

    @classmethod
    def paper(cls) -> "SweepConfig":
        """Longer schedule for closer-to-paper fidelity runs."""
        return cls(float_epochs=30, qat_epochs=10, lr_step=12)

    def __post_init__(self) -> None:
        if self.float_epochs < 1 or self.qat_epochs < 0:
            raise ConfigurationError("epoch counts must be positive")
        if self.convergence_factor < 1.0:
            raise ConfigurationError("convergence_factor must be >= 1")


@dataclass
class PrecisionResult:
    """Outcome of one (network, precision) training run."""

    spec: PrecisionSpec
    accuracy: float          # test accuracy in [0, 1]
    converged: bool          # False reproduces the paper's "NA" rows
    history: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def accuracy_percent(self) -> float:
        return 100.0 * self.accuracy


class PrecisionSweep:
    """Run the paper's protocol over a list of precision points.

    Args:
        builder: zero-argument callable returning a fresh, identically
            structured :class:`Sequential` (same layer/parameter names).
        split: train/val/test data.
        config: training budgets.
    """

    def __init__(
        self,
        builder: Callable[[], Sequential],
        split: DataSplit,
        config: Optional[SweepConfig] = None,
    ):
        self.builder = builder
        self.split = split
        self.config = config or SweepConfig()
        self._float_network: Optional[Sequential] = None
        self._float_result: Optional[PrecisionResult] = None

    # ------------------------------------------------------------------
    @property
    def chance_accuracy(self) -> float:
        return 1.0 / self.split.num_classes

    def _make_optimizer(self, network: Sequential, lr: float) -> SGD:
        cfg = self.config
        return SGD(
            network.parameters(),
            lr=StepDecay(lr, step=cfg.lr_step),
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )

    def train_float_baseline(self) -> PrecisionResult:
        """Train the full-precision reference network (cached)."""
        if self._float_result is not None:
            return self._float_result
        cfg = self.config
        network = self.builder()
        rng = np.random.default_rng(cfg.seed)
        trainer = Trainer(
            network,
            self._make_optimizer(network, cfg.float_lr),
            batch_size=cfg.batch_size,
            rng=rng,
            restore_best=True,
        )
        trainer.fit(
            self.split.train.images, self.split.train.labels,
            self.split.val.images, self.split.val.labels,
            epochs=cfg.float_epochs,
        )
        metrics = trainer.evaluate(self.split.test.images, self.split.test.labels)
        self._float_network = network
        self._float_result = PrecisionResult(
            spec=PAPER_PRECISIONS[0],
            accuracy=metrics["accuracy"],
            converged=True,
            history={"val_accuracy": trainer.history.val_accuracy},
        )
        return self._float_result

    def run_precision(self, spec: Union[PrecisionSpec, str]) -> PrecisionResult:
        """Warm-start + QAT fine-tune + quantized evaluation for ``spec``.

        ``spec`` may be a :class:`PrecisionSpec` or any string
        :meth:`PrecisionSpec.parse` accepts.  The whole point runs
        inside a ``sweep.precision`` span tagged with the spec's key,
        and the outcome lands in the shared metrics registry as
        ``sweep.accuracy.<key>`` / ``sweep.converged.<key>`` gauges.
        """
        spec = PrecisionSpec.parse(spec)
        with get_tracer().span("sweep.precision", spec=spec.key):
            result = self._run_precision(spec)
        metrics = get_metrics()
        metrics.counter("sweep.precisions").inc()
        metrics.gauge(f"sweep.accuracy.{spec.key}").set(result.accuracy)
        metrics.gauge(f"sweep.converged.{spec.key}").set(float(result.converged))
        return result

    def _run_precision(self, spec: PrecisionSpec) -> PrecisionResult:
        baseline = self.train_float_baseline()
        if spec.is_float:
            return baseline

        cfg = self.config
        network = self.builder()
        transfer_weights(self._float_network, network)
        qnet = QuantizedNetwork(network, spec)
        qnet.calibrate(self.split.train.images[: cfg.calibration_samples])

        history: Dict[str, List[float]] = {}
        if cfg.qat_epochs > 0:
            rng = np.random.default_rng(cfg.seed + 1)
            trainer = QATTrainer(
                qnet,
                self._make_optimizer(network, cfg.qat_lr),
                batch_size=cfg.batch_size,
                rng=rng,
                restore_best=True,
            )
            try:
                trainer.fit(
                    self.split.train.images, self.split.train.labels,
                    self.split.val.images, self.split.val.labels,
                    epochs=cfg.qat_epochs,
                )
                history["val_accuracy"] = trainer.history.val_accuracy
            except TrainingError:
                # Diverged outright (e.g. 4-bit on a hard task): report
                # as non-convergent, like the paper's NA entries.
                return PrecisionResult(spec=spec, accuracy=0.0, converged=False)

        accuracy = qnet.evaluate(
            self.split.test.images, self.split.test.labels
        ).accuracy
        converged = accuracy >= cfg.convergence_factor * self.chance_accuracy
        return PrecisionResult(
            spec=spec, accuracy=accuracy, converged=converged, history=history
        )

    def run(
        self, precisions: Optional[Sequence[PrecisionSpec]] = None
    ) -> List[PrecisionResult]:
        """Sweep all (default: the paper's seven) precision points."""
        specs = list(precisions) if precisions is not None else list(PAPER_PRECISIONS)
        return [self.run_precision(spec) for spec in specs]
