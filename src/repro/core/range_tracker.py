"""Online dynamic-range tracking for radix-point placement.

Ristretto places each tensor group's radix point from the ranges
observed on calibration data.  :class:`RangeTracker` implements this
with an exponential moving average so quantization-aware training can
follow feature-map ranges as they drift over epochs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class RangeTracker:
    """EMA of the maximum absolute value seen.

    Args:
        momentum: EMA coefficient in [0, 1); 0 keeps only the latest
            batch, values near 1 average over many batches.
        percentile: when set (e.g. 99.9), track that percentile of |x|
            instead of the hard maximum — more robust to outliers, at
            the cost of saturating a small tail.
    """

    def __init__(self, momentum: float = 0.9, percentile: Optional[float] = None):
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if percentile is not None and not 0.0 < percentile <= 100.0:
            raise ConfigurationError("percentile must be in (0, 100]")
        self.momentum = momentum
        self.percentile = percentile
        self._value: Optional[float] = None

    @property
    def initialized(self) -> bool:
        return self._value is not None

    @property
    def max_abs(self) -> float:
        """Current range estimate (0.0 before any observation)."""
        return self._value if self._value is not None else 0.0

    def observe(self, x: np.ndarray) -> float:
        """Fold one batch into the estimate; returns the updated range."""
        if x.size == 0:
            return self.max_abs
        magnitude = np.abs(x)
        if self.percentile is None:
            batch_max = float(magnitude.max())
        else:
            batch_max = float(np.percentile(magnitude, self.percentile))
        if self._value is None:
            self._value = batch_max
        else:
            self._value = self.momentum * self._value + (1.0 - self.momentum) * batch_max
        return self._value

    def reset(self) -> None:
        self._value = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RangeTracker(max_abs={self.max_abs:.4g})"
