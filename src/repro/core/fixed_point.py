"""Fixed-point (dynamic fixed point) quantization.

Implements the paper's fixed-point arithmetic family (Section IV-A.2)
with Ristretto-style *dynamic* fixed point: the total bit width is
fixed, but the radix point is placed per tensor group so that the
largest observed magnitude is representable ("we allow a different
radix point location between data and parameters").
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.quantizers import Quantizer
from repro.errors import QuantizationError


def integer_bits_for_range(max_abs: float) -> int:
    """Integer bits (excluding sign) needed to represent ``max_abs``.

    Values in (0.5, 1] need 0 integer bits in a signed Qm.f format
    (max representable magnitude just below 2^m); sub-0.5 ranges yield
    negative integer-bit counts, which shift the radix point right and
    add fractional resolution — exactly Ristretto's behaviour.
    """
    if max_abs <= 0.0:
        return 0
    return int(math.ceil(math.log2(max_abs + 1e-12)))


class FixedPointQuantizer(Quantizer):
    """Signed two's-complement fixed point with saturation.

    Args:
        total_bits: word length including the sign bit.
        frac_bits: radix position; ``None`` (default) derives it per
            call from the array's max magnitude (dynamic fixed point).
        stochastic_rounding / rng: round-to-nearest by default; Gupta et
            al. stochastic rounding is available for training studies.

    The representable grid is ``{-2^(b-1), ..., 2^(b-1)-1} / 2^f``;
    out-of-range values saturate rather than wrap, matching the
    accelerator's saturating arithmetic.
    """

    def __init__(
        self,
        total_bits: int,
        frac_bits: Optional[int] = None,
        stochastic_rounding: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        if total_bits < 2:
            raise QuantizationError("fixed point needs >= 2 bits (sign + magnitude)")
        self.bits = total_bits
        self.frac_bits = frac_bits
        self.stochastic_rounding = stochastic_rounding
        self._rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------------
    def frac_bits_for(self, max_abs: float) -> int:
        """Radix placement: spend what the integer part doesn't need."""
        return self.bits - 1 - integer_bits_for_range(max_abs)

    def resolve_frac_bits(self, x: np.ndarray, range_hint: Optional[float]) -> int:
        if self.frac_bits is not None:
            return self.frac_bits
        if range_hint is not None:
            return self.frac_bits_for(range_hint)
        # Sign-aware dynamic placement: the two's-complement grid
        # reaches one extra step on the negative side, so an exact
        # -2^k needs one fewer integer bit than +2^k.  Without this,
        # quantize is not idempotent — a saturated most-negative code
        # would shift the radix on the next pass and move every value.
        pos = float(np.max(x, initial=0.0))
        neg = float(-np.min(x, initial=0.0))
        needed = []
        if pos > 0.0:
            needed.append(integer_bits_for_range(pos))
        if neg > 0.0:
            needed.append(int(math.ceil(math.log2(max(neg, 1e-12)))))
        return self.bits - 1 - (max(needed) if needed else 0)

    def quantize(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        frac = self.resolve_frac_bits(x, range_hint)
        scale = float(2.0**frac)
        q_min = -(2 ** (self.bits - 1))
        q_max = 2 ** (self.bits - 1) - 1
        scaled = x.astype(np.float64) * scale
        if self.stochastic_rounding:
            floor = np.floor(scaled)
            prob_up = scaled - floor
            rounded = floor + (self._rng.random(scaled.shape) < prob_up)
        else:
            rounded = np.rint(scaled)
        clipped = np.clip(rounded, q_min, q_max)
        return (clipped / scale).astype(np.float32)

    def integer_repr(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        """The stored integer codes (for memory/hardware-level tests)."""
        frac = self.resolve_frac_bits(np.asarray(x), range_hint)
        scale = float(2.0**frac)
        q_min = -(2 ** (self.bits - 1))
        q_max = 2 ** (self.bits - 1) - 1
        return np.clip(np.rint(np.asarray(x, dtype=np.float64) * scale), q_min, q_max).astype(np.int64)

    def step_size(self, range_hint: float) -> float:
        """Quantization step for a given dynamic range."""
        return float(2.0 ** -self.frac_bits_for(range_hint))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        radix = "dynamic" if self.frac_bits is None else f"f={self.frac_bits}"
        return f"FixedPointQuantizer(bits={self.bits}, {radix})"
