"""Quantized-inference emulation: wrap a float network in a precision spec.

The wrapper reproduces Ristretto's emulation strategy: values are
quantized onto the target format's representable grid but computation
runs in float32, which is exact because every representable fixed-point
/ power-of-two / binary value (and every product/sum the accelerator's
datapath produces at these widths) is itself a float32-representable
number.

Weight quantization is applied by temporarily swapping quantized values
into the shared :class:`~repro.nn.tensor.Parameter` objects; feature
maps are quantized by :class:`~repro.core.fake_quant.FakeQuantLayer`
modules interleaved into the pipeline, mirroring the accelerator's
buffer writes (NFU results are stored to the 16-/8-/4-bit output buffer
before feeding the next layer).
"""

from __future__ import annotations

import contextlib
import threading
import time
import warnings
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.backends import Backend

from repro.core.factory import make_quantizers
from repro.core.fake_quant import FakeQuantLayer
from repro.core.fixed_point import FixedPointQuantizer
from repro.core.precision import PrecisionSpec
from repro.core.quantizers import IdentityQuantizer, Quantizer
from repro.errors import ConfigurationError
from repro.nn.dense import Flatten
from repro.nn.evaluation import EvalResult
from repro.nn.metrics import accuracy
from repro.nn.module import Module
from repro.nn.network import Sequential
from repro.nn.pooling import MaxPool2D
from repro.nn.tensor import Parameter


_DEPRECATION_WARNED: Set[str] = set()


def _warn_once(name: str, alternative: str) -> None:
    """Emit one DeprecationWarning per deprecated entry point per process."""
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"QuantizedNetwork.{name}() is deprecated; use {alternative} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _resolve_backend(backend: Union["Backend", str, None]) -> "Backend":
    """Late-bound backend resolution (``repro.backends`` imports core)."""
    from repro import backends

    return backends.resolve(backend)


def _needs_activation_quant(layer: Module) -> bool:
    """Layers whose outputs are new values that the hardware would store
    at limited precision.  MaxPool and Flatten only move existing
    (already-quantized) values, so re-quantizing them is a no-op."""
    return not isinstance(layer, (MaxPool2D, Flatten, FakeQuantLayer))


class QuantizedNetwork:
    """A float network executed under a precision specification.

    Args:
        network: the underlying :class:`Sequential`; its parameters are
            shared (the wrapper never copies weights — the shadow
            full-precision values live in the network itself).
        spec: the precision point to emulate — a :class:`PrecisionSpec`
            or any string :meth:`PrecisionSpec.parse` accepts
            (``"fixed8"``, ``"fixed:4:8"``, ...).
        quantize_bias: quantize bias vectors at the *input* precision
            (the accumulator width); the paper keeps biases at the wider
            input precision rather than the weight precision.
        weight_quantizer / activation_factory: override the quantizers
            the spec would select (used by the radix-placement ablation
            benchmarks); ``None`` uses
            :func:`repro.core.make_quantizers`.
        backend: the :mod:`repro.backends` compute backend used by
            :meth:`infer` / :meth:`predict` / :meth:`evaluate` when no
            per-call backend is given — a name, a ``Backend`` instance,
            or ``None`` for the process default.
    """

    def __init__(
        self,
        network: Sequential,
        spec: Union[PrecisionSpec, str],
        quantize_bias: bool = True,
        weight_quantizer: Optional[Quantizer] = None,
        activation_factory: Optional[Callable[[], Quantizer]] = None,
        backend: Union["Backend", str, None] = None,
    ):
        spec = PrecisionSpec.parse(spec)
        self.network = network
        self.spec = spec
        self.backend = backend
        default_weight, default_factory = make_quantizers(spec)
        self.weight_quantizer = weight_quantizer or default_weight
        activation_factory = activation_factory or default_factory
        self.bias_quantizer: Quantizer = (
            IdentityQuantizer(32)
            if spec.is_float or not quantize_bias
            else FixedPointQuantizer(spec.input_bits)
        )

        layers: List[Module] = [FakeQuantLayer(activation_factory(), name="quant_in")]
        for layer in network.layers:
            layers.append(layer)
            if _needs_activation_quant(layer):
                layers.append(
                    FakeQuantLayer(activation_factory(), name=f"quant_{layer.name}")
                )
        self.pipeline = Sequential(layers, name=f"{network.name}[{spec.key}]")

        self._weight_params: List[Parameter] = network.weight_parameters()
        weight_ids = {id(p) for p in self._weight_params}
        self._bias_params: List[Parameter] = [
            p for p in network.parameters() if id(p) not in weight_ids
        ]
        self._shadow: Optional[Dict[int, np.ndarray]] = None
        self._swap_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Weight swapping
    # ------------------------------------------------------------------
    def weight_quantizer_for(self, param: Parameter) -> Quantizer:
        """Quantizer applied to one weight tensor.

        The base class applies the spec's quantizer uniformly;
        :class:`~repro.core.mixed_precision.MixedPrecisionNetwork`
        overrides this with a per-layer assignment.
        """
        return self.weight_quantizer

    def quantized_parameter_data(self) -> Dict[int, np.ndarray]:
        """Precomputed quantized copies of every parameter, keyed by id.

        The shared :class:`Parameter` objects are read but never written,
        so this is safe to call from any thread at any time.
        """
        quantized: Dict[int, np.ndarray] = {}
        for param in self._weight_params:
            quantized[id(param)] = self.weight_quantizer_for(param).quantize(
                param.data
            )
        for param in self._bias_params:
            quantized[id(param)] = self.bias_quantizer.quantize(param.data)
        return quantized

    def _swap_in_quantized(self) -> None:
        """Replace parameter data with quantized values (shadow saved).

        Swapping mutates the ``Parameter`` objects *shared with the float
        network*, so at most one swap may be active at a time; a second
        concurrent swap raises :class:`ConfigurationError` (the check-and-
        set is atomic under an internal lock).  For lock-free concurrent
        inference use :meth:`freeze` instead.
        """
        quantized = self.quantized_parameter_data()
        with self._swap_lock:
            if self._shadow is not None:
                raise ConfigurationError("quantized weights already swapped in")
            self._shadow = {}
            for param in self._weight_params + self._bias_params:
                self._shadow[id(param)] = param.data.copy()
                param.data[...] = quantized[id(param)]

    def _restore_shadow(self) -> None:
        """Restore the full-precision shadow values saved by swap-in."""
        with self._swap_lock:
            if self._shadow is None:
                raise ConfigurationError("no shadow weights to restore")
            for param in self._weight_params + self._bias_params:
                param.data[...] = self._shadow[id(param)]
            self._shadow = None

    def swap_in_quantized(self) -> None:
        """Deprecated: use the :meth:`quantized_weights` context manager
        (or :meth:`freeze` for concurrent inference) instead of a raw
        swap-in/restore pair.  Warns once per process, then swaps."""
        _warn_once("swap_in_quantized", "the quantized_weights() context manager")
        self._swap_in_quantized()

    def restore_shadow(self) -> None:
        """Deprecated counterpart of :meth:`swap_in_quantized`."""
        _warn_once("restore_shadow", "the quantized_weights() context manager")
        self._restore_shadow()

    @contextlib.contextmanager
    def quantized_weights(self):
        """Context manager: quantized values in, shadow restored on exit.

        NOT thread-safe: the swap mutates shared parameters, so two
        threads entering this context on the same underlying network race
        on the weight values.  The second concurrent entry raises
        :class:`ConfigurationError`; concurrent serving should go through
        :meth:`freeze` / :class:`FrozenQuantizedNetwork`.
        """
        self._swap_in_quantized()
        try:
            yield self
        finally:
            self._restore_shadow()

    def freeze(
        self, backend: Union["Backend", str, None] = None
    ) -> "FrozenQuantizedNetwork":
        """Bake quantized weights in and return a thread-safe view.

        See :class:`FrozenQuantizedNetwork`; while frozen, the underlying
        float network holds the quantized values and further swaps are
        rejected.  Call :meth:`FrozenQuantizedNetwork.thaw` to restore the
        full-precision weights.  ``backend`` pins the compute backend the
        frozen view runs on (``None`` follows this network's backend).
        """
        return FrozenQuantizedNetwork(self, backend=backend)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def calibrate(self, images: np.ndarray, batch_size: int = 64) -> None:
        """Run calibration batches so activation trackers learn ranges."""
        self.pipeline.train_mode()
        try:
            with self.quantized_weights():
                for start in range(0, images.shape[0], batch_size):
                    self.pipeline.forward(images[start : start + batch_size])
        finally:
            self.pipeline.eval_mode()

    def infer(
        self,
        images: np.ndarray,
        batch_size: int = 128,
        backend: Union["Backend", str, None] = None,
    ) -> np.ndarray:
        """Quantized inference logits — the single public entry point.

        Quantized weights are swapped in for the duration of the call and
        the batch loop runs on a :mod:`repro.backends` compute backend.
        ``backend`` overrides, per call, the backend chosen at
        construction (which in turn defaults to the process-wide
        selection — see :func:`repro.backends.get_default`).
        """
        impl = _resolve_backend(backend if backend is not None else self.backend)
        with self.quantized_weights():
            return impl.predict(self.pipeline, images, batch_size=batch_size)

    def predict(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Quantized inference logits (alias of :meth:`infer`)."""
        return self.infer(images, batch_size=batch_size)

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> EvalResult:
        """Quantized test accuracy as an :class:`EvalResult`.

        The result compares and formats like the accuracy float this
        method used to return, and carries ``n_samples``/``elapsed_s``.
        """
        start = time.perf_counter()
        acc = accuracy(self.predict(images), labels)
        return EvalResult(
            acc,
            n_samples=int(len(labels)),
            elapsed_s=time.perf_counter() - start,
        )

    def weight_quantization_errors(self) -> Dict[str, float]:
        """Per-weight-tensor RMS quantization error at this precision.

        Keys are parameter names (``"conv1.weight"``).  Must be called
        while the full-precision values are resident (i.e. not inside
        ``quantized_weights()`` and not while frozen), otherwise the
        error is measured against already-quantized values and reads
        as ~0.
        """
        return {
            param.name: float(
                self.weight_quantizer_for(param).quantization_error(param.data)
            )
            for param in self._weight_params
        }

    # ------------------------------------------------------------------
    def quantized_state(self) -> Dict[str, np.ndarray]:
        """Name -> quantized weight arrays (for inspection/memory tests)."""
        state = {}
        with self.quantized_weights():
            for param in self.network.parameters():
                state[param.name] = param.data.copy()
        return state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QuantizedNetwork({self.network.name!r}, {self.spec.label})"


class FrozenQuantizedNetwork:
    """Read-only quantized-inference view, safe for concurrent forwards.

    The weight-swap context manager of :class:`QuantizedNetwork` mutates
    the ``Parameter`` objects shared with the float network, so two
    threads running ``predict`` on the same wrapper race on the weight
    values.  Freezing removes the mutation from the inference path:
    quantized parameter copies are precomputed once and installed for the
    lifetime of the frozen view, the pipeline is put in eval mode, and
    ``forward`` runs the (now read-only) pipeline on the backend resolved
    at freeze time (``freeze(backend=...)``).  Every layer caches
    backward state only in training mode, and the fused backend keeps its
    plan and workspaces thread-local, so concurrent forwards do not
    interfere — this is what lets a serving engine share one calibrated
    network across a pool of worker threads.

    While frozen, the underlying float network holds the quantized
    values; :meth:`thaw` restores the full-precision shadow and
    invalidates the view.  Entering ``quantized_weights()`` on the
    wrapped :class:`QuantizedNetwork` while frozen raises
    :class:`ConfigurationError` (the swap slot is occupied).
    """

    def __init__(
        self,
        qnet: QuantizedNetwork,
        backend: Union["Backend", str, None] = None,
    ):
        self.qnet = qnet
        self.spec = qnet.spec
        self.pipeline = qnet.pipeline
        # Resolved once at freeze time so every serving thread runs the
        # same backend for the lifetime of this view.
        self.backend = _resolve_backend(
            backend if backend is not None else qnet.backend
        )
        qnet._swap_in_quantized()
        self.pipeline.eval_mode()
        self._active = True

    @property
    def active(self) -> bool:
        return self._active

    def _check_active(self) -> None:
        if not self._active:
            raise ConfigurationError("frozen network has been thawed")

    def forward(self, batch: np.ndarray) -> np.ndarray:
        """Quantized logits for one NCHW batch (thread-safe)."""
        self._check_active()
        return self.backend.run(self.pipeline, batch)

    def predict(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Batched quantized inference logits (thread-safe)."""
        self._check_active()
        return np.concatenate(
            [
                self.forward(images[start : start + batch_size])
                for start in range(0, images.shape[0], batch_size)
            ],
            axis=0,
        )

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> EvalResult:
        """Quantized test accuracy as an :class:`EvalResult` (thread-safe)."""
        start = time.perf_counter()
        acc = accuracy(self.predict(images), labels)
        return EvalResult(
            acc,
            n_samples=int(len(labels)),
            elapsed_s=time.perf_counter() - start,
        )

    def thaw(self) -> QuantizedNetwork:
        """Restore full-precision weights and invalidate this view."""
        self._check_active()
        self._active = False
        self.qnet._restore_shadow()
        return self.qnet

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self._active else "thawed"
        return f"FrozenQuantizedNetwork({self.pipeline.name!r}, {state})"
