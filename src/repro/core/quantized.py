"""Quantized-inference emulation: wrap a float network in a precision spec.

The wrapper reproduces Ristretto's emulation strategy: values are
quantized onto the target format's representable grid but computation
runs in float32, which is exact because every representable fixed-point
/ power-of-two / binary value (and every product/sum the accelerator's
datapath produces at these widths) is itself a float32-representable
number.

Weight quantization is applied by temporarily swapping quantized values
into the shared :class:`~repro.nn.tensor.Parameter` objects; feature
maps are quantized by :class:`~repro.core.fake_quant.FakeQuantLayer`
modules interleaved into the pipeline, mirroring the accelerator's
buffer writes (NFU results are stored to the 16-/8-/4-bit output buffer
before feeding the next layer).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.binary import BinaryQuantizer
from repro.core.fake_quant import FakeQuantLayer
from repro.core.fixed_point import FixedPointQuantizer
from repro.core.power_of_two import PowerOfTwoQuantizer
from repro.core.precision import PrecisionKind, PrecisionSpec
from repro.core.quantizers import IdentityQuantizer, Quantizer
from repro.errors import ConfigurationError
from repro.nn.dense import Flatten
from repro.nn.metrics import accuracy
from repro.nn.module import Module
from repro.nn.network import Sequential
from repro.nn.pooling import MaxPool2D
from repro.nn.tensor import Parameter


def build_quantizers(spec: PrecisionSpec) -> Tuple[Quantizer, Callable[[], Quantizer]]:
    """(weight quantizer, activation-quantizer factory) for a spec.

    The activation side is a factory because every insertion point needs
    its own quantizer/tracker pair (independent radix point per feature
    map, as the paper's future-work section motivates).
    """
    if spec.kind is PrecisionKind.FLOAT:
        return IdentityQuantizer(32), lambda: IdentityQuantizer(32)
    if spec.kind is PrecisionKind.FIXED:
        return (
            FixedPointQuantizer(spec.weight_bits),
            lambda: FixedPointQuantizer(spec.input_bits),
        )
    if spec.kind is PrecisionKind.POW2:
        return (
            PowerOfTwoQuantizer(spec.weight_bits),
            lambda: FixedPointQuantizer(spec.input_bits),
        )
    if spec.kind is PrecisionKind.BINARY:
        return BinaryQuantizer(), lambda: FixedPointQuantizer(spec.input_bits)
    raise ConfigurationError(f"unhandled precision kind {spec.kind}")


def _needs_activation_quant(layer: Module) -> bool:
    """Layers whose outputs are new values that the hardware would store
    at limited precision.  MaxPool and Flatten only move existing
    (already-quantized) values, so re-quantizing them is a no-op."""
    return not isinstance(layer, (MaxPool2D, Flatten, FakeQuantLayer))


class QuantizedNetwork:
    """A float network executed under a precision specification.

    Args:
        network: the underlying :class:`Sequential`; its parameters are
            shared (the wrapper never copies weights — the shadow
            full-precision values live in the network itself).
        spec: the precision point to emulate.
        quantize_bias: quantize bias vectors at the *input* precision
            (the accumulator width); the paper keeps biases at the wider
            input precision rather than the weight precision.
        weight_quantizer / activation_factory: override the quantizers
            the spec would select (used by the radix-placement ablation
            benchmarks); ``None`` uses :func:`build_quantizers`.
    """

    def __init__(
        self,
        network: Sequential,
        spec: PrecisionSpec,
        quantize_bias: bool = True,
        weight_quantizer: Optional[Quantizer] = None,
        activation_factory: Optional[Callable[[], Quantizer]] = None,
    ):
        self.network = network
        self.spec = spec
        default_weight, default_factory = build_quantizers(spec)
        self.weight_quantizer = weight_quantizer or default_weight
        activation_factory = activation_factory or default_factory
        self.bias_quantizer: Quantizer = (
            IdentityQuantizer(32)
            if spec.is_float or not quantize_bias
            else FixedPointQuantizer(spec.input_bits)
        )

        layers: List[Module] = [FakeQuantLayer(activation_factory(), name="quant_in")]
        for layer in network.layers:
            layers.append(layer)
            if _needs_activation_quant(layer):
                layers.append(
                    FakeQuantLayer(activation_factory(), name=f"quant_{layer.name}")
                )
        self.pipeline = Sequential(layers, name=f"{network.name}[{spec.key}]")

        self._weight_params: List[Parameter] = network.weight_parameters()
        weight_ids = {id(p) for p in self._weight_params}
        self._bias_params: List[Parameter] = [
            p for p in network.parameters() if id(p) not in weight_ids
        ]
        self._shadow: Optional[Dict[int, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Weight swapping
    # ------------------------------------------------------------------
    def weight_quantizer_for(self, param: Parameter) -> Quantizer:
        """Quantizer applied to one weight tensor.

        The base class applies the spec's quantizer uniformly;
        :class:`~repro.core.mixed_precision.MixedPrecisionNetwork`
        overrides this with a per-layer assignment.
        """
        return self.weight_quantizer

    def swap_in_quantized(self) -> None:
        """Replace parameter data with quantized values (shadow saved)."""
        if self._shadow is not None:
            raise ConfigurationError("quantized weights already swapped in")
        self._shadow = {}
        for param in self._weight_params:
            self._shadow[id(param)] = param.data.copy()
            param.data[...] = self.weight_quantizer_for(param).quantize(param.data)
        for param in self._bias_params:
            self._shadow[id(param)] = param.data.copy()
            param.data[...] = self.bias_quantizer.quantize(param.data)

    def restore_shadow(self) -> None:
        """Restore the full-precision shadow values saved by swap-in."""
        if self._shadow is None:
            raise ConfigurationError("no shadow weights to restore")
        for param in self._weight_params + self._bias_params:
            param.data[...] = self._shadow[id(param)]
        self._shadow = None

    @contextlib.contextmanager
    def quantized_weights(self):
        """Context manager: quantized values in, shadow restored on exit."""
        self.swap_in_quantized()
        try:
            yield self
        finally:
            self.restore_shadow()

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def calibrate(self, images: np.ndarray, batch_size: int = 64) -> None:
        """Run calibration batches so activation trackers learn ranges."""
        self.pipeline.train_mode()
        try:
            with self.quantized_weights():
                for start in range(0, images.shape[0], batch_size):
                    self.pipeline.forward(images[start : start + batch_size])
        finally:
            self.pipeline.eval_mode()

    def predict(self, images: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Quantized inference logits."""
        with self.quantized_weights():
            return self.pipeline.predict(images, batch_size=batch_size)

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Quantized test accuracy in [0, 1]."""
        return accuracy(self.predict(images), labels)

    # ------------------------------------------------------------------
    def quantized_state(self) -> Dict[str, np.ndarray]:
        """Name -> quantized weight arrays (for inspection/memory tests)."""
        state = {}
        with self.quantized_weights():
            for param in self.network.parameters():
                state[param.name] = param.data.copy()
        return state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"QuantizedNetwork({self.network.name!r}, {self.spec.label})"
