"""Per-channel weight quantization (extension).

The paper (and Ristretto) place one radix point per *tensor*.  Modern
quantization toolchains place one per *output channel*, which preserves
accuracy at aggressive bit widths when channel weight magnitudes vary.
This module provides that variant so its benefit can be measured
against the paper's per-tensor scheme (see the ablation benchmark).

Hardware cost: per-channel radix only changes the per-neuron output
shift amount, which the accelerator's NFU already applies per neuron —
so the datapath cost is unchanged; only a small per-channel shift
table is added.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.fixed_point import FixedPointQuantizer
from repro.core.quantizers import Quantizer
from repro.errors import QuantizationError


class PerChannelFixedPointQuantizer(Quantizer):
    """Fixed point with an independent radix point per output channel.

    Channel axis 0 covers both conv weights (out_c, in_c, k, k) and the
    transposed view of dense weights; for dense layers stored as
    (in, out) pass ``channel_axis=1``.
    """

    def __init__(self, total_bits: int, channel_axis: int = 0):
        if total_bits < 2:
            raise QuantizationError("fixed point needs >= 2 bits")
        self.bits = total_bits
        self.channel_axis = channel_axis
        self._scalar = FixedPointQuantizer(total_bits)

    def quantize(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim <= 1:
            return self._scalar.quantize(x, range_hint=range_hint)
        axis = self.channel_axis % x.ndim
        moved = np.moveaxis(x, axis, 0)
        out = np.empty_like(moved)
        for channel in range(moved.shape[0]):
            out[channel] = self._scalar.quantize(moved[channel])
        return np.moveaxis(out, 0, axis)

    def frac_bits_per_channel(self, x: np.ndarray) -> np.ndarray:
        """The radix positions chosen per channel (diagnostics)."""
        x = np.asarray(x, dtype=np.float32)
        axis = self.channel_axis % max(x.ndim, 1)
        moved = np.moveaxis(x, axis, 0) if x.ndim > 1 else x[None]
        return np.array([
            self._scalar.resolve_frac_bits(moved[c], None)
            for c in range(moved.shape[0])
        ])


class UnsignedFixedPointQuantizer(Quantizer):
    """Unsigned fixed point for non-negative tensors (post-ReLU maps).

    Spending the sign bit on magnitude doubles the representable range
    (or halves the step) for feature maps that are provably >= 0 —
    a standard Ristretto/TFLite refinement over the paper's uniformly
    signed activations.
    """

    def __init__(self, total_bits: int):
        if total_bits < 1:
            raise QuantizationError("need >= 1 bit")
        self.bits = total_bits

    def frac_bits_for(self, max_value: float) -> int:
        import math

        if max_value <= 0.0:
            return self.bits
        return self.bits - int(math.ceil(math.log2(max_value + 1e-12)))

    def quantize(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if np.any(x < 0):
            raise QuantizationError(
                "unsigned quantizer given negative values; use the signed one"
            )
        max_value = range_hint if range_hint is not None else float(
            np.max(x, initial=0.0)
        )
        frac = self.frac_bits_for(max_value)
        scale = float(2.0**frac)
        q_max = 2**self.bits - 1
        return (np.clip(np.rint(x.astype(np.float64) * scale), 0, q_max) / scale).astype(
            np.float32
        )
