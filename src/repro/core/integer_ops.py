"""Bit-exact integer reference for fixed-point inference.

The library emulates quantized inference by snapping values onto the
representable grid and computing in float (Ristretto's strategy).  The
accelerator, of course, computes in *integer* arithmetic.  This module
implements that integer datapath — integer weight/input codes, 64-bit
accumulation, round-half-to-even re-quantization — so the emulation can
be *proved* equivalent rather than assumed:

    float64_emulation(layer(x, w))  ==  decode(integer_layer(Qx, Qw))

The equality is exact against a float64 emulation (products of b-bit
codes carry at most ~2b significant bits and the layer sums stay well
inside float64's 53-bit significand).  The float32 production path
agrees to within float32 rounding; ``tests/core/test_integer_ops.py``
checks both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fixed_point import FixedPointQuantizer
from repro.errors import QuantizationError
from repro.nn.im2col import conv_output_size, im2col


def _round_half_even_rshift(values: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-to-even (matches np.rint)."""
    if shift <= 0:
        return values << (-shift)
    floor = values >> shift           # floor division for negatives too
    remainder = values - (floor << shift)
    half = 1 << (shift - 1)
    round_up = (remainder > half) | ((remainder == half) & ((floor & 1) == 1))
    return floor + round_up.astype(np.int64)


@dataclass(frozen=True)
class FixedPointFormat:
    """A concrete Qm.f signed fixed-point format."""

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise QuantizationError("need >= 2 bits")

    @property
    def scale(self) -> float:
        return float(2.0**self.frac_bits)

    @property
    def q_min(self) -> int:
        return -(2 ** (self.total_bits - 1))

    @property
    def q_max(self) -> int:
        return 2 ** (self.total_bits - 1) - 1

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Float values -> integer codes (round-to-nearest-even, saturating)."""
        scaled = np.rint(np.asarray(values, dtype=np.float64) * self.scale)
        return np.clip(scaled, self.q_min, self.q_max).astype(np.int64)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> float values (float64 for exactness)."""
        return np.asarray(codes, dtype=np.float64) / self.scale

    def requantize_product_sum(
        self, accumulator: np.ndarray, product_frac_bits: int
    ) -> np.ndarray:
        """Round a wide accumulator back into this format.

        ``accumulator`` holds sums of products at ``product_frac_bits``
        fractional bits; the shift back to ``frac_bits`` rounds half to
        even (matching the float path's ``np.rint``) and saturates.
        """
        shift = product_frac_bits - self.frac_bits
        scaled = _round_half_even_rshift(accumulator.astype(np.int64), shift)
        return np.clip(scaled, self.q_min, self.q_max).astype(np.int64)


def align_bias(
    bias_codes: np.ndarray, bias_frac_bits: int, product_frac_bits: int
) -> np.ndarray:
    """Re-scale bias codes to the product accumulator's radix.

    Left-shifts when the accumulator is finer; rounds (half to even)
    when the bias carries more fractional bits than the accumulator —
    exactly what a hardware bias-alignment stage does.
    """
    shift = bias_frac_bits - product_frac_bits
    return _round_half_even_rshift(bias_codes.astype(np.int64), shift)


def integer_dense(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    bias_codes: np.ndarray,
    in_format: FixedPointFormat,
    w_format: FixedPointFormat,
    out_format: FixedPointFormat,
    bias_frac_bits: int,
) -> np.ndarray:
    """Integer inner product ``y = x @ W + b`` entirely in int64.

    Products carry ``in.frac + w.frac`` fractional bits; the bias is
    aligned to that scale (see :func:`align_bias`) before accumulation;
    the sum is re-quantized into ``out_format``.
    """
    product_frac = in_format.frac_bits + w_format.frac_bits
    acc = x_codes.astype(np.int64) @ w_codes.astype(np.int64)
    acc = acc + align_bias(bias_codes, bias_frac_bits, product_frac)
    return out_format.requantize_product_sum(acc, product_frac)


def integer_conv2d(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    bias_codes: np.ndarray,
    stride: int,
    padding: int,
    in_format: FixedPointFormat,
    w_format: FixedPointFormat,
    out_format: FixedPointFormat,
    bias_frac_bits: int,
) -> np.ndarray:
    """Integer NCHW convolution via im2col, int64 accumulation."""
    n = x_codes.shape[0]
    out_c = w_codes.shape[0]
    kernel = w_codes.shape[2]
    out_h = conv_output_size(x_codes.shape[2], kernel, stride, padding)
    out_w = conv_output_size(x_codes.shape[3], kernel, stride, padding)

    # im2col only gathers values; float64 holds int codes up to 2^53 exactly
    cols = im2col(x_codes.astype(np.float64), kernel, stride, padding)
    cols = cols.astype(np.int64)
    w_mat = w_codes.reshape(out_c, -1).astype(np.int64)
    product_frac = in_format.frac_bits + w_format.frac_bits
    acc = w_mat @ cols
    acc = acc + align_bias(bias_codes, bias_frac_bits, product_frac)[:, None]
    out = out_format.requantize_product_sum(acc, product_frac)
    return out.reshape(out_c, out_h, out_w, n).transpose(3, 0, 1, 2)


def format_for_tensor(values: np.ndarray, total_bits: int) -> FixedPointFormat:
    """The dynamic fixed-point format the quantizer would pick."""
    quantizer = FixedPointQuantizer(total_bits)
    max_abs = float(np.max(np.abs(values), initial=0.0))
    return FixedPointFormat(total_bits, quantizer.frac_bits_for(max_abs))
