"""Quantizer base class.

A quantizer maps float arrays onto the representable grid of some
hardware number format and returns the *dequantized* float values —
the same emulation strategy Ristretto uses, so the float pipeline can
execute quantized inference exactly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Quantizer:
    """Maps arrays onto a finite representable-value grid.

    Subclasses implement :meth:`quantize`; ``range_hint`` lets a caller
    (e.g. a :class:`~repro.core.fake_quant.FakeQuantLayer` tracking
    activation ranges online) pin the dynamic range instead of deriving
    it from the array itself.
    """

    #: bits needed to store one value in this format
    bits: int = 32

    def quantize(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        return self.quantize(x, range_hint=range_hint)

    def quantization_error(self, x: np.ndarray) -> float:
        """RMS error introduced by quantizing ``x`` (diagnostic)."""
        diff = self.quantize(x) - x
        return float(np.sqrt(np.mean(diff.astype(np.float64) ** 2)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(bits={self.bits})"


class IdentityQuantizer(Quantizer):
    """Float32 pass-through — the paper's full-precision baseline."""

    def __init__(self, bits: int = 32):
        self.bits = bits

    def quantize(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        return np.asarray(x, dtype=np.float32)
