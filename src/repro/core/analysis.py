"""Quantization error analysis and per-layer sensitivity.

The paper's future work proposes "analytically investigating the
correlations between network and datasets and their behavior in lower
precision thereby effectively predicting the lower precision accuracy".
This module provides the two standard tools for that analysis:

* :func:`quantization_report` — per-parameter quantization error and
  signal-to-quantization-noise ratio (SQNR) for a precision spec, a
  cheap static predictor of which tensors are at risk;
* :func:`layerwise_sensitivity` — the empirical counterpart: quantize
  one layer's weights at a time and measure the accuracy impact,
  ranking layers by fragility (this directly surfaces the effect the
  paper saw on ALEX++ (8,8), where one layer's wide value range broke
  8-bit quantization).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.precision import PrecisionSpec
from repro.core.factory import make_quantizers
from repro.core.quantized import QuantizedNetwork
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential


@dataclass(frozen=True)
class TensorQuantizationStats:
    """Quantization statistics for one parameter tensor."""

    name: str
    size: int
    max_abs: float
    rms_error: float
    sqnr_db: float          # 10*log10(signal power / noise power)
    zero_fraction: float    # values flushed to zero by quantization


def quantization_report(
    network: Sequential, spec: PrecisionSpec
) -> List[TensorQuantizationStats]:
    """Static per-tensor error analysis for a precision point."""
    weight_quantizer, _ = make_quantizers(spec)
    report: List[TensorQuantizationStats] = []
    for param in network.weight_parameters():
        data = param.data.astype(np.float64)
        quantized = weight_quantizer.quantize(param.data).astype(np.float64)
        noise = quantized - data
        signal_power = float(np.mean(data**2))
        noise_power = float(np.mean(noise**2))
        if noise_power <= 0.0:
            sqnr = math.inf
        elif signal_power <= 0.0:
            sqnr = -math.inf
        else:
            sqnr = 10.0 * math.log10(signal_power / noise_power)
        report.append(
            TensorQuantizationStats(
                name=param.name,
                size=param.size,
                max_abs=float(np.max(np.abs(data), initial=0.0)),
                rms_error=float(np.sqrt(noise_power)),
                sqnr_db=sqnr,
                zero_fraction=float(np.mean((quantized == 0) & (data != 0))),
            )
        )
    return report


def layerwise_sensitivity(
    network: Sequential,
    spec: PrecisionSpec,
    images: np.ndarray,
    labels: np.ndarray,
) -> Dict[str, float]:
    """Accuracy drop when quantizing each weight tensor in isolation.

    Returns ``{parameter name: accuracy_drop}`` relative to the float
    network on the given evaluation set.  Activations stay at full
    precision so the measurement isolates weight quantization.
    """
    baseline = accuracy(network.predict(images), labels)
    weight_quantizer, _ = make_quantizers(spec)
    drops: Dict[str, float] = {}
    for param in network.weight_parameters():
        original = param.data.copy()
        try:
            param.data[...] = weight_quantizer.quantize(param.data)
            quantized_accuracy = accuracy(network.predict(images), labels)
        finally:
            param.data[...] = original
        drops[param.name] = baseline - quantized_accuracy
    return drops


def most_sensitive_layer(
    network: Sequential,
    spec: PrecisionSpec,
    images: np.ndarray,
    labels: np.ndarray,
) -> str:
    """Name of the weight tensor whose quantization hurts accuracy most."""
    drops = layerwise_sensitivity(network, spec, images, labels)
    return max(drops, key=drops.get)


def activation_range_report(quantized_network, images: np.ndarray) -> Dict[str, float]:
    """Calibrated activation ranges per fake-quant insertion point.

    Runs calibration batches through a :class:`~repro.core.quantized.
    QuantizedNetwork` and returns ``{insertion point name: max_abs}`` —
    the ranges that determine each feature map's radix point.  Large
    disparities across layers are the signature of the range problem
    the paper observed on ALEX++ (8,8).
    """
    from repro.core.fake_quant import FakeQuantLayer

    quantized_network.calibrate(images)
    report: Dict[str, float] = {}
    for layer in quantized_network.pipeline.layers:
        if isinstance(layer, FakeQuantLayer):
            report[layer.name] = layer.tracker.max_abs
    return report


def predicted_risk_ranking(
    network: Sequential, spec: PrecisionSpec
) -> List[str]:
    """Rank weight tensors by static risk (ascending SQNR).

    A cheap, inference-free approximation of
    :func:`layerwise_sensitivity`: tensors with the lowest
    signal-to-quantization-noise ratio are predicted to hurt most.
    """
    report = quantization_report(network, spec)
    return [stats.name for stats in sorted(report, key=lambda s: s.sqnr_db)]
