"""Single quantizer-construction entry point.

Quantizer selection used to be duplicated between
``core.quantized.build_quantizers`` and ad-hoc call sites; this module
is now the one place that maps a :class:`PrecisionSpec` (or any string
:meth:`PrecisionSpec.parse` accepts) to the pair every consumer needs:

* the **weight quantizer** — one shared instance, since weight
  quantization is stateless per tensor, and
* an **activation-quantizer factory** — a fresh quantizer per
  insertion point, because each feature map tracks its own range and
  radix point (the independent-radix-point refinement the paper's
  future-work section motivates).
"""

from __future__ import annotations

from typing import Callable, Tuple, Union

from repro.core.binary import BinaryQuantizer
from repro.core.fixed_point import FixedPointQuantizer
from repro.core.power_of_two import PowerOfTwoQuantizer
from repro.core.precision import PrecisionKind, PrecisionSpec
from repro.core.quantizers import IdentityQuantizer, Quantizer
from repro.errors import ConfigurationError

__all__ = ["make_quantizers"]


def make_quantizers(
    spec: Union[PrecisionSpec, str],
) -> Tuple[Quantizer, Callable[[], Quantizer]]:
    """(weight quantizer, activation-quantizer factory) for ``spec``.

    ``spec`` may be a :class:`PrecisionSpec` or any string
    :meth:`PrecisionSpec.parse` understands (``"fixed8"``,
    ``"fixed:4:8"``, ...).  This is the factory behind
    :class:`~repro.core.quantized.QuantizedNetwork`,
    :class:`~repro.core.mixed_precision.MixedPrecisionNetwork` and the
    sensitivity analyses.
    """
    spec = PrecisionSpec.parse(spec)
    if spec.kind is PrecisionKind.FLOAT:
        return IdentityQuantizer(32), lambda: IdentityQuantizer(32)
    if spec.kind is PrecisionKind.FIXED:
        return (
            FixedPointQuantizer(spec.weight_bits),
            lambda: FixedPointQuantizer(spec.input_bits),
        )
    if spec.kind is PrecisionKind.POW2:
        return (
            PowerOfTwoQuantizer(spec.weight_bits),
            lambda: FixedPointQuantizer(spec.input_bits),
        )
    if spec.kind is PrecisionKind.BINARY:
        return BinaryQuantizer(), lambda: FixedPointQuantizer(spec.input_bits)
    raise ConfigurationError(f"unhandled precision kind {spec.kind}")
