"""Full-network integer inference (fixed-point functional simulator).

:mod:`repro.core.integer_ops` proves layer-level equivalence between
the float quantization emulation and a true integer datapath; this
module scales that to whole networks: it executes a calibrated
fixed-point :class:`~repro.core.quantized.QuantizedNetwork` entirely on
integer codes — integer conv/dense with wide accumulators, ReLU and
max-pooling on codes, rounded division for average pooling, and
round-half-even re-quantization at every buffer write — exactly what
the accelerator's datapath does.

Use it to validate deployments (does the emulated accuracy survive on
real integer hardware?) or as a golden model for RTL verification
alongside :mod:`repro.hw.verilog`.

Only fixed-point specs are supported: power-of-two and binary weights
reduce to shifts/negates of the same integer pipeline and are left to
the layer-level proofs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.fake_quant import FakeQuantLayer
from repro.core.integer_ops import (
    FixedPointFormat,
    _round_half_even_rshift,
    align_bias,
)
from repro.core.precision import PrecisionKind
from repro.core.quantized import QuantizedNetwork
from repro.errors import QuantizationError
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense, Flatten
from repro.nn.activations import ReLU
from repro.nn.im2col import conv_output_size, im2col
from repro.nn.pooling import AvgPool2D, MaxPool2D

#: accumulator width carried between a MAC layer and the next requantize
ACCUMULATOR_BITS = 48


def _round_half_even_div(values: np.ndarray, divisor: int) -> np.ndarray:
    """Integer division with round-half-to-even (for average pooling)."""
    floor = np.floor_divide(values, divisor)
    remainder = values - floor * divisor
    twice = 2 * remainder
    round_up = (twice > divisor) | ((twice == divisor) & ((floor & 1) == 1))
    return floor + round_up.astype(np.int64)


class IntegerInference:
    """Executes a calibrated fixed-point quantized network on integers.

    Args:
        quantized_network: a :class:`QuantizedNetwork` with a FIXED
            precision spec whose range trackers have been calibrated.
    """

    def __init__(self, quantized_network: QuantizedNetwork):
        spec = quantized_network.spec
        if spec.kind is not PrecisionKind.FIXED:
            raise QuantizationError(
                "IntegerInference supports fixed-point specs only"
            )
        self.qnet = quantized_network
        self.spec = spec
        self._check_calibrated()

    def _check_calibrated(self) -> None:
        for layer in self.qnet.pipeline.layers:
            if isinstance(layer, FakeQuantLayer) and not layer.tracker.initialized:
                raise QuantizationError(
                    f"{layer.name}: calibrate() the network before integer inference"
                )

    # ------------------------------------------------------------------
    def _format_for(self, layer: FakeQuantLayer) -> FixedPointFormat:
        quantizer = layer.quantizer
        frac = quantizer.frac_bits_for(layer.tracker.max_abs)
        return FixedPointFormat(self.spec.input_bits, frac)

    def _weight_codes(self, param) -> Tuple[np.ndarray, FixedPointFormat]:
        quantizer = self.qnet.weight_quantizer
        frac = quantizer.resolve_frac_bits(param.data, None)
        fmt = FixedPointFormat(self.spec.weight_bits, frac)
        return fmt.encode(param.data), fmt

    def _bias_codes(self, param) -> Tuple[np.ndarray, int]:
        quantizer = self.qnet.bias_quantizer
        frac = quantizer.resolve_frac_bits(param.data, None)
        fmt = FixedPointFormat(quantizer.bits, frac)
        return fmt.encode(param.data), frac

    @staticmethod
    def _requantize(
        codes: np.ndarray,
        fmt: FixedPointFormat,
        target: FixedPointFormat,
        divisor: int = 1,
    ) -> np.ndarray:
        """One rounding from (codes / (2^fmt.frac * divisor)) onto the
        target grid — average-pooling divisors fold in here so the
        integer path rounds exactly once, like the float path."""
        shift = fmt.frac_bits - target.frac_bits
        numerator = codes.astype(np.int64)
        if shift >= 0:
            total_divisor = divisor << shift
        else:
            numerator = numerator << (-shift)
            total_divisor = divisor
        if total_divisor > 1:
            rounded = _round_half_even_div(numerator, total_divisor)
        else:
            rounded = numerator
        return np.clip(rounded, target.q_min, target.q_max).astype(np.int64)

    # ------------------------------------------------------------------
    def predict(self, images: np.ndarray) -> np.ndarray:
        """Integer-pipeline logits, decoded to float for comparison."""
        codes: Optional[np.ndarray] = None
        fmt: Optional[FixedPointFormat] = None
        divisor = 1  # pending average-pooling divisor
        value = np.asarray(images, dtype=np.float32)

        for layer in self.qnet.pipeline.layers:
            if isinstance(layer, FakeQuantLayer):
                target = self._format_for(layer)
                if codes is None:
                    codes = target.encode(value)
                else:
                    codes = self._requantize(codes, fmt, target, divisor)
                fmt = target
                divisor = 1
            elif isinstance(layer, Conv2D):
                self._require_clean(divisor, layer)
                codes, fmt = self._conv(layer, codes, fmt)
            elif isinstance(layer, Dense):
                self._require_clean(divisor, layer)
                codes, fmt = self._dense(layer, codes, fmt)
            elif isinstance(layer, ReLU):
                codes = np.maximum(codes, 0)  # commutes with /divisor > 0
            elif isinstance(layer, MaxPool2D):
                codes = self._maxpool(layer, codes)
            elif isinstance(layer, AvgPool2D):
                codes = self._avgpool(layer, codes)
                divisor *= layer.kernel_size**2
            elif isinstance(layer, Flatten):
                codes = codes.reshape(codes.shape[0], -1)
            else:
                raise QuantizationError(
                    f"IntegerInference has no integer path for "
                    f"{type(layer).__name__}"
                )
        if divisor != 1:
            raise QuantizationError("network ends with an unresolved avg pool")
        return fmt.decode(codes).astype(np.float32)

    @staticmethod
    def _require_clean(divisor: int, layer) -> None:
        if divisor != 1:
            raise QuantizationError(
                f"{layer.name}: MAC layer fed by an un-requantized average "
                f"pool (a FakeQuant stage is expected between them)"
            )

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        logits = self.predict(images)
        return float(np.mean(logits.argmax(axis=1) == np.asarray(labels)))

    # ------------------------------------------------------------------
    def _conv(self, layer: Conv2D, codes, fmt):
        w_codes, w_fmt = self._weight_codes(layer.weight)
        product_frac = fmt.frac_bits + w_fmt.frac_bits
        cols = im2col(
            codes.astype(np.float64), layer.kernel_size, layer.stride, layer.padding
        ).astype(np.int64)
        acc = w_codes.reshape(layer.out_channels, -1) @ cols
        if layer.bias is not None:
            b_codes, b_frac = self._bias_codes(layer.bias)
            acc = acc + align_bias(b_codes, b_frac, product_frac)[:, None]
        n = codes.shape[0]
        out_h = conv_output_size(
            codes.shape[2], layer.kernel_size, layer.stride, layer.padding
        )
        out_w = conv_output_size(
            codes.shape[3], layer.kernel_size, layer.stride, layer.padding
        )
        acc = acc.reshape(layer.out_channels, out_h, out_w, n).transpose(3, 0, 1, 2)
        return acc, FixedPointFormat(ACCUMULATOR_BITS, product_frac)

    def _dense(self, layer: Dense, codes, fmt):
        w_codes, w_fmt = self._weight_codes(layer.weight)
        product_frac = fmt.frac_bits + w_fmt.frac_bits
        acc = codes.astype(np.int64) @ w_codes
        if layer.bias is not None:
            b_codes, b_frac = self._bias_codes(layer.bias)
            acc = acc + align_bias(b_codes, b_frac, product_frac)
        return acc, FixedPointFormat(ACCUMULATOR_BITS, product_frac)

    @staticmethod
    def _maxpool(layer: MaxPool2D, codes):
        out_h, out_w = layer._out_hw(codes.shape[2], codes.shape[3])
        int_min = np.iinfo(np.int64).min
        padded = layer._padded(codes.astype(np.float64), fill=float(int_min))
        windows = layer._windows(padded, out_h, out_w)
        return windows.max(axis=0).astype(np.int64)

    @staticmethod
    def _avgpool(layer: AvgPool2D, codes):
        """Window sums only; the k^2 divisor is folded into the next
        requantize so the integer path rounds exactly once."""
        out_h, out_w = layer._out_hw(codes.shape[2], codes.shape[3])
        padded = layer._padded(codes.astype(np.float64), fill=0.0)
        windows = layer._windows(padded, out_h, out_w).astype(np.int64)
        return windows.sum(axis=0)
