"""Fake-quantization layer for activations.

Inserted between network layers by :class:`repro.core.quantized.
QuantizedNetwork`, it quantizes feature maps on the forward pass and
passes gradients through unchanged on the backward pass — the
straight-through estimator that makes quantized training possible
(Section IV-A, "Training Time Techniques").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.quantizers import Quantizer
from repro.core.range_tracker import RangeTracker
from repro.nn.module import Module


class FakeQuantLayer(Module):
    """Quantize activations in the forward pass; STE in the backward.

    In training mode the layer also folds each batch into its
    :class:`RangeTracker`, so the radix point follows the feature-map
    distribution as training progresses.  In eval mode the frozen range
    is used (calibration behaviour).
    """

    def __init__(
        self,
        quantizer: Quantizer,
        tracker: Optional[RangeTracker] = None,
        name: str = "",
    ):
        super().__init__(name=name or "fake_quant")
        self.quantizer = quantizer
        self.tracker = tracker or RangeTracker()

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            self.tracker.observe(x)
        hint = self.tracker.max_abs if self.tracker.initialized else None
        return self.quantizer.quantize(x, range_hint=hint)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # Straight-through estimator: d(quantize)/dx ~= 1.
        return grad_out

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FakeQuantLayer({self.quantizer!r})"
