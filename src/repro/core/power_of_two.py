"""Power-of-two weight quantization.

Section IV-A.3 of the paper, following Lin et al.: weights are limited
to ``±2^e`` so the accelerator replaces multipliers with barrel
shifters.  The paper's configuration stores weights in 6 bits: one sign
bit and a 5-bit exponent field, one code of which is reserved for an
exact zero.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.quantizers import Quantizer
from repro.errors import QuantizationError


class PowerOfTwoQuantizer(Quantizer):
    """Round each value to the nearest signed power of two.

    Args:
        bits: total storage bits; 1 sign bit + (bits-1) exponent bits.
            The exponent window tracks the tensor's max magnitude, so
            small-magnitude weight tensors keep resolution.

    With ``bits=6`` there are 31 usable exponents below the maximum;
    magnitudes below ``2^(e_min-1)`` flush to the reserved zero code.
    """

    def __init__(self, bits: int = 6):
        if bits < 2:
            raise QuantizationError("power-of-two needs >= 2 bits (sign + exponent)")
        self.bits = bits
        self.exponent_levels = 2 ** (bits - 1) - 1  # one code reserved for zero

    # ------------------------------------------------------------------
    def exponent_window(self, max_abs: float) -> tuple:
        """(e_min, e_max) representable exponents for this dynamic range."""
        if max_abs <= 0.0:
            return (0, 0)
        e_max = int(math.floor(math.log2(max_abs + 1e-30) + 0.5))
        e_min = e_max - (self.exponent_levels - 1)
        return (e_min, e_max)

    def quantize(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        max_abs = range_hint if range_hint is not None else float(np.max(np.abs(x), initial=0.0))
        if max_abs <= 0.0:
            return np.zeros_like(x)
        e_min, e_max = self.exponent_window(max_abs)
        magnitude = np.abs(x).astype(np.float64)
        with np.errstate(divide="ignore"):
            exponents = np.where(magnitude > 0, np.rint(np.log2(magnitude + 1e-45)), e_min - 10)
        exponents = np.clip(exponents, e_min - 10, e_max)
        # Anything more than one binade below e_min flushes to zero.
        zero_mask = exponents < e_min
        values = np.sign(x) * np.exp2(np.clip(exponents, e_min, e_max))
        values[zero_mask] = 0.0
        return values.astype(np.float32)

    def exponent_repr(self, x: np.ndarray, range_hint: Optional[float] = None) -> np.ndarray:
        """Signed exponent codes (sign, exponent) for hardware-level tests.

        Returns an integer array where 0 encodes zero and nonzero entries
        are ``sign * (exponent - e_min + 1)``.
        """
        x = np.asarray(x, dtype=np.float32)
        max_abs = range_hint if range_hint is not None else float(np.max(np.abs(x), initial=0.0))
        quantized = self.quantize(x, range_hint=max_abs)
        e_min, _ = self.exponent_window(max_abs)
        codes = np.zeros(x.shape, dtype=np.int64)
        nonzero = quantized != 0
        exps = np.log2(np.abs(quantized[nonzero])).astype(np.int64)
        codes[nonzero] = np.sign(quantized[nonzero]).astype(np.int64) * (exps - e_min + 1)
        return codes
