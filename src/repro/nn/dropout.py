"""Inverted dropout regularization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.module import Module
from repro.nn.tensor import DTYPE


class Dropout(Module):
    """Inverted dropout: active in training, identity in eval.

    Each activation is zeroed with probability ``rate`` and survivors
    are scaled by ``1 / (1 - rate)`` so eval needs no rescaling.
    """

    def __init__(
        self,
        rate: float = 0.5,
        rng: Optional[np.random.Generator] = None,
        name: str = "",
    ):
        super().__init__(name=name or "dropout")
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self.rng.random(x.shape) < keep).astype(DTYPE) / keep
        self._mask = mask
        return (x * mask).astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            return grad_out
        if self._mask is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        return (grad_out * self._mask).astype(DTYPE, copy=False)

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Dropout(rate={self.rate})"
