"""Batch normalization.

Not used by the paper's Table I/II networks (Caffe-era recipes), but
essential for training binary-weight networks at depth — BinaryConnect
and BinaryNet both rely on it — so the library provides it for the
extension studies.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.module import Module
from repro.nn.tensor import DTYPE, Parameter


class BatchNorm(Module):
    """Batch normalization over NCHW or NC inputs (per-channel).

    Training mode normalizes with batch statistics and updates running
    estimates; eval mode uses the running estimates.  ``gamma``/``beta``
    are trainable scale and shift.

    Args:
        num_features: channel count C.
        momentum: running-statistics EMA coefficient.
        epsilon: variance floor.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        epsilon: float = 1e-5,
        name: str = "",
    ):
        super().__init__(name=name or "batchnorm")
        if num_features < 1:
            raise ConfigurationError("num_features must be >= 1")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.epsilon = epsilon
        self.gamma = self.register_parameter(
            Parameter(np.ones(num_features, dtype=DTYPE), name=f"{self.name}.gamma")
        )
        self.beta = self.register_parameter(
            Parameter(np.zeros(num_features, dtype=DTYPE), name=f"{self.name}.beta")
        )
        self.running_mean = np.zeros(num_features, dtype=DTYPE)
        self.running_var = np.ones(num_features, dtype=DTYPE)
        self._cache: Optional[dict] = None

    # ------------------------------------------------------------------
    def _check_shape(self, x: np.ndarray) -> tuple:
        if x.ndim == 2:
            if x.shape[1] != self.num_features:
                raise ShapeError(
                    f"{self.name}: expected (N, {self.num_features}), got {x.shape}"
                )
            return (0,)
        if x.ndim == 4:
            if x.shape[1] != self.num_features:
                raise ShapeError(
                    f"{self.name}: expected NCHW with C={self.num_features}, "
                    f"got {x.shape}"
                )
            return (0, 2, 3)
        raise ShapeError(f"{self.name}: expected 2-D or 4-D input, got {x.shape}")

    @staticmethod
    def _expand(stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 4:
            return stat[None, :, None, None]
        return stat[None, :]

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._check_shape(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            ).astype(DTYPE)
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            ).astype(DTYPE)
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.epsilon)
        x_hat = (x - self._expand(mean, x.ndim)) / self._expand(std, x.ndim)
        out = (
            self._expand(self.gamma.data, x.ndim) * x_hat
            + self._expand(self.beta.data, x.ndim)
        )
        if self.training:
            self._cache = {"x_hat": x_hat, "std": std, "axes": axes, "ndim": x.ndim}
        return out.astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        x_hat = self._cache["x_hat"]
        std = self._cache["std"]
        axes = self._cache["axes"]
        ndim = self._cache["ndim"]

        self.gamma.accumulate_grad((grad_out * x_hat).sum(axis=axes))
        self.beta.accumulate_grad(grad_out.sum(axis=axes))

        # standard batchnorm backward (per channel)
        count = grad_out.size / self.num_features
        gamma = self._expand(self.gamma.data, ndim)
        grad_x_hat = grad_out * gamma
        sum_grad = self._expand(grad_x_hat.sum(axis=axes), ndim)
        sum_grad_xhat = self._expand((grad_x_hat * x_hat).sum(axis=axes), ndim)
        grad_x = (
            grad_x_hat - sum_grad / count - x_hat * sum_grad_xhat / count
        ) / self._expand(std, ndim)
        return grad_x.astype(DTYPE, copy=False)

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BatchNorm({self.num_features})"
