"""Structured evaluation results.

Historically ``Trainer.evaluate`` returned a dict while
``QuantizedNetwork.evaluate`` returned a bare accuracy float, so every
caller had to know which shape it was holding.  :class:`EvalResult`
unifies them: it *is* the accuracy (a ``float`` subclass, so
comparisons, arithmetic and formatting at old call sites keep working)
and it is also a small mapping carrying ``accuracy``, ``loss``,
``n_samples`` and ``elapsed_s``.  Prefer ``result.accuracy`` (or
``result["accuracy"]``) over ``float(result)`` when the accuracy is
what you mean.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["EvalResult"]


class EvalResult(float):
    """Evaluation outcome: an accuracy float with attached metrics.

    Attributes:
        accuracy: fraction correct in [0, 1] (== the float value).
        loss: dataset loss (``nan`` when the evaluator has no loss).
        n_samples: number of evaluated examples.
        elapsed_s: wall-clock evaluation time.
    """

    _FIELDS: Tuple[str, ...] = ("accuracy", "loss", "n_samples", "elapsed_s")

    def __new__(
        cls,
        accuracy: float,
        loss: float = float("nan"),
        n_samples: int = 0,
        elapsed_s: float = 0.0,
    ) -> "EvalResult":
        self = super().__new__(cls, accuracy)
        self.accuracy = float(accuracy)
        self.loss = float(loss)
        self.n_samples = int(n_samples)
        self.elapsed_s = float(elapsed_s)
        return self

    # ------------------------------------------------------------------
    # Mapping protocol (read-only)
    # ------------------------------------------------------------------
    def __getitem__(self, key: str) -> float:
        if key in self._FIELDS:
            return getattr(self, key)
        raise KeyError(key)

    def keys(self) -> Tuple[str, ...]:
        return self._FIELDS

    def items(self) -> Iterator[Tuple[str, float]]:
        return ((key, getattr(self, key)) for key in self._FIELDS)

    def get(self, key: str, default=None):
        return getattr(self, key) if key in self._FIELDS else default

    def __contains__(self, key: object) -> bool:
        return key in self._FIELDS

    def as_dict(self) -> Dict[str, float]:
        return {key: getattr(self, key) for key in self._FIELDS}

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"EvalResult(accuracy={self.accuracy:.4f}, loss={self.loss:.4f}, "
            f"n_samples={self.n_samples}, elapsed_s={self.elapsed_s:.4f})"
        )
