"""Saving and loading network weights as ``.npz`` archives."""

from __future__ import annotations

import hashlib
import os
from typing import Dict

import numpy as np

from repro.errors import ShapeError
from repro.nn.network import Sequential


def network_state(network: Sequential) -> Dict[str, np.ndarray]:
    """Name -> array snapshot of every parameter."""
    state: Dict[str, np.ndarray] = {}
    for param in network.parameters():
        if param.name in state:
            raise ShapeError(f"duplicate parameter name {param.name!r}")
        state[param.name] = param.data.copy()
    return state


def state_digest(network: Sequential) -> str:
    """SHA-256 over parameter names, shapes and exact float32 bytes.

    Two networks have the same digest iff their parameters are
    bit-identical, making save/load round trips and serving-cache
    identity checkable without comparing arrays element-wise.
    """
    digest = hashlib.sha256()
    for name, data in sorted(network_state(network).items()):
        digest.update(name.encode("utf-8"))
        digest.update(str(data.shape).encode("ascii"))
        digest.update(np.ascontiguousarray(data).tobytes())
    return digest.hexdigest()


def save_network_weights(network: Sequential, path: str) -> None:
    """Write all parameters to a compressed ``.npz`` file."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **network_state(network))


def transfer_weights(source: Sequential, target: Sequential) -> None:
    """Copy parameters between two identically built networks.

    Used to warm-start quantization-aware training from a trained
    full-precision network (the paper initializes "the parameters for
    lower precision training from the floating point counterpart").
    """
    state = network_state(source)
    for param in target.parameters():
        if param.name not in state:
            raise ShapeError(f"source network missing parameter {param.name!r}")
        param.set_data(state[param.name])


def load_network_state(network: Sequential, state: Dict[str, np.ndarray]) -> None:
    """Load parameters from an in-memory name -> array mapping.

    The mapping must match the architecture exactly: every parameter
    name present with the right shape, and no extras.  This is the
    in-memory counterpart of :func:`load_network_weights`, used when
    weights travel through pickled tasks or cache entries instead of
    ``.npz`` files.
    """
    remaining = dict(state)
    for param in network.parameters():
        if param.name not in remaining:
            raise ShapeError(f"state missing parameter {param.name!r}")
        param.set_data(remaining.pop(param.name))
    if remaining:
        raise ShapeError(f"state has unmatched parameters: {sorted(remaining)}")


def load_network_weights(network: Sequential, path: str) -> None:
    """Load parameters saved by :func:`save_network_weights`.

    The network architecture must match: every parameter name must be
    present with the right shape, and no extras may remain.
    """
    with np.load(path) as archive:
        stored = {key: archive[key] for key in archive.files}
    load_network_state(network, stored)
