"""Saving and loading network weights as ``.npz`` archives.

Decoding failures surface as :class:`~repro.errors.SerializationError`
(truncated or corrupt archive bytes) or :class:`~repro.errors.ShapeError`
(architecture mismatch) rather than whatever numpy/zipfile exception the
damage happens to trigger, so recovery paths — the model registry, the
serving store's build retries — can match on type.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
import zlib
from typing import Dict

import numpy as np

from repro.errors import SerializationError, ShapeError
from repro.nn.network import Sequential


def network_state(network: Sequential) -> Dict[str, np.ndarray]:
    """Name -> array snapshot of every parameter."""
    state: Dict[str, np.ndarray] = {}
    for param in network.parameters():
        if param.name in state:
            raise ShapeError(f"duplicate parameter name {param.name!r}")
        state[param.name] = param.data.copy()
    return state


def state_dict_digest(state: Dict[str, np.ndarray]) -> str:
    """SHA-256 over a name -> array mapping (names, shapes, exact bytes).

    The state-dict counterpart of :func:`state_digest`, used when the
    parameters travel as plain arrays (registry artifacts, cache
    entries, pickled sweep tasks) rather than inside a network.
    """
    digest = hashlib.sha256()
    for name, data in sorted(state.items()):
        data = np.asarray(data)
        digest.update(name.encode("utf-8"))
        digest.update(str(data.shape).encode("ascii"))
        digest.update(np.ascontiguousarray(data).tobytes())
    return digest.hexdigest()


def state_digest(network: Sequential) -> str:
    """SHA-256 over parameter names, shapes and exact float32 bytes.

    Two networks have the same digest iff their parameters are
    bit-identical, making save/load round trips and serving-cache
    identity checkable without comparing arrays element-wise.
    """
    return state_dict_digest(network_state(network))


def save_network_weights(network: Sequential, path: str) -> None:
    """Write all parameters to a compressed ``.npz`` file."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **network_state(network))


def transfer_weights(source: Sequential, target: Sequential) -> None:
    """Copy parameters between two identically built networks.

    Used to warm-start quantization-aware training from a trained
    full-precision network (the paper initializes "the parameters for
    lower precision training from the floating point counterpart").
    """
    state = network_state(source)
    for param in target.parameters():
        if param.name not in state:
            raise ShapeError(f"source network missing parameter {param.name!r}")
        param.set_data(state[param.name])


def load_network_state(network: Sequential, state: Dict[str, np.ndarray]) -> None:
    """Load parameters from an in-memory name -> array mapping.

    The mapping must match the architecture exactly: every parameter
    name present with the right shape, and no extras.  This is the
    in-memory counterpart of :func:`load_network_weights`, used when
    weights travel through pickled tasks or cache entries instead of
    ``.npz`` files.
    """
    remaining = dict(state)
    for param in network.parameters():
        if param.name not in remaining:
            raise ShapeError(f"state missing parameter {param.name!r}")
        param.set_data(remaining.pop(param.name))
    if remaining:
        raise ShapeError(f"state has unmatched parameters: {sorted(remaining)}")


def read_state_archive(path: str) -> Dict[str, np.ndarray]:
    """Decode an ``.npz`` weight archive into a name -> array mapping.

    A file that exists but cannot be decoded — truncated, overwritten,
    not a zip at all — raises :class:`~repro.errors.SerializationError`
    naming the path.  A missing file still raises ``FileNotFoundError``
    (the caller may legitimately treat that as "nothing saved yet").
    """
    try:
        with np.load(path) as archive:
            return {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        raise
    except (ValueError, OSError, EOFError, zipfile.BadZipFile, KeyError,
            zlib.error) as exc:
        raise SerializationError(
            f"weight archive {path!r} is corrupt or truncated: {exc}"
        ) from exc


def load_network_weights(network: Sequential, path: str) -> None:
    """Load parameters saved by :func:`save_network_weights`.

    The network architecture must match: every parameter name must be
    present with the right shape, and no extras may remain.  Undecodable
    files raise :class:`~repro.errors.SerializationError`.
    """
    load_network_state(network, read_state_archive(path))
