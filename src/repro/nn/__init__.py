"""From-scratch numpy neural-network framework.

This subpackage replaces the paper's Caffe/Ristretto training stack.  It
implements exactly what the study needs — convolutional, pooling and
fully connected layers with backpropagation, SGD training, and model
serialization — in plain numpy, with an explicit layer-object API:

>>> from repro import nn
>>> net = nn.Sequential([
...     nn.Conv2D(1, 8, kernel_size=3, padding=1),
...     nn.ReLU(),
...     nn.MaxPool2D(2),
...     nn.Flatten(),
...     nn.Dense(8 * 14 * 14, 10),
... ], name="tiny")

All image tensors are NCHW ``float32`` numpy arrays.
"""

from repro.nn.tensor import Parameter
from repro.nn.module import Module
from repro.nn.conv import Conv2D
from repro.nn.pooling import AvgPool2D, MaxPool2D
from repro.nn.dense import Dense, Flatten
from repro.nn.activations import LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.losses import Loss, MeanSquaredError, SoftmaxCrossEntropy, softmax
from repro.nn.batchnorm import BatchNorm
from repro.nn.dropout import Dropout
from repro.nn.network import Sequential
from repro.nn.optim import SGD, ConstantSchedule, ExponentialDecay, LRSchedule, StepDecay
from repro.nn.adam import Adam
from repro.nn.evaluation import EvalResult
from repro.nn.trainer import EarlyStopping, Trainer, TrainingHistory
from repro.nn.metrics import accuracy, confusion_matrix, top_k_accuracy
from repro.nn.serialization import (
    load_network_state,
    load_network_weights,
    network_state,
    read_state_archive,
    save_network_weights,
    state_dict_digest,
    state_digest,
    transfer_weights,
)
from repro.nn.gradcheck import check_gradients

__all__ = [
    "Parameter",
    "Module",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Dense",
    "Flatten",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "softmax",
    "Sequential",
    "BatchNorm",
    "Dropout",
    "SGD",
    "Adam",
    "LRSchedule",
    "ConstantSchedule",
    "StepDecay",
    "ExponentialDecay",
    "Trainer",
    "TrainingHistory",
    "EarlyStopping",
    "EvalResult",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "save_network_weights",
    "load_network_state",
    "load_network_weights",
    "network_state",
    "read_state_archive",
    "state_dict_digest",
    "state_digest",
    "transfer_weights",
    "check_gradients",
]
