"""Layer base class.

Every layer implements an explicit ``forward``/``backward`` pair; the
forward pass caches whatever the backward pass needs.  Networks are
built by composing layers in a :class:`repro.nn.network.Sequential`.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.tensor import Parameter


class Module:
    """Base class for all layers.

    Subclasses must implement :meth:`forward` and :meth:`backward` and
    register parameters via :meth:`register_parameter` so that generic
    machinery (optimizers, serialization, quantization wrappers) can
    enumerate them.
    """

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__.lower()
        self.training = True
        self._parameters: List[Parameter] = []

    # ------------------------------------------------------------------
    # Parameter registry
    # ------------------------------------------------------------------
    def register_parameter(self, param: Parameter) -> Parameter:
        """Track ``param`` for optimizer / serialization enumeration."""
        self._parameters.append(param)
        return param

    def parameters(self) -> List[Parameter]:
        """All parameters owned by this layer, in registration order."""
        return list(self._parameters)

    def weight_parameters(self) -> List[Parameter]:
        """Parameters that hold multiplicative weights (not biases).

        Quantization in the paper applies to weights; biases are kept at
        input precision.  Layers with weights override this.
        """
        return []

    def zero_grad(self) -> None:
        for param in self._parameters:
            param.zero_grad()

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train_mode(self) -> None:
        self.training = True

    def eval_mode(self) -> None:
        self.training = False

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_out`` and return the gradient w.r.t. input.

        Must be called after :meth:`forward`; layers may rely on cached
        activations from the most recent forward pass.
        """
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def output_shape(self, input_shape: tuple) -> tuple:
        """Shape (without batch dim) this layer produces for ``input_shape``."""
        raise NotImplementedError

    def parameter_count(self) -> int:
        return sum(p.size for p in self._parameters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


def set_mode(modules: Iterable[Module], training: bool) -> None:
    """Switch a collection of modules between train and eval mode."""
    for module in modules:
        if training:
            module.train_mode()
        else:
            module.eval_mode()
