"""Fully connected (inner-product) layer and Flatten."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.initializers import get_initializer, zeros
from repro.nn.module import Module
from repro.nn.tensor import DTYPE, Parameter


class Flatten(Module):
    """Reshape NCHW feature maps to (N, C*H*W) for inner-product layers."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "flatten")
        self._cache_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            # Cached only for backward; writing it in eval mode would let
            # concurrent frozen-network forwards race on shared state.
            self._cache_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        return grad_out.reshape(self._cache_shape)

    def output_shape(self, input_shape: tuple) -> tuple:
        return (int(np.prod(input_shape)),)


class Dense(Module):
    """Inner-product layer ``y = x @ W + b`` over (N, in_features) inputs."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        init: str = "he",
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name or "dense")
        if min(in_features, out_features) < 1:
            raise ConfigurationError("dense dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias

        rng = rng or np.random.default_rng(0)
        initializer = get_initializer(init)
        self.weight = self.register_parameter(
            Parameter(
                initializer((in_features, out_features), rng),
                name=f"{self.name}.weight",
            )
        )
        if use_bias:
            self.bias = self.register_parameter(
                Parameter(zeros((out_features,)), name=f"{self.name}.bias")
            )
        else:
            self.bias = None
        self._cache_x: Optional[np.ndarray] = None

    def weight_parameters(self):
        return [self.weight]

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected (N, {self.in_features}) input, got {x.shape}"
            )
        out = x @ self.weight.data
        if self.bias is not None:
            out += self.bias.data
        if self.training:
            self._cache_x = x
        return out.astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        self.weight.accumulate_grad(self._cache_x.T @ grad_out)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_out.sum(axis=0))
        return (grad_out @ self.weight.data.T).astype(DTYPE, copy=False)

    def output_shape(self, input_shape: tuple) -> tuple:
        if int(np.prod(input_shape)) != self.in_features:
            raise ShapeError(
                f"{self.name}: input shape {input_shape} does not flatten to "
                f"{self.in_features}"
            )
        return (self.out_features,)

    def macs(self, input_shape: tuple) -> int:
        """Multiply-accumulates for one sample."""
        return self.in_features * self.out_features

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Dense({self.in_features}->{self.out_features})"
