"""Trainable parameter container.

The framework keeps the autograd surface deliberately small: layers
compute their own gradients in ``backward`` and deposit them into
:class:`Parameter` objects, which the optimizer then consumes.  This is
the same contract Caffe uses (blobs with ``data`` and ``diff``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

DTYPE = np.float32


class Parameter:
    """A named, trainable array with an accumulated gradient.

    Attributes:
        data: the current parameter values (``float32``).
        grad: gradient of the loss w.r.t. ``data``; accumulated by layer
            ``backward`` calls and cleared by :meth:`zero_grad`.
        name: dotted, human-readable identifier (e.g. ``"conv1.weight"``).
        trainable: when ``False`` the optimizer skips this parameter.
    """

    def __init__(self, data: np.ndarray, name: str = "param", trainable: bool = True):
        self.data = np.asarray(data, dtype=DTYPE)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.trainable = trainable

    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad[...] = 0.0

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the stored gradient (shape-checked)."""
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name!r} shape {self.data.shape}"
            )
        self.grad += grad.astype(DTYPE, copy=False)

    def copy_data(self) -> np.ndarray:
        """Return a defensive copy of the parameter values."""
        return self.data.copy()

    def set_data(self, values: np.ndarray) -> None:
        """Replace parameter values in place (shape-checked)."""
        values = np.asarray(values, dtype=DTYPE)
        if values.shape != self.data.shape:
            raise ShapeError(
                f"cannot assign values of shape {values.shape} to parameter "
                f"{self.name!r} of shape {self.data.shape}"
            )
        self.data[...] = values

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = "" if self.trainable else ", frozen"
        return f"Parameter({self.name!r}, shape={self.data.shape}{flag})"
