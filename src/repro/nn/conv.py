"""2-D convolution layer (im2col lowering)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.im2col import col2im, conv_output_size, im2col
from repro.nn.initializers import get_initializer, zeros
from repro.nn.module import Module
from repro.nn.tensor import DTYPE, Parameter


class Conv2D(Module):
    """Convolution over NCHW inputs.

    Weights have shape ``(out_channels, in_channels, k, k)``; the layer
    computes the affine map ``y = W * x + b`` per output pixel.  The
    nonlinearity is a separate layer, mirroring both Caffe and the
    accelerator's NFU pipeline (stage 3 applies the nonlinearity).

    Args:
        in_channels / out_channels: channel counts.
        kernel_size: square kernel side ``k``.
        stride: window step.
        padding: symmetric zero padding.
        use_bias: include the additive bias term.
        init: weight initializer name (``"he"`` default for ReLU nets).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
        init: str = "he",
        name: str = "",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name or "conv")
        if min(in_channels, out_channels, kernel_size, stride) < 1:
            raise ConfigurationError("conv dimensions must be positive")
        if padding < 0:
            raise ConfigurationError("padding must be non-negative")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = use_bias

        rng = rng or np.random.default_rng(0)
        initializer = get_initializer(init)
        w_shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = self.register_parameter(
            Parameter(initializer(w_shape, rng), name=f"{self.name}.weight")
        )
        if use_bias:
            self.bias = self.register_parameter(
                Parameter(zeros((out_channels,)), name=f"{self.name}.bias")
            )
        else:
            self.bias = None

        self._cache_cols: Optional[np.ndarray] = None
        self._cache_x_shape: Optional[tuple] = None

    def weight_parameters(self):
        return [self.weight]

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected NCHW input with C={self.in_channels}, "
                f"got shape {x.shape}"
            )
        n = x.shape[0]
        out_h = conv_output_size(x.shape[2], self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(x.shape[3], self.kernel_size, self.stride, self.padding)

        cols = im2col(x, self.kernel_size, self.stride, self.padding)
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = w_mat @ cols  # (out_c, N*out_h*out_w)
        if self.bias is not None:
            out += self.bias.data[:, None]
        out = out.reshape(self.out_channels, out_h, out_w, n).transpose(3, 0, 1, 2)

        if self.training:
            self._cache_cols = cols
            self._cache_x_shape = x.shape
        return np.ascontiguousarray(out, dtype=DTYPE)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_cols is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        n, _, out_h, out_w = grad_out.shape
        grad_mat = grad_out.transpose(1, 2, 3, 0).reshape(self.out_channels, -1)

        grad_w = (grad_mat @ self._cache_cols.T).reshape(self.weight.data.shape)
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_mat.sum(axis=1))

        w_mat = self.weight.data.reshape(self.out_channels, -1)
        grad_cols = w_mat.T @ grad_mat
        grad_x = col2im(
            grad_cols, self._cache_x_shape, self.kernel_size, self.stride, self.padding
        )
        return grad_x.astype(DTYPE, copy=False)

    # ------------------------------------------------------------------
    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ShapeError(
                f"{self.name}: input channels {c} != expected {self.in_channels}"
            )
        return (
            self.out_channels,
            conv_output_size(h, self.kernel_size, self.stride, self.padding),
            conv_output_size(w, self.kernel_size, self.stride, self.padding),
        )

    def macs(self, input_shape: tuple) -> int:
        """Multiply-accumulates for one image — the accelerator's unit of work."""
        _, out_h, out_w = self.output_shape(input_shape)
        per_pixel = self.in_channels * self.kernel_size * self.kernel_size
        return self.out_channels * out_h * out_w * per_pixel

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Conv2D({self.in_channels}->{self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )
