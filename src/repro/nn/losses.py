"""Loss functions.

Losses are separate from layers: they take logits (or predictions) plus
integer labels and return ``(loss_value, gradient_wrt_input)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError
from repro.nn.tensor import DTYPE


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax over (N, classes) logits."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return (exp / exp.sum(axis=1, keepdims=True)).astype(DTYPE, copy=False)


class Loss:
    """Base class: ``compute`` returns (scalar loss, grad w.r.t. prediction)."""

    def compute(self, prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        return self.compute(prediction, target)


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy over integer class labels.

    Combining the two yields the well-conditioned gradient
    ``softmax(logits) - onehot(labels)``.
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ShapeError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing

    def compute(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        if logits.ndim != 2:
            raise ShapeError(f"expected (N, classes) logits, got {logits.shape}")
        labels = np.asarray(labels)
        if labels.shape != (logits.shape[0],):
            raise ShapeError(
                f"labels shape {labels.shape} does not match batch {logits.shape[0]}"
            )
        n, num_classes = logits.shape
        probs = softmax(logits)
        target = np.zeros_like(probs)
        target[np.arange(n), labels] = 1.0
        if self.label_smoothing > 0.0:
            target = (
                target * (1.0 - self.label_smoothing)
                + self.label_smoothing / num_classes
            )
        eps = np.finfo(DTYPE).tiny
        loss = float(-(target * np.log(probs + eps)).sum() / n)
        grad = ((probs - target) / n).astype(DTYPE, copy=False)
        return loss, grad


class MeanSquaredError(Loss):
    """Mean squared error against dense targets of the same shape."""

    def compute(self, prediction: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        target = np.asarray(target, dtype=DTYPE)
        if target.shape != prediction.shape:
            raise ShapeError(
                f"target shape {target.shape} != prediction shape {prediction.shape}"
            )
        diff = prediction - target
        loss = float(np.mean(diff**2))
        grad = (2.0 * diff / diff.size).astype(DTYPE, copy=False)
        return loss, grad
