"""Sequential network container."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.module import Module
from repro.nn.tensor import Parameter


class Sequential(Module):
    """A feed-forward stack of layers applied in order.

    This mirrors the layer graph of Figure 1 in the paper: every layer
    feeds only the next one.  The container exposes the aggregate
    parameter list and per-layer introspection used by the quantization
    wrapper and the hardware scheduler.
    """

    def __init__(self, layers: Sequence[Module], name: str = "net"):
        super().__init__(name=name)
        if not layers:
            raise ConfigurationError("Sequential requires at least one layer")
        self.layers: List[Module] = list(layers)
        self._disambiguate_names()

    def _disambiguate_names(self) -> None:
        """Suffix duplicate layer names so parameters stay addressable."""
        seen: dict = {}
        for layer in self.layers:
            count = seen.get(layer.name, 0)
            seen[layer.name] = count + 1
            if count:
                new_name = f"{layer.name}{count + 1}"
                for param in layer.parameters():
                    param.name = param.name.replace(layer.name, new_name, 1)
                layer.name = new_name

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def predict(self, x: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Run inference in eval mode, batched; returns stacked outputs."""
        was_training = self.training
        self.eval_mode()
        try:
            outputs = [
                self.forward(x[i : i + batch_size])
                for i in range(0, x.shape[0], batch_size)
            ]
        finally:
            if was_training:
                self.train_mode()
        return np.concatenate(outputs, axis=0)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def weight_parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.weight_parameters())
        return params

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def train_mode(self) -> None:
        super().train_mode()
        for layer in self.layers:
            layer.train_mode()

    def eval_mode(self) -> None:
        super().eval_mode()
        for layer in self.layers:
            layer.eval_mode()

    # ------------------------------------------------------------------
    def output_shape(self, input_shape: tuple) -> tuple:
        shape = input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def layer_shapes(self, input_shape: tuple) -> List[tuple]:
        """Per-layer (input_shape, output_shape) trace, for the scheduler."""
        shapes = []
        shape = input_shape
        for layer in self.layers:
            out = layer.output_shape(shape)
            shapes.append((shape, out))
            shape = out
        return shapes

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    def compute_layers(self) -> Iterable[Module]:
        """Layers that perform MACs (conv/dense) — the accelerator workload."""
        return [layer for layer in self.layers if hasattr(layer, "macs")]

    def summary(self, input_shape: Optional[tuple] = None) -> str:
        """Human-readable architecture table."""
        lines = [f"Sequential {self.name!r}:"]
        shape = input_shape
        for layer in self.layers:
            desc = f"  {layer.name:<16} {type(layer).__name__:<12}"
            if shape is not None:
                out = layer.output_shape(shape)
                desc += f" {str(shape):<16} -> {str(out):<16}"
                shape = out
            n_params = layer.parameter_count()
            if n_params:
                desc += f" params={n_params}"
            lines.append(desc)
        lines.append(f"  total parameters: {self.parameter_count()}")
        return "\n".join(lines)
