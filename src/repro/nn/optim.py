"""Stochastic gradient descent and learning-rate schedules.

The paper trains with standard SGD ("network parameters are then updated
using stochastic gradient descent"); momentum and weight decay follow
the Caffe solver defaults used by the benchmark networks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Parameter


class LRSchedule:
    """Maps an epoch index to a learning rate."""

    def rate(self, epoch: int) -> float:
        raise NotImplementedError

    def __call__(self, epoch: int) -> float:
        return self.rate(epoch)


class ConstantSchedule(LRSchedule):
    def __init__(self, lr: float):
        if lr <= 0:
            raise ConfigurationError("learning rate must be positive")
        self.lr = lr

    def rate(self, epoch: int) -> float:
        return self.lr


class StepDecay(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step`` epochs (Caffe 'step')."""

    def __init__(self, lr: float, step: int, gamma: float = 0.1):
        if lr <= 0 or step <= 0 or not 0 < gamma <= 1:
            raise ConfigurationError("invalid StepDecay parameters")
        self.lr = lr
        self.step = step
        self.gamma = gamma

    def rate(self, epoch: int) -> float:
        return self.lr * self.gamma ** (epoch // self.step)


class ExponentialDecay(LRSchedule):
    """lr * gamma**epoch."""

    def __init__(self, lr: float, gamma: float = 0.95):
        if lr <= 0 or not 0 < gamma <= 1:
            raise ConfigurationError("invalid ExponentialDecay parameters")
        self.lr = lr
        self.gamma = gamma

    def rate(self, epoch: int) -> float:
        return self.lr * self.gamma**epoch


class SGD:
    """SGD with momentum, weight decay, and optional gradient clipping.

    Updates follow the Caffe/heavy-ball convention::

        v <- momentum * v - lr * (grad + weight_decay * w)
        w <- w + v

    Args:
        parameters: the parameters to update (usually ``net.parameters()``).
        lr: base learning rate, or an :class:`LRSchedule`.
        momentum: heavy-ball coefficient in [0, 1).
        weight_decay: L2 penalty coefficient.
        grad_clip: when set, clip each gradient to this max L2 norm.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr=0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        grad_clip: float = 0.0,
    ):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer needs at least one parameter")
        if isinstance(lr, LRSchedule):
            self.schedule = lr
        else:
            self.schedule = ConstantSchedule(float(lr))
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if weight_decay < 0 or grad_clip < 0:
            raise ConfigurationError("weight_decay and grad_clip must be >= 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.grad_clip = grad_clip
        self.epoch = 0
        self._velocity: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.parameters
        }

    @property
    def current_lr(self) -> float:
        return self.schedule.rate(self.epoch)

    def set_epoch(self, epoch: int) -> None:
        """Advance the schedule; called once per epoch by the trainer."""
        self.epoch = epoch

    def step(self) -> None:
        """Apply one update from the currently accumulated gradients."""
        lr = self.current_lr
        for param in self.parameters:
            if not param.trainable:
                continue
            grad = param.grad
            if self.grad_clip > 0.0:
                norm = float(np.linalg.norm(grad))
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / norm)
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            velocity = self._velocity[id(param)]
            velocity *= self.momentum
            velocity -= lr * grad
            param.data += velocity

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()
