"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that
every experiment in the study is reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import DTYPE


def _fans(shape: tuple) -> tuple:
    """(fan_in, fan_out) for dense ``(in, out)`` or conv ``(out_c, in_c, k, k)``."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ConfigurationError(f"cannot infer fans for shape {shape}")


def glorot_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(DTYPE)


def he_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal: N(0, sqrt(2 / fan_in)); suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(DTYPE)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=DTYPE)


INITIALIZERS = {
    "glorot": glorot_uniform,
    "he": he_normal,
}


def get_initializer(name: str):
    """Look up an initializer by name (``"glorot"`` or ``"he"``)."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown initializer {name!r}; choose from {sorted(INITIALIZERS)}"
        ) from None
