"""Adam optimizer.

The paper trains with plain SGD (the Caffe recipes); Adam is provided
for the extension studies, where binary-weight training benefits from
per-parameter step sizes (as in the BinaryNet reference code).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.optim import ConstantSchedule, LRSchedule
from repro.nn.tensor import Parameter


class Adam:
    """Adam (Kingma & Ba) with optional decoupled weight decay.

    Args:
        parameters: parameters to update.
        lr: learning rate or :class:`LRSchedule`.
        beta1 / beta2: first/second moment decay rates.
        epsilon: denominator floor.
        weight_decay: decoupled (AdamW-style) decay coefficient.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr=1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer needs at least one parameter")
        self.schedule = lr if isinstance(lr, LRSchedule) else ConstantSchedule(float(lr))
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        if epsilon <= 0 or weight_decay < 0:
            raise ConfigurationError("invalid epsilon or weight_decay")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self.epoch = 0
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.parameters
        }
        self._v: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.parameters
        }

    @property
    def current_lr(self) -> float:
        return self.schedule.rate(self.epoch)

    def set_epoch(self, epoch: int) -> None:
        self.epoch = epoch

    def step(self) -> None:
        """Apply one Adam update from the accumulated gradients."""
        self._step_count += 1
        lr = self.current_lr
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param in self.parameters:
            if not param.trainable:
                continue
            m = self._m[id(param)]
            v = self._v[id(param)]
            m *= self.beta1
            m += (1.0 - self.beta1) * param.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * param.grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = lr * m_hat / (np.sqrt(v_hat) + self.epsilon)
            if self.weight_decay > 0.0:
                update += lr * self.weight_decay * param.data
            param.data -= update

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()
