"""Elementwise nonlinearities.

These correspond to the third NFU pipeline stage of the accelerator
(Section IV-A of the paper); in hardware they are LUT/piecewise units,
here they are exact elementwise functions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.module import Module
from repro.nn.tensor import DTYPE


class ReLU(Module):
    """Rectified linear unit, max(0, x)."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "relu")
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0
        if self.training:
            self._mask = mask
        return np.where(mask, x, 0).astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        return (grad_out * self._mask).astype(DTYPE, copy=False)

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01, name: str = ""):
        super().__init__(name=name or "leaky_relu")
        if negative_slope < 0:
            raise ConfigurationError("negative_slope must be >= 0")
        self.negative_slope = negative_slope
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0
        if self.training:
            self._mask = mask
        return np.where(mask, x, self.negative_slope * x).astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        scale = np.where(self._mask, 1.0, self.negative_slope)
        return (grad_out * scale).astype(DTYPE, copy=False)

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape


class Sigmoid(Module):
    """Logistic sigmoid, 1 / (1 + exp(-x))."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "sigmoid")
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        out = out.astype(DTYPE, copy=False)
        if self.training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        return (grad_out * self._out * (1.0 - self._out)).astype(DTYPE, copy=False)

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self, name: str = ""):
        super().__init__(name=name or "tanh")
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(x).astype(DTYPE, copy=False)
        if self.training:
            self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        return (grad_out * (1.0 - self._out**2)).astype(DTYPE, copy=False)

    def output_shape(self, input_shape: tuple) -> tuple:
        return input_shape
