"""im2col / col2im lowering for convolution and pooling.

Convolution is implemented as a matrix multiply over patch columns, the
same lowering Caffe uses.  The implementation is vectorized with
``as_strided``-free fancy indexing (safe, no aliasing surprises).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ShapeError


def conv_output_size(size: int, kernel: int, stride: int, padding: int, ceil_mode: bool = False) -> int:
    """Spatial output size of a conv/pool window sweep.

    ``ceil_mode=True`` matches Caffe pooling semantics (partial windows
    at the right/bottom edge produce an extra output); convolution uses
    floor mode.
    """
    span = size + 2 * padding - kernel
    if span < 0:
        raise ShapeError(
            f"kernel {kernel} larger than padded input {size + 2 * padding}"
        )
    if ceil_mode:
        out = -(-span // stride) + 1
        # Caffe clips windows that start entirely in the padding.
        if (out - 1) * stride >= size + padding:
            out -= 1
        return out
    return span // stride + 1


def _im2col_indices(
    channels: int, height: int, width: int, kernel: int, stride: int, padding: int,
    out_h: int, out_w: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Index arrays mapping padded-image pixels to column entries."""
    i0 = np.repeat(np.arange(kernel), kernel)
    i0 = np.tile(i0, channels)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kernel), kernel * channels)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(channels), kernel * kernel).reshape(-1, 1)
    return k, i, j


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int,
) -> np.ndarray:
    """Lower NCHW batch ``x`` into columns.

    Returns an array of shape ``(C*K*K, N*out_h*out_w)`` whose columns
    are the flattened receptive fields in row-major output order.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    x_pad = np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    k, i, j = _im2col_indices(c, h, w, kernel, stride, padding, out_h, out_w)
    cols = x_pad[:, k, i, j]  # (N, C*K*K, out_h*out_w)
    return cols.transpose(1, 2, 0).reshape(c * kernel * kernel, -1)


def col2im(
    cols: np.ndarray, x_shape: Tuple[int, int, int, int], kernel: int, stride: int, padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to NCHW.

    Overlapping receptive fields accumulate, which is exactly the
    gradient of the im2col gather.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    x_pad = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    k, i, j = _im2col_indices(c, h, w, kernel, stride, padding, out_h, out_w)
    cols_reshaped = cols.reshape(c * kernel * kernel, out_h * out_w, n).transpose(2, 0, 1)
    np.add.at(x_pad, (slice(None), k, i, j), cols_reshaped)
    if padding == 0:
        return x_pad
    return x_pad[:, :, padding:-padding, padding:-padding]
