"""Numerical gradient checking.

Central-difference verification of analytic gradients, used by the test
suite to validate every layer's ``backward`` implementation.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.nn.losses import Loss
from repro.nn.network import Sequential


def numerical_gradient(
    f: Callable[[], float], array: np.ndarray, epsilon: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        f_plus = f()
        flat[i] = original - epsilon
        f_minus = f()
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    network: Sequential,
    loss: Loss,
    x: np.ndarray,
    y: np.ndarray,
    tolerance: float = 2e-2,
) -> Dict[str, float]:
    """Compare analytic and numerical gradients for every parameter.

    Returns the relative error per parameter name; raises ``AssertionError``
    when any exceeds ``tolerance``.  Use small float32-friendly inputs.
    """
    network.train_mode()
    network.zero_grad()
    logits = network.forward(x)
    _, grad = loss.compute(logits, y)
    network.backward(grad)
    analytic = {p.name: p.grad.copy() for p in network.parameters()}

    def scalar_loss() -> float:
        value, _ = loss.compute(network.forward(x), y)
        return value

    errors: Dict[str, float] = {}
    for param in network.parameters():
        numeric = numerical_gradient(scalar_loss, param.data)
        a = analytic[param.name].astype(np.float64)
        denom = max(np.linalg.norm(a) + np.linalg.norm(numeric), 1e-8)
        rel_error = float(np.linalg.norm(a - numeric) / denom)
        errors[param.name] = rel_error
        assert rel_error < tolerance, (
            f"gradient check failed for {param.name}: rel error {rel_error:.3e}"
        )
    return errors
