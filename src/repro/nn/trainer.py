"""Mini-batch training loop with validation tracking.

The loop exposes two hook points, ``before_step`` and ``after_step``,
which the quantization-aware trainer (:mod:`repro.core.qat`) uses to
swap quantized weights in for the forward/backward pass and restore the
full-precision shadow copies before the optimizer update — the
dual-weight-set technique of Courbariaux et al. adopted by the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError, TrainingError
from repro.nn.evaluation import EvalResult
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.train_loss)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")

    def record(self, train_loss: float, train_acc: float,
               val_loss: float, val_acc: float) -> None:
        self.train_loss.append(train_loss)
        self.train_accuracy.append(train_acc)
        self.val_loss.append(val_loss)
        self.val_accuracy.append(val_acc)


class EarlyStopping:
    """Stop when validation accuracy has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best = -np.inf
        self.stale_epochs = 0

    def update(self, val_accuracy: float) -> bool:
        """Record an epoch result; returns True when training should stop."""
        if val_accuracy > self.best + self.min_delta:
            self.best = val_accuracy
            self.stale_epochs = 0
        else:
            self.stale_epochs += 1
        return self.stale_epochs >= self.patience


class Trainer:
    """SGD training driver for a :class:`Sequential` network.

    Args:
        network: the model to train.
        optimizer: an :class:`SGD` instance over the network parameters.
        loss: loss object; defaults to softmax cross-entropy.
        batch_size: mini-batch size.
        rng: generator for epoch shuffling (reproducibility).
        before_step / after_step: optional callables invoked around each
            optimizer update (used by quantization-aware training).
        restore_best: when validating, snapshot the parameters at every
            new best validation accuracy and restore that snapshot when
            ``fit`` returns — epoch-level model selection, which
            stabilizes noisy low-precision fine-tuning.
    """

    def __init__(
        self,
        network: Sequential,
        optimizer: SGD,
        loss: Optional[Loss] = None,
        batch_size: int = 32,
        rng: Optional[np.random.Generator] = None,
        before_step: Optional[Callable[[], None]] = None,
        after_step: Optional[Callable[[], None]] = None,
        restore_best: bool = False,
    ):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.network = network
        self.optimizer = optimizer
        self.loss = loss or SoftmaxCrossEntropy()
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng(0)
        self.before_step = before_step
        self.after_step = after_step
        self.restore_best = restore_best
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def train_step(self, batch_x: np.ndarray, batch_y: np.ndarray) -> float:
        """One forward/backward/update cycle; returns the batch loss."""
        if self.before_step is not None:
            self.before_step()
        self.network.zero_grad()
        logits = self.network.forward(batch_x)
        loss_value, grad = self.loss.compute(logits, batch_y)
        if not np.isfinite(loss_value):
            raise TrainingError(
                f"non-finite loss ({loss_value}); training diverged"
            )
        self.network.backward(grad)
        if self.after_step is not None:
            self.after_step()
        self.optimizer.step()
        return loss_value

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> EvalResult:
        """Loss and accuracy over a dataset in eval mode.

        Returns an :class:`EvalResult` — indexable like the dict this
        method used to return (``result["accuracy"]``) and usable as
        the accuracy float directly.
        """
        start = time.perf_counter()
        logits = self.network.predict(x, batch_size=max(self.batch_size, 64))
        loss_value, _ = self.loss.compute(logits, y)
        return EvalResult(
            accuracy(logits, y),
            loss=loss_value,
            n_samples=int(len(y)),
            elapsed_s=time.perf_counter() - start,
        )

    def fit(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        val_x: Optional[np.ndarray] = None,
        val_y: Optional[np.ndarray] = None,
        epochs: int = 10,
        early_stopping: Optional[EarlyStopping] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs, shuffling every epoch.

        Each epoch runs inside a ``trainer.epoch`` span (under one
        ``trainer.fit`` span) on the default tracer and feeds the shared
        metrics registry: ``trainer.epochs`` (counter),
        ``trainer.epoch_s`` (histogram), ``trainer.train_loss`` /
        ``trainer.train_accuracy`` / ``trainer.val_accuracy`` /
        ``trainer.throughput_sps`` (gauges).
        """
        if train_x.shape[0] != len(train_y):
            raise ConfigurationError("train_x and train_y lengths differ")
        n = train_x.shape[0]
        best_accuracy = -np.inf
        best_state: Optional[List[np.ndarray]] = None
        tracer = get_tracer()
        metrics = get_metrics()
        with tracer.span("trainer.fit", network=self.network.name, epochs=epochs):
            for epoch in range(epochs):
                epoch_start = time.perf_counter()
                with tracer.span("trainer.epoch", epoch=epoch):
                    self.optimizer.set_epoch(epoch)
                    self.network.train_mode()
                    order = self.rng.permutation(n)
                    epoch_loss = 0.0
                    batches = 0
                    for start in range(0, n, self.batch_size):
                        idx = order[start : start + self.batch_size]
                        epoch_loss += self.train_step(train_x[idx], train_y[idx])
                        batches += 1
                    train_metrics = self.evaluate(train_x, train_y)
                    if val_x is not None and val_y is not None:
                        val_metrics = self.evaluate(val_x, val_y)
                    else:
                        val_metrics = EvalResult(float("nan"))
                self.history.record(
                    epoch_loss / max(batches, 1),
                    train_metrics["accuracy"],
                    val_metrics["loss"],
                    val_metrics["accuracy"],
                )
                epoch_s = time.perf_counter() - epoch_start
                metrics.counter("trainer.epochs").inc()
                metrics.histogram("trainer.epoch_s").observe(epoch_s)
                metrics.gauge("trainer.train_loss").set(self.history.train_loss[-1])
                metrics.gauge("trainer.train_accuracy").set(train_metrics["accuracy"])
                if epoch_s > 0:
                    metrics.gauge("trainer.throughput_sps").set(n / epoch_s)
                if not np.isnan(val_metrics["accuracy"]):
                    metrics.gauge("trainer.val_accuracy").set(val_metrics["accuracy"])
                if verbose:  # pragma: no cover - console output
                    print(
                        f"epoch {epoch + 1}/{epochs} "
                        f"loss={self.history.train_loss[-1]:.4f} "
                        f"train_acc={train_metrics['accuracy']:.4f} "
                        f"val_acc={val_metrics['accuracy']:.4f}"
                    )
                if (
                    self.restore_best
                    and not np.isnan(val_metrics["accuracy"])
                    and val_metrics["accuracy"] > best_accuracy
                ):
                    best_accuracy = val_metrics["accuracy"]
                    best_state = [p.data.copy() for p in self.network.parameters()]
                if early_stopping is not None and not np.isnan(val_metrics["accuracy"]):
                    if early_stopping.update(val_metrics["accuracy"]):
                        break
        if best_state is not None:
            for param, values in zip(self.network.parameters(), best_state):
                param.data[...] = values
        return self.history
