"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1] from logits or probabilities."""
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"accuracy expects (N, classes) logits and (N,) labels, got "
            f"{logits.shape} and {labels.shape}"
        )
    predictions = logits.argmax(axis=1)
    return float(np.mean(predictions == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is in the top-k predictions."""
    labels = np.asarray(labels)
    if k < 1 or k > logits.shape[1]:
        raise ShapeError(f"k={k} out of range for {logits.shape[1]} classes")
    top_k = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(np.mean(hits))


def confusion_matrix(logits: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """(num_classes, num_classes) counts; rows = true class, cols = predicted."""
    labels = np.asarray(labels)
    predictions = logits.argmax(axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix
