"""Max and average pooling layers.

Pooling uses *ceil mode* by default, matching Caffe: a partial window at
the right/bottom edge produces an extra output.  This is required to
reproduce the paper's network shapes (e.g. ALEX pools 3x3/stride-2 over
a 32x32 map and yields 16x16, not 15x15).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, ShapeError
from repro.nn.im2col import conv_output_size
from repro.nn.module import Module
from repro.nn.tensor import DTYPE


class _Pool2D(Module):
    """Common machinery for max/avg pooling."""

    def __init__(
        self,
        kernel_size: int,
        stride: Optional[int] = None,
        padding: int = 0,
        ceil_mode: bool = True,
        name: str = "",
    ):
        super().__init__(name=name or "pool")
        if kernel_size < 1:
            raise ConfigurationError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        if self.stride < 1:
            raise ConfigurationError("stride must be positive")
        self.padding = padding
        self.ceil_mode = ceil_mode
        self._cache: Optional[dict] = None

    # ------------------------------------------------------------------
    def _out_hw(self, h: int, w: int) -> tuple:
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding, self.ceil_mode)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding, self.ceil_mode)
        return out_h, out_w

    def _padded(self, x: np.ndarray, fill: float) -> np.ndarray:
        """Pad so every (possibly partial) window is fully materialized."""
        n, c, h, w = x.shape
        out_h, out_w = self._out_hw(h, w)
        need_h = (out_h - 1) * self.stride + self.kernel_size
        need_w = (out_w - 1) * self.stride + self.kernel_size
        pad_h = (self.padding, max(0, need_h - h - self.padding))
        pad_w = (self.padding, max(0, need_w - w - self.padding))
        return np.pad(
            x, ((0, 0), (0, 0), pad_h, pad_w), mode="constant", constant_values=fill
        )

    def _windows(self, x_pad: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
        """Stack the k*k shifted views: shape (k*k, N, C, out_h, out_w)."""
        k, s = self.kernel_size, self.stride
        views = [
            x_pad[:, :, ki : ki + s * out_h : s, kj : kj + s * out_w : s]
            for ki in range(k)
            for kj in range(k)
        ]
        return np.stack(views, axis=0)

    def output_shape(self, input_shape: tuple) -> tuple:
        c, h, w = input_shape
        out_h, out_w = self._out_hw(h, w)
        return (c, out_h, out_w)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(k={self.kernel_size}, s={self.stride})"


class MaxPool2D(_Pool2D):
    """Max pooling; backward routes gradient to the argmax pixel."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got {x.shape}")
        out_h, out_w = self._out_hw(x.shape[2], x.shape[3])
        x_pad = self._padded(x, fill=-np.inf)
        windows = self._windows(x_pad, out_h, out_w)
        argmax = windows.argmax(axis=0)
        out = np.take_along_axis(windows, argmax[None], axis=0)[0]
        if self.training:
            self._cache = {
                "argmax": argmax,
                "x_shape": x.shape,
                "pad_shape": x_pad.shape,
            }
        return out.astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        argmax = self._cache["argmax"]
        n, c, h, w = self._cache["x_shape"]
        grad_pad = np.zeros(self._cache["pad_shape"], dtype=DTYPE)
        out_h, out_w = grad_out.shape[2], grad_out.shape[3]
        k = self.kernel_size
        ki = argmax // k
        kj = argmax % k
        oh = np.arange(out_h)[None, None, :, None]
        ow = np.arange(out_w)[None, None, None, :]
        rows = oh * self.stride + ki
        cols = ow * self.stride + kj
        nn_idx = np.arange(n)[:, None, None, None]
        cc_idx = np.arange(c)[None, :, None, None]
        np.add.at(grad_pad, (nn_idx, cc_idx, rows, cols), grad_out)
        p = self.padding
        return grad_pad[:, :, p : p + h, p : p + w]


class AvgPool2D(_Pool2D):
    """Average pooling.

    Divides by the full window size including padded/out-of-range pixels
    (Caffe ``AVE`` semantics), so the operation is linear and backward is
    a uniform scatter.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NCHW input, got {x.shape}")
        out_h, out_w = self._out_hw(x.shape[2], x.shape[3])
        x_pad = self._padded(x, fill=0.0)
        windows = self._windows(x_pad, out_h, out_w)
        out = windows.mean(axis=0)
        if self.training:
            self._cache = {"x_shape": x.shape, "pad_shape": x_pad.shape}
        return out.astype(DTYPE, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError(f"{self.name}: backward called before forward")
        n, c, h, w = self._cache["x_shape"]
        grad_pad = np.zeros(self._cache["pad_shape"], dtype=DTYPE)
        k, s = self.kernel_size, self.stride
        out_h, out_w = grad_out.shape[2], grad_out.shape[3]
        share = grad_out / (k * k)
        for ki in range(k):
            for kj in range(k):
                grad_pad[:, :, ki : ki + s * out_h : s, kj : kj + s * out_w : s] += share
        p = self.padding
        return grad_pad[:, :, p : p + h, p : p + w]
