"""Per-layer forward/backward timing and FLOP / byte-traffic hooks.

:class:`LayerProfiler` instruments the layers of a
:class:`repro.nn.Sequential` (or any object with a ``layers`` list of
``Module``-like objects) by wrapping each layer's bound ``forward`` /
``backward`` on the *instance*, so the network's class and every other
network stay untouched and detaching restores the original methods
exactly.  Everything here duck-types against the ``Module`` interface
(``forward``/``backward``/``macs``/``output_shape``/``parameters``),
which keeps this module free of imports from ``repro.nn`` and usable
on quantized pipelines and plain networks alike.

Cost accounting follows the paper's accelerator view of a layer:

* FLOPs — layers that report ``macs(input_shape)`` (conv, dense) cost
  two FLOPs per MAC; other layers are estimated at one FLOP per output
  element (activation functions, pooling comparisons, fake-quant
  rounding), and pure data movement (flatten) costs zero.
* bytes moved — input + output feature-map traffic at the activation
  bit-width plus one read of the parameters at the weight bit-width,
  mirroring the accelerator's buffer-transfer accounting.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "LayerStats",
    "LayerProfiler",
    "ProgressNarrator",
    "layer_flops",
    "layer_bytes",
]


class ProgressNarrator:
    """One-line-per-event progress narration for long-running jobs.

    The parallel sweep executor uses this to keep the console alive
    while points train in worker processes: every finished point emits
    a single line (``[sweep] fixed8 done in 3.2s (4/7, 2 cached)``)
    and a final summary on :meth:`close`.  Progress also lands in the
    shared metrics registry as a ``<label>.progress`` gauge in [0, 1],
    so dashboards see it even with the stream silenced.

    Args:
        total: number of units of work expected.
        label: line prefix and metrics namespace.
        enabled: when False every method is a cheap no-op (the
            library-default, so programmatic callers stay silent).
        stream: destination (default ``sys.stderr``).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        enabled: bool = True,
        stream=None,
        metrics: Optional[object] = None,
    ):
        self.total = max(int(total), 0)
        self.label = label
        self.enabled = enabled
        self.stream = stream if stream is not None else sys.stderr
        self.metrics = metrics
        self.done = 0
        self.cached = 0
        self._started = time.perf_counter()

    def point(
        self, name: str, cached: bool = False, seconds: Optional[float] = None
    ) -> None:
        """Record one finished unit (``cached`` marks a cache hit)."""
        self.done += 1
        if cached:
            self.cached += 1
        if self.metrics is not None and self.total:
            self.metrics.gauge(f"{self.label}.progress").set(
                self.done / self.total
            )
        if not self.enabled:
            return
        how = "cache hit" if cached else (
            f"done in {seconds:.1f}s" if seconds is not None else "done"
        )
        print(
            f"[{self.label}] {name} {how} "
            f"({self.done}/{self.total}, {self.cached} cached)",
            file=self.stream,
        )

    def close(self, cache_hits: Optional[int] = None) -> None:
        """Emit the final summary line."""
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self._started
        hits = self.cached if cache_hits is None else cache_hits
        print(
            f"[{self.label}] {self.done}/{self.total} points in "
            f"{elapsed:.1f}s ({hits} served from cache)",
            file=self.stream,
        )


def layer_flops(layer: object, input_shape: tuple, batch: int = 1) -> int:
    """FLOPs ``layer`` spends on a batch with per-sample ``input_shape``.

    Layers exposing ``macs(input_shape)`` (conv/dense) are exact at
    2 FLOPs per multiply-accumulate; everything else is estimated at
    one FLOP per output element; pure reshapes cost zero.
    """
    macs = getattr(layer, "macs", None)
    if callable(macs):
        return 2 * int(macs(input_shape)) * batch
    if type(layer).__name__ == "Flatten":
        return 0
    out_shape = layer.output_shape(input_shape)
    return int(np.prod(out_shape)) * batch


def layer_bytes(
    layer: object,
    input_shape: tuple,
    batch: int = 1,
    weight_bits: int = 32,
    activation_bits: int = 32,
) -> int:
    """Bytes moved through the accelerator buffers for one batch.

    Feature maps stream in and out at ``activation_bits`` per value;
    parameters are read once per batch at ``weight_bits`` per value —
    the Section V-B footprint accounting applied to traffic.
    """
    in_elems = int(np.prod(input_shape)) * batch
    out_elems = int(np.prod(layer.output_shape(input_shape))) * batch
    param_elems = sum(p.size for p in layer.parameters())
    activation_bytes = (in_elems + out_elems) * activation_bits / 8.0
    weight_bytes = param_elems * weight_bits / 8.0
    return int(activation_bytes + weight_bytes)


@dataclass
class LayerStats:
    """Accumulated profile for one layer."""

    name: str
    layer_type: str
    calls: int = 0
    forward_s: float = 0.0
    backward_calls: int = 0
    backward_s: float = 0.0
    flops: int = 0
    bytes_moved: int = 0
    samples: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.forward_s + self.backward_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "layer_type": self.layer_type,
            "calls": self.calls,
            "forward_s": self.forward_s,
            "backward_calls": self.backward_calls,
            "backward_s": self.backward_s,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "samples": self.samples,
            **self.extra,
        }


class LayerProfiler:
    """Attach timing + traffic instrumentation to a layered network.

    Use as a context manager around the forward/backward passes to
    profile::

        with LayerProfiler(net, weight_bits=8, activation_bits=8) as prof:
            net.predict(images)
        print(prof.table())

    Args:
        network: object with a ``layers`` sequence of Module-like
            layers (``Sequential`` or a quantized pipeline).
        weight_bits / activation_bits: bit-widths used for the
            byte-traffic model (pass the profiled precision's widths).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, per-layer forward times feed histograms named
            ``profile.forward_ms.<layer>``.
    """

    def __init__(
        self,
        network: object,
        weight_bits: int = 32,
        activation_bits: int = 32,
        metrics: Optional[object] = None,
    ):
        layers = getattr(network, "layers", None)
        if not layers:
            raise ConfigurationError(
                "LayerProfiler needs a network with a non-empty 'layers' list"
            )
        self.network = network
        self.weight_bits = weight_bits
        self.activation_bits = activation_bits
        self.metrics = metrics
        self._stats: Dict[int, LayerStats] = {}
        self._originals: Dict[int, Dict[str, object]] = {}
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self) -> "LayerProfiler":
        """Wrap every layer's forward/backward with timing shims."""
        if self._attached:
            raise ConfigurationError("profiler already attached")
        for layer in self.network.layers:
            key = id(layer)
            self._stats[key] = LayerStats(
                name=layer.name, layer_type=type(layer).__name__
            )
            self._originals[key] = {
                "forward": layer.__dict__.get("forward"),
                "backward": layer.__dict__.get("backward"),
            }
            layer.forward = self._timed_forward(layer, layer.forward)
            layer.backward = self._timed_backward(layer, layer.backward)
        self._attached = True
        return self

    def detach(self) -> None:
        """Restore the original bound methods exactly."""
        if not self._attached:
            return
        for layer in self.network.layers:
            originals = self._originals.get(id(layer))
            if originals is None:
                continue
            # Deleting the instance attribute re-exposes the class method;
            # an original that was itself instance-level (e.g. a stacked
            # profiler) is put back verbatim.
            for method in ("forward", "backward"):
                try:
                    delattr(layer, method)
                except AttributeError:
                    pass
                if originals[method] is not None:
                    setattr(layer, method, originals[method])
        self._attached = False

    def __enter__(self) -> "LayerProfiler":
        return self.attach()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    # ------------------------------------------------------------------
    def _timed_forward(self, layer: object, original):
        stats = self._stats[id(layer)]

        def forward(x: np.ndarray) -> np.ndarray:
            start = time.perf_counter()
            out = original(x)
            elapsed = time.perf_counter() - start
            batch = int(x.shape[0]) if getattr(x, "ndim", 0) else 1
            input_shape = tuple(x.shape[1:])
            stats.calls += 1
            stats.samples += batch
            stats.forward_s += elapsed
            try:
                stats.flops += layer_flops(layer, input_shape, batch)
                stats.bytes_moved += layer_bytes(
                    layer, input_shape, batch,
                    weight_bits=self.weight_bits,
                    activation_bits=self.activation_bits,
                )
            except Exception:
                pass  # shape-introspection failures must never break forward
            if self.metrics is not None:
                self.metrics.histogram(
                    f"profile.forward_ms.{stats.name}"
                ).observe(elapsed * 1e3)
            return out

        return forward

    def _timed_backward(self, layer: object, original):
        stats = self._stats[id(layer)]

        def backward(grad_out: np.ndarray) -> np.ndarray:
            start = time.perf_counter()
            grad_in = original(grad_out)
            stats.backward_s += time.perf_counter() - start
            stats.backward_calls += 1
            return grad_in

        return backward

    # ------------------------------------------------------------------
    def stats(self) -> List[LayerStats]:
        """Per-layer stats in network order."""
        return [self._stats[id(layer)] for layer in self.network.layers]

    def annotate(self, name: str, values: Dict[str, float]) -> None:
        """Attach an extra per-layer column (e.g. quantization RMS)."""
        for stats in self._stats.values():
            if stats.name in values:
                stats.extra[name] = values[stats.name]

    def total_flops(self) -> int:
        return sum(s.flops for s in self._stats.values())

    def total_bytes(self) -> int:
        return sum(s.bytes_moved for s in self._stats.values())

    def table(self, extra_columns: Optional[List[str]] = None) -> str:
        """Aligned per-layer text table (the ``repro profile`` output)."""
        columns = ["layer", "type", "calls", "fwd ms", "bwd ms",
                   "MFLOPs", "KB moved"]
        extra_columns = extra_columns or sorted(
            {key for s in self._stats.values() for key in s.extra}
        )
        columns += extra_columns
        rows = []
        for stats in self.stats():
            row = [
                stats.name,
                stats.layer_type,
                str(stats.calls),
                f"{stats.forward_s * 1e3:.2f}",
                f"{stats.backward_s * 1e3:.2f}" if stats.backward_calls else "-",
                f"{stats.flops / 1e6:.3f}",
                f"{stats.bytes_moved / 1024:.1f}",
            ]
            for key in extra_columns:
                value = stats.extra.get(key)
                row.append("-" if value is None else f"{value:.5f}")
            rows.append(row)
        totals = [
            "TOTAL", "", "",
            f"{sum(s.forward_s for s in self._stats.values()) * 1e3:.2f}",
            f"{sum(s.backward_s for s in self._stats.values()) * 1e3:.2f}",
            f"{self.total_flops() / 1e6:.3f}",
            f"{self.total_bytes() / 1024:.1f}",
        ] + ["" for _ in extra_columns]
        rows.append(totals)
        widths = [
            max([len(columns[i])] + [len(row[i]) for row in rows])
            for i in range(len(columns))
        ]
        lines = [
            "  ".join(columns[i].ljust(widths[i]) for i in range(len(columns))),
            "  ".join("-" * w for w in widths),
        ]
        lines += [
            "  ".join(row[i].ljust(widths[i]) for i in range(len(columns)))
            for row in rows
        ]
        return "\n".join(lines)
