"""Observability: tracing, metrics and per-layer profiling.

The paper's argument is a *measurement* argument — where time, energy
and accuracy go per precision point — and this subpackage makes the
reproduction observable at runtime the same way:

``Tracer`` / ``SpanRecord``
    Nested span context managers over monotonic wall-time.  Thread-safe
    and a zero-cost no-op when disabled; the process default (from
    :func:`get_tracer`) starts disabled so the training hot path pays a
    single boolean check.

``MetricsRegistry`` / ``Counter`` / ``Gauge`` / ``Histogram``
    Named instruments with windowed p50/p95/p99 histograms and one
    uniform ``snapshot() -> dict``.  The process default registry
    (:func:`get_metrics`) is shared by ``nn.Trainer``,
    ``core.PrecisionSweep``, ``experiments.SweepRunner`` and
    ``repro.serve``, so one snapshot shows the whole stack.

``LayerProfiler`` / ``layer_flops`` / ``layer_bytes``
    Per-layer forward/backward timing plus FLOP and byte-traffic
    accounting, attached to ``nn.Module`` instances without touching
    their classes.  Powers ``python -m repro profile``.

``JsonlSink`` / ``ConsoleTableSink``
    Pluggable span sinks: structured JSONL event files and aligned
    console tables.

Typical use::

    from repro import obs

    obs.set_tracer(obs.Tracer(sinks=[obs.JsonlSink("trace.jsonl")]))
    trainer.fit(...)                      # emits trainer.* spans/metrics
    print(obs.get_metrics().snapshot())   # one dict for the whole run
"""

from repro.obs.tracer import SpanRecord, Tracer, get_tracer, set_tracer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.sinks import ConsoleTableSink, JsonlSink, Sink
from repro.obs.hooks import (
    LayerProfiler,
    LayerStats,
    ProgressNarrator,
    layer_bytes,
    layer_flops,
)

__all__ = [
    "Tracer",
    "SpanRecord",
    "get_tracer",
    "set_tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_metrics",
    "set_metrics",
    "Sink",
    "JsonlSink",
    "ConsoleTableSink",
    "LayerProfiler",
    "LayerStats",
    "ProgressNarrator",
    "layer_flops",
    "layer_bytes",
]
