"""Nested span tracing with monotonic wall-clock timing.

A :class:`Tracer` hands out span context managers::

    tracer = Tracer()
    with tracer.span("sweep.precision", spec="fixed8"):
        with tracer.span("trainer.fit"):
            ...

Every finished span becomes an immutable :class:`SpanRecord` carrying
its name, tags, start time, duration, nesting depth and parent span
name.  Nesting is tracked per thread (a thread-local stack), so worker
threads can trace concurrently without seeing each other's stacks,
while the finished-record list itself is guarded by a lock.

Disabled tracers are free: :meth:`Tracer.span` returns one shared
no-op context-manager singleton, so the hot path costs a single
attribute check and no allocation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    start_s: float          # time.monotonic() at entry
    duration_s: float
    depth: int              # 0 for top-level spans
    parent: Optional[str]   # enclosing span name, if any
    thread: str
    tags: Dict[str, object] = field(default_factory=dict)

    def to_event(self) -> Dict[str, object]:
        """Flat dict form for sinks (JSONL lines, console tables)."""
        event: Dict[str, object] = {
            "type": "span",
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "depth": self.depth,
            "parent": self.parent,
            "thread": self.thread,
        }
        for key, value in self.tags.items():
            event[f"tag.{key}"] = value
        return event


class _NullSpan:
    """Shared do-nothing span used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def tag(self, **tags: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span; becomes a :class:`SpanRecord` on exit."""

    __slots__ = ("_tracer", "name", "tags", "_start", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str, tags: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.tags = tags

    def tag(self, **tags: object) -> "_Span":
        """Attach extra tags while the span is open."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1].name if stack else None
        stack.append(self)
        self._start = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.monotonic()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(
            SpanRecord(
                name=self.name,
                start_s=self._start,
                duration_s=end - self._start,
                depth=self._depth,
                parent=self._parent,
                thread=threading.current_thread().name,
                tags=dict(self.tags),
            )
        )
        return False


class Tracer:
    """Collects nested spans; thread-safe; no-op when disabled.

    Args:
        enabled: start collecting immediately (default True).
        sinks: objects with an ``emit(event: dict)`` method (see
            :mod:`repro.obs.sinks`); every finished span is forwarded.
        max_records: drop the oldest in-memory records beyond this bound
            so long-running services cannot grow without limit (sinks
            still see every span).
    """

    def __init__(
        self,
        enabled: bool = True,
        sinks: Iterable[object] = (),
        max_records: int = 100_000,
    ):
        self.enabled = enabled
        self._sinks: List[object] = list(sinks)
        self._max_records = max_records
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def span(self, name: str, **tags: object):
        """Context manager timing one named span.

        Keyword arguments become span tags, e.g.
        ``tracer.span("sweep.precision", spec="fixed8")``.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, tags)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def add_sink(self, sink: object) -> None:
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
            if len(self._records) > self._max_records:
                del self._records[: len(self._records) - self._max_records]
        for sink in self._sinks:
            sink.emit(record.to_event())

    # ------------------------------------------------------------------
    def records(self, name: Optional[str] = None) -> List[SpanRecord]:
        """Finished spans in completion order (optionally filtered)."""
        with self._lock:
            records = list(self._records)
        if name is not None:
            records = [r for r in records if r.name == name]
        return records

    def reset(self) -> None:
        """Drop all collected records (sinks are untouched)."""
        with self._lock:
            self._records.clear()

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregate: ``{name: {count, total_s, max_s}}``."""
        summary: Dict[str, Dict[str, float]] = {}
        for record in self.records():
            entry = summary.setdefault(
                record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += record.duration_s
            entry["max_s"] = max(entry["max_s"], record.duration_s)
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self._records)} records)"


_DEFAULT_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide default tracer (disabled until configured)."""
    return _DEFAULT_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide default tracer; returns the previous one."""
    global _DEFAULT_TRACER
    previous = _DEFAULT_TRACER
    _DEFAULT_TRACER = tracer
    return previous
