"""Counters, gauges and windowed histograms behind one registry.

Every instrument lives in a :class:`MetricsRegistry` and the whole
registry serializes to one plain dict via :meth:`MetricsRegistry.
snapshot` — the same ``snapshot() -> dict`` contract
:class:`repro.serve.ServerStats` follows, so dashboards and tests can
consume trainer, sweep and serving metrics uniformly.

Instruments are cheap and thread-safe: counters and gauges are a
single locked update; histograms keep a bounded window of recent
observations (plus running totals over *all* observations) and compute
p50/p95/p99 only when a snapshot is taken.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
]


class Counter:
    """Monotonically increasing value (accepts float increments)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        amount = float(amount)
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Gauge:
    """Last-written value (e.g. current loss, queue depth)."""

    def __init__(self, name: str):
        self.name = name
        self._value = float("nan")
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            current = 0.0 if np.isnan(self._value) else self._value
            self._value = current + delta

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Windowed distribution with p50/p95/p99 on demand.

    The window holds the most recent ``window`` observations; ``count``
    and ``sum`` keep running totals over everything ever observed, so
    throughput math stays exact even after the window rolls.
    """

    def __init__(self, name: str, window: int = 2048):
        if window < 1:
            raise ConfigurationError("histogram window must be >= 1")
        self.name = name
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._values.append(value)
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            values = np.asarray(self._values, dtype=np.float64)
            count, total = self._count, self._sum
            low, high = self._min, self._max
        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        p50, p95, p99 = (float(np.percentile(values, p)) for p in (50, 95, 99))
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": low,
            "max": high,
            "p50": p50,
            "p95": p95,
            "p99": p99,
        }


class MetricsRegistry:
    """Named instruments with uniform creation and snapshotting.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create, so call
    sites never need to pre-register::

        registry.counter("trainer.epochs").inc()
        registry.histogram("serve.latency_ms").observe(3.2)
        registry.snapshot()["histograms"]["serve.latency_ms"]["p95"]
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, window: int = 2048) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, window=window)
            return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time dict of every instrument's state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.snapshot() for name, c in counters.items()},
            "gauges": {name: g.snapshot() for name, g in gauges.items()},
            "histograms": {name: h.snapshot() for name, h in histograms.items()},
        }

    def reset(self) -> None:
        """Drop every instrument (names are re-created on next use)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )


_DEFAULT_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide shared registry (trainer/sweep/serve default)."""
    return _DEFAULT_METRICS


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _DEFAULT_METRICS
    previous = _DEFAULT_METRICS
    _DEFAULT_METRICS = registry
    return previous
