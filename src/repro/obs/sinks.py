"""Pluggable event sinks for the tracer.

A sink is anything with an ``emit(event: dict)`` method.  Two concrete
sinks cover the common cases:

``JsonlSink``
    Appends one JSON object per event to a file — the structured trace
    a notebook or external dashboard can replay.

``ConsoleTableSink``
    Buffers events and renders them as an aligned text table on
    ``flush()`` — quick human inspection from scripts and the CLI.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Sequence, TextIO

__all__ = ["Sink", "JsonlSink", "ConsoleTableSink"]


class Sink:
    """Base class: receives one flat dict per finished span."""

    def emit(self, event: Dict[str, object]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further emits are undefined."""


class JsonlSink(Sink):
    """Append events as JSON lines to ``path`` (created on first emit).

    Writes are line-buffered under a lock so concurrent worker threads
    never interleave partial lines.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = None
        self.emitted = 0

    def emit(self, event: Dict[str, object]) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a")
            self._handle.write(line + "\n")
            self._handle.flush()
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ConsoleTableSink(Sink):
    """Buffer events; ``flush()`` prints them as an aligned table.

    Args:
        columns: event keys shown as columns (missing keys render
            empty).  Defaults to the span fields most worth scanning.
        stream: optional file-like target; defaults to stdout at flush
            time (so pytest capture and CLI redirection both work).
    """

    DEFAULT_COLUMNS = ("name", "duration_s", "depth", "parent", "thread")

    def __init__(self, columns: Sequence[str] = DEFAULT_COLUMNS,
                 stream: Optional[TextIO] = None):
        self.columns = list(columns)
        self.stream = stream
        self._events: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, object]) -> None:
        with self._lock:
            self._events.append(dict(event))

    def events(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._events)

    def render(self) -> str:
        """The buffered events as one aligned text table."""
        rows = []
        for event in self.events():
            row = []
            for column in self.columns:
                value = event.get(column, "")
                if isinstance(value, float):
                    row.append(f"{value:.6f}")
                else:
                    row.append("" if value is None else str(value))
            rows.append(row)
        widths = [
            max([len(column)] + [len(row[i]) for row in rows])
            for i, column in enumerate(self.columns)
        ]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        rule = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in rows
        ]
        return "\n".join([header, rule] + body)

    def flush(self) -> None:
        """Print the table and clear the buffer."""
        import sys

        text = self.render()
        target = self.stream or sys.stdout
        print(text, file=target)
        with self._lock:
            self._events.clear()
