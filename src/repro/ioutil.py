"""Shared filesystem helpers: atomic writes that never leave torn files.

Several subsystems persist state other processes may read concurrently
— the sweep cache (:mod:`repro.parallel.cache`), the model registry
(:mod:`repro.registry`) — and all of them need the same property: a
reader never observes a half-written file, no matter when the writer
dies.  The classic POSIX recipe lives here once: write to a temp file
in the destination directory, then ``os.replace`` onto the final name
(atomic on the same filesystem).
"""

from __future__ import annotations

import os
import tempfile
from typing import BinaryIO, Callable, Union

__all__ = ["atomic_write"]


def atomic_write(
    path: str,
    data: Union[bytes, Callable[[BinaryIO], None]],
) -> str:
    """Atomically create or replace ``path``; returns ``path``.

    ``data`` is either the exact bytes to write or a callable that
    writes to the open binary handle (for writers like
    ``np.savez_compressed`` that want a file object).  Parent
    directories are created as needed.  On any failure the temp file is
    removed and the previous contents of ``path`` — if any — remain
    intact.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            if callable(data):
                data(handle)
            else:
                handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path
