"""Neural functional unit: the three-stage compute pipeline of Figure 2.

Stage 1 (WB)    — per-synapse weight blocks, precision-variant.
Stage 2 (tree)  — per-neuron adder trees reducing the synapse products.
Stage 3 (NL)    — per-neuron nonlinearity units.

For the binary net the paper merges stages 1 and 2 ("effectively
leading to a two stage NFU, in order to reduce the runtime"); the model
reflects that in the pipeline depth (affecting per-layer fill latency)
while the component inventory is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.precision import PrecisionKind, PrecisionSpec
from repro.errors import HardwareModelError
from repro.hw.components import (
    AdderTree,
    AreaPower,
    NonlinearityUnit,
    PipelineRegisters,
    make_weight_block,
)
from repro.hw.tech import TechnologyLibrary


@dataclass(frozen=True)
class NfuGeometry:
    """Tile dimensions: ``neurons`` units of ``synapses`` inputs each."""

    neurons: int = 16
    synapses: int = 16

    def __post_init__(self) -> None:
        if self.neurons < 1 or self.synapses < 2:
            raise HardwareModelError("invalid NFU geometry")

    @property
    def macs_per_cycle(self) -> int:
        return self.neurons * self.synapses


class NeuralFunctionalUnit:
    """The compute core for one precision point."""

    def __init__(
        self,
        spec: PrecisionSpec,
        geometry: NfuGeometry = NfuGeometry(),
        tech: TechnologyLibrary = None,
    ):
        from repro.hw.tech import TECH_65NM

        self.spec = spec
        self.geometry = geometry
        self.tech = tech or TECH_65NM
        self.weight_block = make_weight_block(spec)
        acc_bits = self.weight_block.accumulator_bits
        self.adder_tree = AdderTree(
            fan_in=geometry.synapses,
            operand_bits=acc_bits,
            floating_point=spec.kind is PrecisionKind.FLOAT,
        )
        self.nonlinearity = NonlinearityUnit(acc_bits)
        self.registers = PipelineRegisters(self._register_bits(acc_bits))

    def _register_bits(self, acc_bits: int) -> int:
        """Staging flops: synapse products, neuron sums, I/O latches,
        and the weight registers feeding stage 1."""
        g = self.geometry
        n_units = g.neurons * g.synapses
        return (
            n_units * acc_bits                      # stage-1 -> stage-2
            + g.neurons * acc_bits                  # stage-2 -> stage-3
            + g.neurons * self.spec.input_bits      # output latch
            + n_units * self.spec.weight_bits       # weight registers
            + g.neurons * self.spec.input_bits      # input latch
        )

    # ------------------------------------------------------------------
    @property
    def pipeline_depth(self) -> int:
        """Stage count; binary merges WB into the adder tree stage."""
        return 2 if self.spec.kind is PrecisionKind.BINARY else 3

    def stage1_cost(self) -> AreaPower:
        unit = self.weight_block.unit_cost(self.tech)
        return unit.scaled(self.geometry.macs_per_cycle)

    def stage2_cost(self) -> AreaPower:
        return self.adder_tree.cost(self.tech).scaled(self.geometry.neurons)

    def stage3_cost(self) -> AreaPower:
        return self.nonlinearity.cost(self.tech).scaled(self.geometry.neurons)

    def register_cost(self) -> AreaPower:
        return self.registers.cost(self.tech)

    def combinational_cost(self) -> AreaPower:
        return self.stage1_cost() + self.stage2_cost() + self.stage3_cost()

    def total_cost(self) -> AreaPower:
        return self.combinational_cost() + self.register_cost()

    def breakdown(self) -> Dict[str, AreaPower]:
        """Component map used by the Figure 3 report."""
        return {
            "stage1_weight_blocks": self.stage1_cost(),
            "stage2_adder_trees": self.stage2_cost(),
            "stage3_nonlinearity": self.stage3_cost(),
            "pipeline_registers": self.register_cost(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NeuralFunctionalUnit({self.spec.label}, "
            f"{self.geometry.neurons}x{self.geometry.synapses})"
        )
