"""Memory-footprint accounting (Section V-B).

The paper reports parameter memory of ~1650 KB (LeNet), ~2150 KB
(ConvNet), ~350 KB (ALEX), ~1250 KB (ALEX+) and ~9400 KB (ALEX++) at
full precision, and notes the footprint scales linearly with parameter
precision (2x to 32x reduction).  This module computes those numbers
for any network/precision pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import PrecisionSpec
from repro.nn.network import Sequential


@dataclass(frozen=True)
class MemoryFootprint:
    """Storage requirements of one (network, precision) pair."""

    network_name: str
    precision_label: str
    parameter_count: int
    parameter_kb: float
    input_kb: float
    peak_feature_map_kb: float

    @property
    def total_kb(self) -> float:
        return self.parameter_kb + self.input_kb + self.peak_feature_map_kb

    def reduction_vs(self, baseline: "MemoryFootprint") -> float:
        """Parameter-memory shrink factor relative to ``baseline``."""
        return baseline.parameter_kb / self.parameter_kb


def network_memory_footprint(
    network: Sequential,
    input_shape: tuple,
    spec: PrecisionSpec,
) -> MemoryFootprint:
    """Compute parameter / activation storage at a precision point.

    Parameters are stored at ``spec.weight_bits``; the input image and
    feature maps at ``spec.input_bits``.
    """
    param_bits = network.parameter_count() * spec.weight_bits
    input_values = 1
    for dim in input_shape:
        input_values *= int(dim)
    input_bits = input_values * spec.input_bits

    peak_values = input_values
    shape = input_shape
    for layer in network.layers:
        shape = layer.output_shape(shape)
        values = 1
        for dim in shape:
            values *= int(dim)
        peak_values = max(peak_values, values)

    return MemoryFootprint(
        network_name=network.name,
        precision_label=spec.label,
        parameter_count=network.parameter_count(),
        parameter_kb=param_bits / 8192.0,
        input_kb=input_bits / 8192.0,
        peak_feature_map_kb=peak_values * spec.input_bits / 8192.0,
    )
