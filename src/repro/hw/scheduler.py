"""Layer-to-tile scheduling and cycle counting.

The scheduler maps each compute layer (convolution / inner product) of
a :class:`repro.nn.Sequential` onto the tile and counts execution
cycles.  Following the paper's accelerator description, buffer DMA is
assumed to overlap computation completely ("ensuring that the data is
loaded into the buffers and made available to the NFU at the
appropriate clock cycle without additional latency"), so a layer's
cycle count is its MAC count over the tile's MAC throughput, scaled by
the calibrated dataflow efficiency, plus a fixed per-layer startup.

Pooling and activation run in NFU stage 3 / the pooling path and
overlap the MAC stream; they contribute no extra cycles.

Degenerate inputs raise :class:`repro.errors.SchedulingError` instead
of producing a silent zero-cycle schedule: an empty network, a
non-positive input shape, a layer reporting non-positive MACs, or a
tile whose minimal working set (one row of synapse inputs, one tile of
weights, one row of neuron outputs) does not fit the double-buffered
half of the corresponding buffer.  Layers whose MAC count is not
divisible by the tile's 256 MACs/cycle run a padded edge tile — the
ceil in the cycle formula — which is why ``LayerWork.utilization``
reports the *achieved* fraction of peak, clamped to [0, 1].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SchedulingError
from repro.hw.accelerator import Accelerator
from repro.nn.network import Sequential


@dataclass(frozen=True)
class LayerWork:
    """Workload of one compute layer for a single input image."""

    name: str
    kind: str               # "conv" or "dense"
    macs: int               # multiply-accumulates per image
    weights: int            # parameter count (incl. bias)
    input_values: int       # feature-map values read
    output_values: int      # feature-map values produced
    cycles: int             # scheduled execution cycles
    #: tile peak throughput the layer was scheduled against; 0 means
    #: "unknown" (hand-built LayerWork) and falls back to MACs/cycle
    peak_macs_per_cycle: int = 0

    @property
    def macs_per_cycle(self) -> float:
        """Achieved MAC throughput (diagnostic)."""
        return self.macs / max(self.cycles, 1)

    @property
    def utilization(self) -> float:
        """Achieved fraction of the tile's peak throughput, in [0, 1].

        Edge tiles (MAC counts not divisible by the tile dimensions)
        and per-layer startup both show up here as lost utilization.
        """
        if self.peak_macs_per_cycle <= 0:
            return min(1.0, self.macs / max(self.cycles, 1))
        peak = self.peak_macs_per_cycle * max(self.cycles, 1)
        return max(0.0, min(1.0, self.macs / peak))


@dataclass(frozen=True)
class Schedule:
    """Full-network schedule for one image."""

    network_name: str
    layers: Tuple[LayerWork, ...]

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def runtime_s(self, clock_hz: float) -> float:
        return self.total_cycles / clock_hz


class TileScheduler:
    """Maps networks onto an :class:`Accelerator` instance."""

    def __init__(self, accelerator: Accelerator):
        self.accelerator = accelerator
        self._validate_tile_capacity()

    def _validate_tile_capacity(self) -> None:
        """One tile pass must fit in the double-buffered bank of each
        buffer, or no layer can ever be resident while the next chunk
        streams in."""
        config = self.accelerator.config
        checks = [
            ("input_buffer_words", config.input_buffer_words, config.synapses,
             "one row of synapse inputs"),
            ("weight_buffer_words", config.weight_buffer_words,
             config.neurons * config.synapses, "one tile of weights"),
            ("output_buffer_words", config.output_buffer_words, config.neurons,
             "one row of neuron outputs"),
        ]
        for field, words, needed, what in checks:
            if words // 2 < needed:
                raise SchedulingError(
                    f"{field}={words} cannot double-buffer {what} "
                    f"({needed} words needed per bank)"
                )

    def _cycles_for(self, macs: int) -> int:
        config = self.accelerator.config
        ideal = macs / self.accelerator.macs_per_cycle
        # Binary merges NFU stages 1-2, shaving pipeline fill; the
        # effect on throughput is in the startup term, not here.
        return int(math.ceil(ideal / config.dataflow_efficiency))

    def _startup_cycles(self) -> int:
        config = self.accelerator.config
        depth = self.accelerator.nfu.pipeline_depth
        return config.layer_startup_cycles + depth

    def schedule(self, network: Sequential, input_shape: tuple) -> Schedule:
        """Schedule every compute layer of ``network`` on the tile.

        Args:
            network: the model to map.
            input_shape: (C, H, W) of one input image.

        Raises:
            SchedulingError: no compute layers, a non-positive input
                shape, or a layer reporting non-positive MACs.
        """
        if not input_shape or any(int(dim) < 1 for dim in input_shape):
            raise SchedulingError(
                f"input shape {input_shape!r} has no volume; every "
                "dimension must be >= 1"
            )
        layers: List[LayerWork] = []
        shape = input_shape
        for layer in network.layers:
            out_shape = layer.output_shape(shape)
            if hasattr(layer, "macs"):
                macs = layer.macs(shape)
                if macs <= 0:
                    raise SchedulingError(
                        f"layer {layer.name} reports non-positive MACs"
                    )
                kind = "conv" if len(out_shape) == 3 else "dense"
                layers.append(
                    LayerWork(
                        name=layer.name,
                        kind=kind,
                        macs=macs,
                        weights=layer.parameter_count(),
                        input_values=int(_prod(shape)),
                        output_values=int(_prod(out_shape)),
                        cycles=self._cycles_for(macs) + self._startup_cycles(),
                        peak_macs_per_cycle=self.accelerator.macs_per_cycle,
                    )
                )
            shape = out_shape
        if not layers:
            raise SchedulingError(
                f"network {network.name!r} has no compute layers to schedule"
            )
        return Schedule(network_name=network.name, layers=tuple(layers))


def _prod(shape: tuple) -> int:
    out = 1
    for dim in shape:
        out *= int(dim)
    return out
