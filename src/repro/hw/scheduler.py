"""Layer-to-tile scheduling and cycle counting.

The scheduler maps each compute layer (convolution / inner product) of
a :class:`repro.nn.Sequential` onto the tile and counts execution
cycles.  Following the paper's accelerator description, buffer DMA is
assumed to overlap computation completely ("ensuring that the data is
loaded into the buffers and made available to the NFU at the
appropriate clock cycle without additional latency"), so a layer's
cycle count is its MAC count over the tile's MAC throughput, scaled by
the calibrated dataflow efficiency, plus a fixed per-layer startup.

Pooling and activation run in NFU stage 3 / the pooling path and
overlap the MAC stream; they contribute no extra cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import HardwareModelError
from repro.hw.accelerator import Accelerator
from repro.nn.network import Sequential


@dataclass(frozen=True)
class LayerWork:
    """Workload of one compute layer for a single input image."""

    name: str
    kind: str               # "conv" or "dense"
    macs: int               # multiply-accumulates per image
    weights: int            # parameter count (incl. bias)
    input_values: int       # feature-map values read
    output_values: int      # feature-map values produced
    cycles: int             # scheduled execution cycles

    @property
    def utilization(self) -> float:
        """Achieved fraction of peak MACs (diagnostic)."""
        return self.macs / max(self.cycles, 1)


@dataclass(frozen=True)
class Schedule:
    """Full-network schedule for one image."""

    network_name: str
    layers: Tuple[LayerWork, ...]

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def runtime_s(self, clock_hz: float) -> float:
        return self.total_cycles / clock_hz


class TileScheduler:
    """Maps networks onto an :class:`Accelerator` instance."""

    def __init__(self, accelerator: Accelerator):
        self.accelerator = accelerator

    def _cycles_for(self, macs: int) -> int:
        config = self.accelerator.config
        ideal = macs / self.accelerator.macs_per_cycle
        # Binary merges NFU stages 1-2, shaving pipeline fill; the
        # effect on throughput is in the startup term, not here.
        return int(math.ceil(ideal / config.dataflow_efficiency))

    def _startup_cycles(self) -> int:
        config = self.accelerator.config
        depth = self.accelerator.nfu.pipeline_depth
        return config.layer_startup_cycles + depth

    def schedule(self, network: Sequential, input_shape: tuple) -> Schedule:
        """Schedule every compute layer of ``network`` on the tile.

        Args:
            network: the model to map.
            input_shape: (C, H, W) of one input image.
        """
        layers: List[LayerWork] = []
        shape = input_shape
        for layer in network.layers:
            out_shape = layer.output_shape(shape)
            if hasattr(layer, "macs"):
                macs = layer.macs(shape)
                if macs <= 0:
                    raise HardwareModelError(
                        f"layer {layer.name} reports non-positive MACs"
                    )
                kind = "conv" if len(out_shape) == 3 else "dense"
                layers.append(
                    LayerWork(
                        name=layer.name,
                        kind=kind,
                        macs=macs,
                        weights=layer.parameter_count(),
                        input_values=int(_prod(shape)),
                        output_values=int(_prod(out_shape)),
                        cycles=self._cycles_for(macs) + self._startup_cycles(),
                    )
                )
            shape = out_shape
        if not layers:
            raise HardwareModelError("network has no compute layers to schedule")
        return Schedule(network_name=network.name, layers=tuple(layers))


def _prod(shape: tuple) -> int:
    out = 1
    for dim in shape:
        out *= int(dim)
    return out
