"""Off-chip traffic and bandwidth analysis.

The paper's introduction motivates precision scaling with the cost of
"memory accesses and data transfer overheads"; its accelerator hides
transfer latency behind double-buffered DMA but the *volume* of traffic
still scales with precision.  This module quantifies that: per-image
DRAM traffic (weights + input + output feature maps) and the sustained
bandwidth the DMA engines need for the buffers to stay ahead of the
NFU, per precision.

Weight traffic counts each parameter once per image when a layer's
weights exceed the weight-buffer capacity (they must be re-streamed)
and amortizes resident weights across a configurable batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.precision import PrecisionSpec
from repro.errors import HardwareModelError
from repro.hw.accelerator import Accelerator
from repro.hw.scheduler import Schedule, TileScheduler
from repro.nn.network import Sequential


@dataclass(frozen=True)
class LayerTraffic:
    """Per-image DRAM traffic of one compute layer, in bits."""

    name: str
    weight_bits: int
    input_bits: int
    output_bits: int
    resident: bool  # weights fit in the SB and amortize across a batch

    @property
    def total_bits(self) -> int:
        return self.weight_bits + self.input_bits + self.output_bits


@dataclass(frozen=True)
class TrafficReport:
    """Whole-network traffic and bandwidth summary."""

    network_name: str
    precision_label: str
    layers: Tuple[LayerTraffic, ...]
    total_bits_per_image: int
    bytes_per_image: float
    required_bandwidth_gbps: float  # to sustain the scheduled frame rate

    def reduction_vs(self, baseline: "TrafficReport") -> float:
        return baseline.bytes_per_image / self.bytes_per_image


def traffic_report(
    network: Sequential,
    input_shape: tuple,
    accelerator: Accelerator,
    batch_size: int = 1,
) -> TrafficReport:
    """Per-image DRAM traffic for a network on one accelerator design.

    Args:
        network / input_shape: the workload.
        accelerator: design point (defines precision and SB capacity).
        batch_size: images sharing one weight-resident pass; weights of
            layers that fit in the SB are counted once per batch.
    """
    if batch_size < 1:
        raise HardwareModelError("batch_size must be >= 1")
    spec: PrecisionSpec = accelerator.spec
    schedule: Schedule = TileScheduler(accelerator).schedule(network, input_shape)
    sb_capacity_values = accelerator.weight_buffer.words

    layers: List[LayerTraffic] = []
    for work in schedule.layers:
        resident = work.weights <= sb_capacity_values
        weight_traffic = work.weights * spec.weight_bits
        if resident:
            weight_traffic = -(-weight_traffic // batch_size)  # ceil-div
        layers.append(
            LayerTraffic(
                name=work.name,
                weight_bits=int(weight_traffic),
                input_bits=work.input_values * spec.input_bits,
                output_bits=work.output_values * spec.input_bits,
                resident=resident,
            )
        )
    total_bits = sum(layer.total_bits for layer in layers)
    runtime_s = schedule.runtime_s(accelerator.tech.clock_hz)
    bandwidth_gbps = total_bits / runtime_s / 1e9
    return TrafficReport(
        network_name=network.name,
        precision_label=spec.label,
        layers=tuple(layers),
        total_bits_per_image=total_bits,
        bytes_per_image=total_bits / 8.0,
        required_bandwidth_gbps=bandwidth_gbps,
    )
