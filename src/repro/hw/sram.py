"""SRAM buffer subsystem model (Bin, Bout, SB of Figure 2).

Each buffer subsystem in the paper "comprises an SRAM buffer array, a
DMA, and control logic" that hides transfer latency from the NFU.  The
model captures the dominant cost — the SRAM array — with area linear
in capacity and power split into leakage plus an access term that
scales with streaming bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError
from repro.hw.tech import TechnologyLibrary


@dataclass(frozen=True)
class SramBuffer:
    """One buffer subsystem.

    Attributes:
        name: e.g. ``"Bin"``.
        words: storage entries.
        bits_per_word: word width — this is what precision scaling
            changes (weight bits for SB, input bits for Bin/Bout).
        bits_per_cycle: streaming bandwidth the NFU demands at full
            utilization (e.g. 256 weights/cycle for SB).
    """

    name: str
    words: int
    bits_per_word: int
    bits_per_cycle: int

    def __post_init__(self) -> None:
        if self.words < 1 or self.bits_per_word < 1:
            raise HardwareModelError(f"buffer {self.name}: invalid geometry")
        if self.bits_per_cycle < 0:
            raise HardwareModelError(f"buffer {self.name}: invalid bandwidth")

    @property
    def total_bits(self) -> int:
        return self.words * self.bits_per_word

    @property
    def kilobytes(self) -> float:
        return self.total_bits / 8192.0

    def area_mm2(self, tech: TechnologyLibrary) -> float:
        return tech.sram_area(self.total_bits)

    def power_mw(self, tech: TechnologyLibrary) -> float:
        return tech.sram_power(self.total_bits, self.bits_per_cycle)

    def leakage_mw(self, tech: TechnologyLibrary) -> float:
        """Static power only — what the buffer burns while not streaming.

        The cycle-level simulator charges this during stall cycles and
        the full :meth:`power_mw` (leakage + access) during busy ones.
        """
        return tech.sram_leakage_per_mm2 * self.area_mm2(tech)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.words} x {self.bits_per_word}b "
            f"({self.kilobytes:.1f} KB)"
        )
