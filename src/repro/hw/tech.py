"""65 nm technology library for the accelerator model.

The paper synthesizes its accelerator with Synopsys Design Compiler on
"a 65 nm industry strength technology node library" at 250 MHz and a
nominal corner.  That flow is not reproducible without the proprietary
library, so this module provides an *analytical* component library
whose coefficients were calibrated, once, against the seven synthesized
design points of Table III (area and power for every precision).

Calibration protocol
--------------------
The accelerator model (buffers + NFU + registers + buffer/inverter
network, assembled exactly as in :mod:`repro.hw.accelerator`) was fit
by bounded least squares to the 14 area/power targets of Table III,
with soft constraints keeping the buffer share of total area inside
the 76-96 % window and the buffer share of total power inside the
75-93 % window that Section V-B reports.  All coefficients stayed
inside physically plausible 65 nm ranges (e.g. ~5.2 um^2/bit for
buffer SRAM including periphery and wide-port overhead, ~1 nm^2 * b^2
for array multipliers, ~18 um^2 per pipeline flip-flop).

Residuals of the calibrated model vs. Table III:

    ==========  ========  =========
    precision   area err  power err
    ==========  ========  =========
    float32      -4.7 %     -0.7 %
    fixed32      +0.1 %     -0.7 %
    fixed16      -0.8 %     -7.7 %
    fixed8       +0.4 %    +11.0 %
    fixed4       +2.4 %     +5.4 %
    pow2         -0.9 %     +0.9 %
    binary       +3.2 %    -11.8 %
    ==========  ========  =========

The paper's power column is not smoothly explainable by any single
physical parameterization (its fixed-point power density jumps between
8 and 16 bits while area stays linear); the fit splits that residual
across the fixed8/fixed16/binary rows instead of concentrating it.
EXPERIMENTS.md tabulates paper-vs-model for every row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class TechnologyLibrary:
    """Area/power coefficients for one technology node.

    Area coefficients are in mm^2; power densities in mW/mm^2; the
    SRAM access coefficient in mW per (bit/cycle * sqrt(bit)) * 1e-6.
    """

    name: str
    clock_hz: float

    # --- SRAM buffers -------------------------------------------------
    sram_area_per_bit: float          # mm^2 per bit, incl. periphery
    sram_leakage_per_mm2: float       # mW static per mm^2 of SRAM
    sram_access_coeff: float          # dynamic access-power coefficient

    # --- combinational logic ------------------------------------------
    mult_area_per_bit2: float         # array multiplier: K * w * i
    fp_mult_extra_area: float         # FP32 multiplier overhead per unit
    fp_add_extra_area: float          # FP32 adder overhead per unit
    adder_area_per_bit: float         # ripple/carry-select adder per bit
    shifter_area_per_bit_stage: float # barrel shifter: K * width * stages
    negate_area_per_bit: float        # two's-complement negate per bit
    control_area: float               # fixed control-logic area
    logic_power_per_mm2: float        # dynamic+leak density at 250 MHz

    # --- sequential ----------------------------------------------------
    register_area_per_bit: float      # one pipeline flip-flop
    bufinv_fraction: float            # clock/buffer tree as logic share

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise HardwareModelError("clock frequency must be positive")
        for field_name in (
            "sram_area_per_bit", "sram_leakage_per_mm2", "sram_access_coeff",
            "mult_area_per_bit2", "fp_mult_extra_area", "fp_add_extra_area",
            "adder_area_per_bit", "shifter_area_per_bit_stage",
            "negate_area_per_bit", "logic_power_per_mm2",
            "register_area_per_bit",
        ):
            if getattr(self, field_name) < 0:
                raise HardwareModelError(f"{field_name} must be >= 0")
        if not 0.0 <= self.bufinv_fraction < 1.0:
            raise HardwareModelError("bufinv_fraction must be in [0, 1)")

    @property
    def clock_period_s(self) -> float:
        return 1.0 / self.clock_hz

    # ------------------------------------------------------------------
    # Elementary estimators
    # ------------------------------------------------------------------
    def sram_area(self, bits: int) -> float:
        """Buffer macro area for ``bits`` of storage."""
        if bits < 0:
            raise HardwareModelError("bits must be >= 0")
        return self.sram_area_per_bit * bits

    def sram_power(self, bits: int, bits_per_cycle: float) -> float:
        """Leakage + access power of a buffer streaming at full rate.

        The access term scales with the bits moved per cycle and with
        sqrt(capacity) (bitline/wordline length growth).
        """
        if bits_per_cycle < 0:
            raise HardwareModelError("bits_per_cycle must be >= 0")
        leakage = self.sram_leakage_per_mm2 * self.sram_area(bits)
        access = self.sram_access_coeff * bits_per_cycle * (bits**0.5) * 1e-6
        return leakage + access

    def logic_power(self, area_mm2: float) -> float:
        """Power of combinational/sequential logic of the given area."""
        if area_mm2 < 0:
            raise HardwareModelError("area must be >= 0")
        return self.logic_power_per_mm2 * area_mm2

    def with_clock(self, clock_hz: float) -> "TechnologyLibrary":
        """Scaled library for a different clock frequency.

        Dynamic terms (logic switching power, SRAM access power) scale
        linearly with frequency; SRAM leakage is static and does not.
        This is the first-order CV^2*f model at fixed voltage — the
        paper explicitly keeps 250 MHz constant, so this is provided
        for the design-space exploration it declares out of scope.
        """
        import dataclasses

        if clock_hz <= 0:
            raise HardwareModelError("clock frequency must be positive")
        ratio = clock_hz / self.clock_hz
        return dataclasses.replace(
            self,
            name=f"{self.name}@{clock_hz / 1e6:.0f}MHz",
            clock_hz=clock_hz,
            logic_power_per_mm2=self.logic_power_per_mm2 * ratio,
            sram_access_coeff=self.sram_access_coeff * ratio,
        )


#: The calibrated 65 nm / 250 MHz library used throughout the study.
TECH_65NM = TechnologyLibrary(
    name="65nm-generic",
    clock_hz=250e6,
    sram_area_per_bit=5.204275e-06,
    sram_leakage_per_mm2=5.678546e+01,
    sram_access_coeff=2.751325e+01,
    mult_area_per_bit2=3.955979e-06,
    fp_mult_extra_area=6.244221e-03,
    fp_add_extra_area=3.413227e-03,
    adder_area_per_bit=9.243268e-06,
    shifter_area_per_bit_stage=1.2e-06,
    negate_area_per_bit=5.0e-06,
    control_area=1.0e-04,
    logic_power_per_mm2=9.161884e+01,
    register_area_per_bit=1.8e-05,
    bufinv_fraction=0.08,
)
