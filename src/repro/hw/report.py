"""Synthesis-style reporting: Table III rows and the Figure 3 breakdown."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.precision import PAPER_PRECISIONS, PrecisionSpec
from repro.hw.accelerator import Accelerator, AcceleratorConfig
from repro.hw.tech import TECH_65NM, TechnologyLibrary

#: display order of the Figure 3 stack categories
BREAKDOWN_CATEGORIES = ["memory", "registers", "combinational", "buf_inv"]


def area_power_breakdown(
    accelerator: Accelerator,
) -> Dict[str, Dict[str, float]]:
    """Figure 3 data for one design: category -> {area_mm2, power_mw}."""
    return {
        category: {"area_mm2": cost.area_mm2, "power_mw": cost.power_mw}
        for category, cost in accelerator.breakdown().items()
    }


def design_metrics_table(
    precisions: Sequence[PrecisionSpec] = tuple(PAPER_PRECISIONS),
    config: AcceleratorConfig = AcceleratorConfig(),
    tech: TechnologyLibrary = TECH_65NM,
) -> List[Dict[str, float]]:
    """Table III rows: area, power and savings vs. the float baseline.

    Returns one dict per precision with keys ``precision``,
    ``area_mm2``, ``power_mw``, ``area_saving_pct``, ``power_saving_pct``.
    """
    baseline = Accelerator(precisions[0], config=config, tech=tech)
    base_area = baseline.area_mm2
    base_power = baseline.power_mw
    rows: List[Dict[str, float]] = []
    for spec in precisions:
        accelerator = Accelerator(spec, config=config, tech=tech)
        rows.append(
            {
                "precision": spec.label,
                "key": spec.key,
                "area_mm2": accelerator.area_mm2,
                "power_mw": accelerator.power_mw,
                "area_saving_pct": 100.0 * (1.0 - accelerator.area_mm2 / base_area),
                "power_saving_pct": 100.0 * (1.0 - accelerator.power_mw / base_power),
            }
        )
    return rows


#: compact stall-cause abbreviations for the schedule-report column
_STALL_ABBREV = {
    "startup": "su",
    "pipeline_fill": "pf",
    "dataflow": "df",
    "dma_wait": "dw",
    "drain": "dr",
}


def _stall_cell(stalls) -> str:
    """``su64 pf3 df203``-style compact stall breakdown."""
    parts = [
        f"{_STALL_ABBREV.get(cause, cause)}{cycles}"
        for cause, cycles in stalls.items()
        if cycles
    ]
    return " ".join(parts) if parts else "0"


def schedule_report(schedule, clock_hz: float = 250e6, sim=None) -> str:
    """Per-layer utilization table for one scheduled network.

    Shows where the tile's MAC throughput goes — the conv layers run
    near the calibrated dataflow efficiency, while small inner-product
    layers are startup-dominated.

    Args:
        schedule: analytical :class:`repro.hw.Schedule`.
        clock_hz: tile clock for the runtime header.
        sim: optional :class:`repro.hw.sim.SimReport` for the same
            schedule; when given, the utilization and stall-breakdown
            columns come from the simulated execution (and cycles show
            the simulated counts).  Without it the utilization column
            is analytical and the stall column renders ``—``.
    """
    sim_layers = {layer.name: layer for layer in sim.layers} if sim else {}
    header = (
        f"Schedule: {schedule.network_name} "
        f"({schedule.total_cycles} cycles, "
        f"{schedule.runtime_s(clock_hz) * 1e6:.1f} us @ {clock_hz / 1e6:.0f} MHz)"
    )
    if sim is not None:
        header += (
            f" | simulated {sim.total_cycles} cycles, "
            f"util {100 * sim.utilization:.1f}%"
        )
    lines = [
        header,
        f"{'layer':<10}{'kind':<7}{'MACs':>12}{'cycles':>10}"
        f"{'MACs/cycle':>12}{'util %':>8}  {'stalls':<20}",
        "-" * 71,
    ]
    for layer in schedule.layers:
        simulated = sim_layers.get(layer.name)
        if simulated is not None:
            cycles = simulated.cycles
            util = simulated.utilization
            stalls = _stall_cell(simulated.stalls)
            rate = simulated.macs / max(simulated.cycles, 1)
        else:
            cycles = layer.cycles
            util = layer.utilization
            stalls = "—"
            rate = layer.macs_per_cycle
        lines.append(
            f"{layer.name:<10}{layer.kind:<7}{layer.macs:>12}"
            f"{cycles:>10}{rate:>12.1f}{100 * util:>8.1f}  {stalls:<20}"
        )
    lines.append("-" * 71)
    total_cycles = sim.total_cycles if sim is not None else schedule.total_cycles
    total_stalls = _stall_cell(sim.stalls) if sim is not None else "—"
    if sim is not None:
        total_util = 100 * sim.utilization
    else:
        peak = max(schedule.layers[0].peak_macs_per_cycle, 1)
        total_util = 100 * min(
            1.0, schedule.total_macs / (peak * total_cycles)
        )
    lines.append(
        f"{'total':<17}{schedule.total_macs:>12}{total_cycles:>10}"
        f"{schedule.total_macs / total_cycles:>12.1f}{total_util:>8.1f}"
        f"  {total_stalls:<20}"
    )
    return "\n".join(lines)


def synthesis_report(accelerator: Accelerator) -> str:
    """Human-readable report mimicking a DC area/power summary."""
    lines = [
        f"Design: tile accelerator, {accelerator.spec.label}",
        f"Library: {accelerator.tech.name} @ {accelerator.tech.clock_hz / 1e6:.0f} MHz",
        "",
        f"{'component':<18}{'area (mm^2)':>14}{'power (mW)':>14}",
        "-" * 46,
    ]
    for category in BREAKDOWN_CATEGORIES:
        cost = accelerator.breakdown()[category]
        lines.append(f"{category:<18}{cost.area_mm2:>14.3f}{cost.power_mw:>14.2f}")
    total = accelerator.total_cost()
    lines.append("-" * 46)
    lines.append(f"{'total':<18}{total.area_mm2:>14.3f}{total.power_mw:>14.2f}")
    fractions = accelerator.memory_fraction()
    lines.append("")
    lines.append(
        f"buffers: {fractions['area']:.1%} of area, {fractions['power']:.1%} of power"
    )
    for buffer in accelerator.buffers:
        lines.append(f"  {buffer}")
    return "\n".join(lines)
