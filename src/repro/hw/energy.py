"""Per-image inference energy (the Table IV / Table V energy columns).

Energy = accelerator power x scheduled runtime.  Main-memory (DRAM)
energy is excluded, matching the paper ("these graphs do not reflect
the power consumption of the main memory").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.precision import LayeredPrecisionSpec, PrecisionSpec
from repro.errors import ConfigError
from repro.hw.accelerator import Accelerator, AcceleratorConfig
from repro.hw.scheduler import Schedule, TileScheduler
from repro.hw.tech import TECH_65NM, TechnologyLibrary
from repro.nn.network import Sequential


@dataclass(frozen=True)
class LayerEnergy:
    """Energy attribution for one layer."""

    name: str
    cycles: int
    energy_uj: float


@dataclass(frozen=True)
class EnergyReport:
    """Per-image energy for one (network, precision) pair."""

    network_name: str
    precision_label: str
    total_cycles: int
    runtime_us: float
    power_mw: float
    energy_uj: float
    layers: Tuple[LayerEnergy, ...]

    def savings_vs(self, baseline: "EnergyReport") -> float:
        """Energy saving in percent relative to ``baseline``."""
        return 100.0 * (1.0 - self.energy_uj / baseline.energy_uj)


class EnergyModel:
    """Evaluates networks on accelerator design points."""

    def __init__(
        self,
        config: AcceleratorConfig = AcceleratorConfig(),
        tech: TechnologyLibrary = TECH_65NM,
    ):
        self.config = config
        self.tech = tech
        self._accelerators: Dict[str, Accelerator] = {}
        self._reports: Dict[Tuple[str, tuple, str], EnergyReport] = {}

    def accelerator_for(self, spec: PrecisionSpec) -> Accelerator:
        """Cached accelerator instance per precision."""
        if spec.key not in self._accelerators:
            self._accelerators[spec.key] = Accelerator(
                spec, config=self.config, tech=self.tech
            )
        return self._accelerators[spec.key]

    def evaluate(
        self,
        network: Sequential,
        input_shape: tuple,
        spec: PrecisionSpec,
    ) -> EnergyReport:
        """Schedule ``network`` at ``spec`` and integrate energy.

        A :class:`~repro.core.precision.LayeredPrecisionSpec` prices
        each layer at its assigned per-layer width (see
        :meth:`evaluate_layered`); uniform specs take the single-
        schedule path below.
        """
        if isinstance(spec, LayeredPrecisionSpec):
            return self.evaluate_layered(network, input_shape, spec)
        accelerator = self.accelerator_for(spec)
        schedule: Schedule = TileScheduler(accelerator).schedule(network, input_shape)
        power_w = accelerator.power_mw * 1e-3
        period = self.tech.clock_period_s
        layers = tuple(
            LayerEnergy(
                name=layer.name,
                cycles=layer.cycles,
                energy_uj=layer.cycles * period * power_w * 1e6,
            )
            for layer in schedule.layers
        )
        runtime_s = schedule.runtime_s(self.tech.clock_hz)
        return EnergyReport(
            network_name=network.name,
            precision_label=spec.label,
            total_cycles=schedule.total_cycles,
            runtime_us=runtime_s * 1e6,
            power_mw=accelerator.power_mw,
            energy_uj=runtime_s * power_w * 1e6,
            layers=layers,
        )

    def evaluate_layered(
        self,
        network: Sequential,
        input_shape: tuple,
        spec: "LayeredPrecisionSpec",
    ) -> EnergyReport:
        """Per-layer mixed-precision energy.

        Each weight layer is priced from the schedule of its *own*
        uniform precision (bank capacities, cycle counts and datapath
        power all depend on the word width, so the per-width schedules
        differ); non-weight layers (pools) are priced at the spec's
        widest width, the conservative anchor.  The per-width uniform
        reports come from :meth:`evaluate_cached`, so a search
        generation touching many layered specs over one network
        schedules each distinct width once.
        """
        weight_layers = [
            layer for layer in network.layers
            if getattr(layer, "weight_parameters", None)
            and layer.weight_parameters()
        ]
        if len(spec.weight_bits_per_layer) != len(weight_layers):
            raise ConfigError(
                "weight_bits_per_layer",
                f"spec {spec.key!r} assigns "
                f"{len(spec.weight_bits_per_layer)} layer widths but "
                f"{network.name!r} has {len(weight_layers)} weight layers",
            )
        anchor = spec.layer_spec(spec.weight_bits)
        assigned = {
            layer.name: spec.layer_spec(bits)
            for layer, bits in zip(weight_layers, spec.weight_bits_per_layer)
        }
        reports = {
            uniform.key: self.evaluate_cached(network, input_shape, uniform)
            for uniform in {anchor.key: anchor, **{
                s.key: s for s in assigned.values()
            }}.values()
        }
        anchor_report = reports[anchor.key]
        layers = []
        for index, anchor_layer in enumerate(anchor_report.layers):
            source = reports[assigned.get(anchor_layer.name, anchor).key]
            layers.append(source.layers[index])
        total_cycles = sum(layer.cycles for layer in layers)
        energy_uj = sum(layer.energy_uj for layer in layers)
        runtime_s = total_cycles * self.tech.clock_period_s
        return EnergyReport(
            network_name=network.name,
            precision_label=spec.label,
            total_cycles=total_cycles,
            runtime_us=runtime_s * 1e6,
            power_mw=(energy_uj / (runtime_s * 1e6) * 1e3
                      if runtime_s > 0 else 0.0),
            energy_uj=energy_uj,
            layers=tuple(layers),
        )

    def simulate(
        self,
        network: Sequential,
        input_shape: tuple,
        spec: PrecisionSpec,
        sim_config=None,
    ):
        """Cycle-level counterpart of :meth:`evaluate`.

        Runs the event-driven simulator (:mod:`repro.hw.sim`) on the
        same accelerator/schedule this model prices analytically and
        returns its :class:`repro.hw.sim.SimReport` — which carries the
        analytical cycles/energy alongside the simulated ones, so the
        cross-validation gap is one attribute away
        (``report.energy_gap_pct``).
        """
        from repro.hw.sim import SimConfig, TileSimulator

        accelerator = self.accelerator_for(spec)
        schedule = TileScheduler(accelerator).schedule(network, input_shape)
        return TileSimulator(
            accelerator, schedule, sim_config or SimConfig()
        ).run()

    def evaluate_cached(
        self,
        network: Sequential,
        input_shape: tuple,
        spec: PrecisionSpec,
    ) -> EnergyReport:
        """Memoized :meth:`evaluate`, keyed by (network name, shape, spec).

        The schedule depends only on layer shapes, so two networks with
        the same name and input shape are assumed architecturally
        identical — true for the registry networks this cache serves.
        The serving engine calls this once per request batch; scheduling
        a network costs far more than an inference, so the cache is what
        makes per-request energy accounting affordable.
        """
        key = (network.name, tuple(input_shape), spec.key)
        if key not in self._reports:
            self._reports[key] = self.evaluate(network, input_shape, spec)
        return self._reports[key]
