"""Datapath component models for the NFU.

Each component reports its combinational area; power is derived from
area by the technology's logic power density.  The weight-block (WB)
variants mirror Figure 2(a-c) of the paper: multiplier blocks for
float/fixed point, barrel shifters for powers of two, and a
sign-negation block for binary weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.precision import PrecisionKind, PrecisionSpec
from repro.errors import HardwareModelError
from repro.hw.tech import TechnologyLibrary


@dataclass(frozen=True)
class AreaPower:
    """Area (mm^2) / power (mW) pair, addable across components."""

    area_mm2: float
    power_mw: float

    def __add__(self, other: "AreaPower") -> "AreaPower":
        return AreaPower(self.area_mm2 + other.area_mm2, self.power_mw + other.power_mw)

    def scaled(self, factor: float) -> "AreaPower":
        return AreaPower(self.area_mm2 * factor, self.power_mw * factor)


def _logic(tech: TechnologyLibrary, area: float) -> AreaPower:
    return AreaPower(area, tech.logic_power(area))


# ----------------------------------------------------------------------
# Weight blocks (NFU stage 1), Figure 2 (a)-(c)
# ----------------------------------------------------------------------
class WeightBlock:
    """One per-synapse stage-1 unit; the accelerator instantiates
    ``neurons x synapses`` of these."""

    #: accumulator width the downstream adder tree must carry
    accumulator_bits: int = 32

    def __init__(self, weight_bits: int, input_bits: int):
        if weight_bits < 1 or input_bits < 1:
            raise HardwareModelError("bit widths must be >= 1")
        self.weight_bits = weight_bits
        self.input_bits = input_bits

    def unit_cost(self, tech: TechnologyLibrary) -> AreaPower:
        raise NotImplementedError


class FixedPointWeightBlock(WeightBlock):
    """Array multiplier, area ~ w x i (Figure 2 (a), fixed point)."""

    def __init__(self, weight_bits: int, input_bits: int):
        super().__init__(weight_bits, input_bits)
        # full product + headroom for the 16-input accumulation tree
        self.accumulator_bits = weight_bits + input_bits + 8

    def unit_cost(self, tech: TechnologyLibrary) -> AreaPower:
        area = tech.mult_area_per_bit2 * self.weight_bits * self.input_bits
        return _logic(tech, area)


class FloatingPointWeightBlock(WeightBlock):
    """IEEE-754 single-precision multiplier (Figure 2 (a), float).

    Modelled as a 24x24 mantissa array multiplier plus the exponent /
    normalization / rounding overhead of a full FP32 unit.
    """

    MANTISSA_BITS = 24

    def __init__(self, weight_bits: int = 32, input_bits: int = 32):
        super().__init__(weight_bits, input_bits)
        self.accumulator_bits = 32

    def unit_cost(self, tech: TechnologyLibrary) -> AreaPower:
        area = (
            tech.mult_area_per_bit2 * self.MANTISSA_BITS * self.MANTISSA_BITS
            + tech.fp_mult_extra_area
        )
        return _logic(tech, area)


class Pow2WeightBlock(WeightBlock):
    """Barrel shifter + conditional negate (Figure 2 (b)).

    A ``w``-bit power-of-two weight encodes sign + (w-1) exponent bits,
    so the shifter needs ``w - 1`` mux stages over the input word.
    """

    def __init__(self, weight_bits: int, input_bits: int):
        super().__init__(weight_bits, input_bits)
        self.accumulator_bits = input_bits + 16

    def unit_cost(self, tech: TechnologyLibrary) -> AreaPower:
        stages = max(self.weight_bits - 1, 1)
        area = tech.shifter_area_per_bit_stage * self.input_bits * stages
        return _logic(tech, area)


class BinaryWeightBlock(WeightBlock):
    """Conditional two's-complement negate (Figure 2 (c)).

    The weight bit selects ``+in`` or ``-in``; no multiplier at all.
    """

    def __init__(self, weight_bits: int = 1, input_bits: int = 16):
        super().__init__(weight_bits, input_bits)
        self.accumulator_bits = input_bits + 8

    def unit_cost(self, tech: TechnologyLibrary) -> AreaPower:
        area = tech.negate_area_per_bit * self.input_bits
        return _logic(tech, area)


def make_weight_block(spec: PrecisionSpec) -> WeightBlock:
    """WB variant for a precision spec (Figure 2 dispatch)."""
    if spec.kind is PrecisionKind.FLOAT:
        return FloatingPointWeightBlock(spec.weight_bits, spec.input_bits)
    if spec.kind is PrecisionKind.FIXED:
        return FixedPointWeightBlock(spec.weight_bits, spec.input_bits)
    if spec.kind is PrecisionKind.POW2:
        return Pow2WeightBlock(spec.weight_bits, spec.input_bits)
    if spec.kind is PrecisionKind.BINARY:
        return BinaryWeightBlock(spec.weight_bits, spec.input_bits)
    raise HardwareModelError(f"no weight block for kind {spec.kind}")


# ----------------------------------------------------------------------
# NFU stage 2: adder tree
# ----------------------------------------------------------------------
class AdderTree:
    """Reduction tree summing ``fan_in`` stage-1 outputs per neuron."""

    def __init__(self, fan_in: int, operand_bits: int, floating_point: bool = False):
        if fan_in < 2:
            raise HardwareModelError("adder tree needs fan_in >= 2")
        self.fan_in = fan_in
        self.operand_bits = operand_bits
        self.floating_point = floating_point

    @property
    def adder_count(self) -> int:
        """A fan_in-to-1 reduction takes fan_in - 1 two-input adders."""
        return self.fan_in - 1

    def cost(self, tech: TechnologyLibrary) -> AreaPower:
        per_adder = tech.adder_area_per_bit * self.operand_bits
        if self.floating_point:
            per_adder += tech.fp_add_extra_area
        return _logic(tech, per_adder * self.adder_count)


# ----------------------------------------------------------------------
# NFU stage 3: nonlinearity
# ----------------------------------------------------------------------
class NonlinearityUnit:
    """Piecewise-linear activation unit, one per neuron."""

    def __init__(self, operand_bits: int):
        if operand_bits < 1:
            raise HardwareModelError("operand_bits must be >= 1")
        self.operand_bits = operand_bits

    def cost(self, tech: TechnologyLibrary) -> AreaPower:
        # comparable to one adder of the accumulator width
        return _logic(tech, tech.adder_area_per_bit * self.operand_bits)


# ----------------------------------------------------------------------
# Sequential elements
# ----------------------------------------------------------------------
class PipelineRegisters:
    """All pipeline/staging flip-flops in the NFU datapath."""

    def __init__(self, total_bits: int):
        if total_bits < 0:
            raise HardwareModelError("total_bits must be >= 0")
        self.total_bits = total_bits

    def cost(self, tech: TechnologyLibrary) -> AreaPower:
        return _logic(tech, tech.register_area_per_bit * self.total_bits)
