"""Tile accelerator assembly (Figure 2 of the paper).

Combines the three SRAM buffer subsystems (Bin, Bout, SB), the
three-stage NFU and control/buffer-tree overhead into one design whose
area, power and Figure-3 breakdown can be queried per precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.precision import PrecisionSpec, get_precision
from repro.errors import ConfigError
from repro.hw.components import AreaPower
from repro.hw.nfu import NeuralFunctionalUnit, NfuGeometry
from repro.hw.sram import SramBuffer
from repro.hw.tech import TECH_65NM, TechnologyLibrary


@dataclass(frozen=True)
class AcceleratorConfig:
    """Microarchitecture parameters (defaults reproduce the paper).

    Buffer capacities are in *words* (values); word width then scales
    with the precision under evaluation, which is exactly how the paper
    resizes the design ("the size of all buffers and the control logic
    are modified according to the precision").
    """

    neurons: int = 16
    synapses: int = 16
    input_buffer_words: int = 4096
    output_buffer_words: int = 4096
    weight_buffer_words: int = 65536
    #: fraction of peak throughput sustained on real layers (dataflow
    #: stalls, edge tiles); calibrated against the paper's per-image
    #: energies for LeNet / ConvNet / ALEX at full precision.
    dataflow_efficiency: float = 0.81
    #: fixed per-layer startup (buffer priming + pipeline fill), cycles
    layer_startup_cycles: int = 64

    def __post_init__(self) -> None:
        for field in ("neurons", "synapses"):
            if getattr(self, field) < 1:
                raise ConfigError(field, "tile dimension must be >= 1")
        for field in ("input_buffer_words", "output_buffer_words",
                      "weight_buffer_words"):
            if getattr(self, field) < 1:
                raise ConfigError(field, "buffer capacity must be >= 1 word")
        if not 0.0 < self.dataflow_efficiency <= 1.0:
            raise ConfigError("dataflow_efficiency", "must be in (0, 1]")
        if self.layer_startup_cycles < 0:
            raise ConfigError("layer_startup_cycles", "must be >= 0")


class Accelerator:
    """One synthesized design point: a tile at a given precision."""

    def __init__(
        self,
        spec: PrecisionSpec,
        config: AcceleratorConfig = AcceleratorConfig(),
        tech: TechnologyLibrary = TECH_65NM,
    ):
        self.spec = spec
        self.config = config
        self.tech = tech
        geometry = NfuGeometry(neurons=config.neurons, synapses=config.synapses)
        self.nfu = NeuralFunctionalUnit(spec, geometry=geometry, tech=tech)

        self.input_buffer = SramBuffer(
            name="Bin",
            words=config.input_buffer_words,
            bits_per_word=spec.input_bits,
            bits_per_cycle=config.synapses * spec.input_bits,
        )
        self.output_buffer = SramBuffer(
            name="Bout",
            words=config.output_buffer_words,
            bits_per_word=spec.input_bits,
            bits_per_cycle=config.neurons * spec.input_bits,
        )
        self.weight_buffer = SramBuffer(
            name="SB",
            words=config.weight_buffer_words,
            bits_per_word=spec.weight_bits,
            bits_per_cycle=geometry.macs_per_cycle * spec.weight_bits,
        )
        self.buffers = [self.input_buffer, self.output_buffer, self.weight_buffer]

    # ------------------------------------------------------------------
    @classmethod
    def for_precision(cls, key: str, **kwargs) -> "Accelerator":
        """Convenience constructor from a precision key (``"fixed8"``...)."""
        return cls(get_precision(key), **kwargs)

    @property
    def macs_per_cycle(self) -> int:
        return self.config.neurons * self.config.synapses

    # ------------------------------------------------------------------
    # Cost roll-ups
    # ------------------------------------------------------------------
    def memory_cost(self) -> AreaPower:
        return AreaPower(
            sum(b.area_mm2(self.tech) for b in self.buffers),
            sum(b.power_mw(self.tech) for b in self.buffers),
        )

    def control_cost(self) -> AreaPower:
        area = self.tech.control_area
        return AreaPower(area, self.tech.logic_power(area))

    def combinational_cost(self) -> AreaPower:
        return self.nfu.combinational_cost() + self.control_cost()

    def register_cost(self) -> AreaPower:
        return self.nfu.register_cost()

    def bufinv_cost(self) -> AreaPower:
        """Clock-tree / buffer-inverter network, a share of the logic."""
        logic = self.combinational_cost() + self.register_cost()
        area = self.tech.bufinv_fraction * logic.area_mm2
        return AreaPower(area, self.tech.logic_power(area))

    def total_cost(self) -> AreaPower:
        return (
            self.memory_cost()
            + self.combinational_cost()
            + self.register_cost()
            + self.bufinv_cost()
        )

    @property
    def idle_power_mw(self) -> float:
        """Power while the NFU is stalled: SRAM leakage plus the
        registers and clock tree, which keep toggling; the NFU's
        combinational logic and the buffer access ports do not switch.
        The cycle-level simulator charges this during stall cycles."""
        leakage = sum(b.leakage_mw(self.tech) for b in self.buffers)
        return (
            leakage
            + self.register_cost().power_mw
            + self.bufinv_cost().power_mw
        )

    @property
    def area_mm2(self) -> float:
        return self.total_cost().area_mm2

    @property
    def power_mw(self) -> float:
        return self.total_cost().power_mw

    def breakdown(self) -> Dict[str, AreaPower]:
        """The four Figure-3 categories."""
        return {
            "memory": self.memory_cost(),
            "registers": self.register_cost(),
            "combinational": self.combinational_cost(),
            "buf_inv": self.bufinv_cost(),
        }

    def memory_fraction(self) -> Dict[str, float]:
        """Buffer share of total area and power (Section V-B claim)."""
        total = self.total_cost()
        memory = self.memory_cost()
        return {
            "area": memory.area_mm2 / total.area_mm2,
            "power": memory.power_mw / total.power_mw,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Accelerator({self.spec.label}, {self.area_mm2:.2f} mm^2)"
