"""Analytical model of the paper's DianNao-style tile accelerator.

The paper synthesizes a 16-neuron x 16-synapse accelerator (Figure 2)
with Synopsys Design Compiler on a 65 nm library at 250 MHz and reports
area, power and per-image energy for each precision (Tables III-V,
Figure 3).  This package reproduces that flow analytically:

``tech``
    The 65 nm component library: per-bit SRAM area, logic power
    density, array-multiplier / FP-unit / adder / shifter area
    coefficients.  Constants are calibrated against Table III (see the
    module docstring for the calibration protocol and residuals).
``sram``
    Buffer subsystem model (Bin / Bout / SB of Figure 2).
``components`` / ``nfu``
    The three-stage neural functional unit with the per-precision
    weight-block variants of Figure 2(a-c): multipliers for
    fixed/float, barrel shifters for powers of two, sign-negation for
    binary — plus the merged two-stage pipeline for binary nets.
``accelerator``
    Assembles buffers + NFU + control into a synthesizable-design
    model reporting totals and the Figure 3 breakdown.
``scheduler`` / ``energy``
    Maps a :class:`repro.nn.Sequential` onto the tile, counts cycles,
    and produces per-image energy (the Table IV/V energy columns).
``memory_footprint``
    Parameter / feature-map storage accounting (Section V-B).
``sim``
    Event-driven cycle-level simulator of the same tile: DMA events,
    double-buffered Bin/SB occupancy, NFU issue, per-event energy —
    cross-validated against the analytical model within 5 % and
    bitwise deterministic (``docs/hw_sim.md``).
"""

from repro.hw.tech import TECH_65NM, TechnologyLibrary
from repro.hw.sram import SramBuffer
from repro.hw.components import (
    AdderTree,
    AreaPower,
    BinaryWeightBlock,
    FixedPointWeightBlock,
    FloatingPointWeightBlock,
    NonlinearityUnit,
    PipelineRegisters,
    Pow2WeightBlock,
    make_weight_block,
)
from repro.hw.nfu import NeuralFunctionalUnit
from repro.hw.accelerator import Accelerator, AcceleratorConfig
from repro.hw.scheduler import LayerWork, Schedule, TileScheduler
from repro.hw.energy import EnergyModel, EnergyReport, LayerEnergy
from repro.hw.bandwidth import LayerTraffic, TrafficReport, traffic_report
from repro.hw.design_space import (
    DesignCandidate,
    evaluate_design,
    explore_design_space,
    throughput_pareto,
)
from repro.hw.memory_footprint import MemoryFootprint, network_memory_footprint
from repro.hw.report import area_power_breakdown, design_metrics_table, synthesis_report
from repro.hw.sim import SimConfig, SimReport, TileSimulator, simulate
from repro.hw.verilog import (
    generate_adder_tree,
    generate_nfu,
    generate_relu,
    generate_weight_block,
)

__all__ = [
    "TechnologyLibrary",
    "TECH_65NM",
    "SramBuffer",
    "AreaPower",
    "FixedPointWeightBlock",
    "FloatingPointWeightBlock",
    "Pow2WeightBlock",
    "BinaryWeightBlock",
    "make_weight_block",
    "AdderTree",
    "NonlinearityUnit",
    "PipelineRegisters",
    "NeuralFunctionalUnit",
    "Accelerator",
    "AcceleratorConfig",
    "TileScheduler",
    "LayerWork",
    "Schedule",
    "EnergyModel",
    "EnergyReport",
    "LayerEnergy",
    "LayerTraffic",
    "TrafficReport",
    "traffic_report",
    "DesignCandidate",
    "evaluate_design",
    "explore_design_space",
    "throughput_pareto",
    "MemoryFootprint",
    "network_memory_footprint",
    "area_power_breakdown",
    "design_metrics_table",
    "synthesis_report",
    "SimConfig",
    "SimReport",
    "TileSimulator",
    "simulate",
    "generate_weight_block",
    "generate_adder_tree",
    "generate_relu",
    "generate_nfu",
]
