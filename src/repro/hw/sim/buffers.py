"""Double-buffered on-chip buffer occupancy model.

Each of Bin and SB is split into two banks: while the NFU consumes one
bank, the DMA fills the other ("to support double buffering, each
buffer is split in half").  The model tracks which chunk occupies which
bank and how many bits, enforces the fill/consume protocol, and records
peak occupancy for the report.  Capacity violations raise
:class:`repro.errors.SimulationError` — the layer compiler sizes chunks
so they never trigger on a well-formed program.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SimulationError

#: bank states
_EMPTY, _FILLING, _READY, _DRAINING = "empty", "filling", "ready", "draining"


class DoubleBuffer:
    """Two-bank ping/pong buffer with explicit state transitions."""

    def __init__(self, name: str, words: int, bits_per_word: int):
        self.name = name
        self.bank_bits = (words // 2) * bits_per_word
        self._state: List[str] = [_EMPTY, _EMPTY]
        self._chunk: List[Optional[int]] = [None, None]
        self._bits: List[int] = [0, 0]
        self.peak_occupancy_bits = 0
        self.fills = 0

    def bank_for(self, chunk_index: int) -> int:
        return chunk_index % 2

    def begin_fill(self, chunk_index: int, bits: int) -> int:
        """DMA starts loading ``chunk_index``; returns the bank used."""
        bank = self.bank_for(chunk_index)
        if self._state[bank] not in (_EMPTY,):
            raise SimulationError(
                f"{self.name}: bank {bank} is {self._state[bank]}, "
                f"cannot fill chunk {chunk_index}"
            )
        if bits > self.bank_bits:
            raise SimulationError(
                f"{self.name}: chunk {chunk_index} needs {bits} bits but a "
                f"bank holds {self.bank_bits}"
            )
        self._state[bank] = _FILLING
        self._chunk[bank] = chunk_index
        self._bits[bank] = bits
        self.fills += 1
        self.peak_occupancy_bits = max(
            self.peak_occupancy_bits, sum(self._bits)
        )
        return bank

    def finish_fill(self, chunk_index: int) -> None:
        bank = self.bank_for(chunk_index)
        if self._state[bank] != _FILLING or self._chunk[bank] != chunk_index:
            raise SimulationError(
                f"{self.name}: bank {bank} not filling chunk {chunk_index}"
            )
        self._state[bank] = _READY

    def is_ready(self, chunk_index: int) -> bool:
        bank = self.bank_for(chunk_index)
        return self._state[bank] == _READY and self._chunk[bank] == chunk_index

    def consume(self, chunk_index: int) -> None:
        """The NFU finished with ``chunk_index``; free its bank."""
        bank = self.bank_for(chunk_index)
        if self._state[bank] != _READY or self._chunk[bank] != chunk_index:
            raise SimulationError(
                f"{self.name}: bank {bank} does not hold ready chunk "
                f"{chunk_index}"
            )
        self._state[bank] = _EMPTY
        self._chunk[bank] = None
        self._bits[bank] = 0

    def reset(self) -> None:
        """Between layers: both banks reclaimed."""
        self._state = [_EMPTY, _EMPTY]
        self._chunk = [None, None]
        self._bits = [0, 0]
