"""Event-driven execution of a compiled layer program on the tile.

The :class:`TileSimulator` walks the network layer by layer the way the
DianNao-style tile does: a fixed startup window primes the buffers and
fills the NFU pipeline, then double-buffered chunks stream — the DMA
loads chunk ``i+1`` into the idle banks of Bin/SB while the NFU
computes chunk ``i``, and Bout write-back drains behind the compute.
Every state change is an event on the deterministic queue, so the full
trace (and its digest) is reproducible bit-for-bit.

Cycle attribution per layer:

* ``busy``           — cycles the NFU issues MACs (``ceil(macs/256)``
  per chunk);
* ``dataflow``       — edge-tile / dataflow bubbles, the explicit form
  of the calibrated ``dataflow_efficiency`` derate.  The datapath and
  buffers keep clocking through these, so they charge *streaming*
  power — exactly as the analytical model prices them;
* ``startup`` / ``pipeline_fill`` / ``dma_wait`` / ``drain`` — coarse
  stalls where the NFU sits idle; these charge
  :attr:`repro.hw.Accelerator.idle_power_mw`, the simulator's
  refinement over the analytical flat rate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.hw.accelerator import Accelerator
from repro.hw.scheduler import Schedule, TileScheduler
from repro.hw.sim.buffers import DoubleBuffer
from repro.hw.sim.compile import LayerProgram, compile_schedule
from repro.hw.sim.dma import DmaEngine
from repro.hw.sim.energy import EnergyAccountant
from repro.hw.sim.engine import Event, SimConfig, SimEngine
from repro.hw.sim.report import (
    STALL_CAUSES,
    RooflinePoint,
    SimLayer,
    SimReport,
)


class _LayerState:
    """Mutable bookkeeping for the layer currently on the tile."""

    def __init__(self, program: LayerProgram, start_time: int):
        self.program = program
        self.start_time = start_time
        # compute may begin once buffers are primed and the pipeline full
        self.ready_time = (
            start_time + program.startup_cycles + program.fill_cycles
        )
        self.earliest_next = self.ready_time
        self.next_compute = 0
        self.compute_busy = False
        self.wakeup_posted = False
        self.out_completion = start_time
        self.busy = 0
        self.dataflow = 0
        self.dma_wait = 0
        self.drain = 0


class TileSimulator:
    """Simulates one network at one precision on one accelerator."""

    def __init__(
        self,
        accelerator: Accelerator,
        schedule: Schedule,
        sim_config: SimConfig = SimConfig(),
    ):
        self.accelerator = accelerator
        self.schedule = schedule
        self.sim_config = sim_config
        self.programs = compile_schedule(schedule, accelerator)
        bits_per_cycle = sim_config.dma_bits_per_cycle(
            accelerator.tech.clock_hz
        )
        self.dma_in = DmaEngine("dma.in", bits_per_cycle)
        self.dma_out = DmaEngine("dma.out", bits_per_cycle)
        config = accelerator.config
        self.bin_buffer = DoubleBuffer(
            "Bin", config.input_buffer_words, accelerator.spec.input_bits
        )
        self.sb_buffer = DoubleBuffer(
            "SB", config.weight_buffer_words, accelerator.spec.weight_bits
        )
        self._report: Optional[SimReport] = None

    # ------------------------------------------------------------------
    def run(self) -> SimReport:
        """Execute the program; idempotent (the report is cached)."""
        if self._report is not None:
            return self._report

        from repro import obs

        tracer = obs.get_tracer()
        metrics = obs.get_metrics()
        engine = SimEngine(max_events=self.sim_config.max_events)
        accountant = EnergyAccountant(self.accelerator)
        self._engine = engine
        self._accountant = accountant
        self._layer_index = 0
        self._state: Optional[_LayerState] = None
        self._layers: List[SimLayer] = []

        with tracer.span(
            "sim.run",
            network=self.schedule.network_name,
            precision=self.accelerator.spec.key,
        ):
            engine.post(0, "layer.start", self.programs[0].name)
            engine.run(self._handle)

        total_cycles = engine.now
        if self._layer_index != len(self.programs):  # pragma: no cover
            raise SimulationError("simulation ended with layers pending")

        stalls = {cause: 0 for cause in STALL_CAUSES}
        for layer in self._layers:
            for cause, cycles in layer.stalls.items():
                stalls[cause] += cycles
        busy_cycles = sum(layer.busy_cycles for layer in self._layers)

        metrics.counter("sim.runs").inc()
        metrics.counter("sim.events").inc(engine.events_processed)
        metrics.counter("sim.cycles").inc(total_cycles)
        for cause, cycles in stalls.items():
            metrics.counter(f"sim.stall.{cause}").inc(cycles)
        for layer in self._layers:
            metrics.histogram("sim.layer_stall_cycles").observe(
                layer.stall_cycles
            )
            metrics.histogram("sim.layer_utilization").observe(
                layer.utilization
            )

        self._report = self._build_report(
            engine, accountant, total_cycles, busy_cycles, stalls
        )
        return self._report

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _handle(self, engine: SimEngine, event: Event) -> None:
        if event.kind == "layer.start":
            self._on_layer_start(engine)
        elif event.kind == "dma.in.done":
            self._on_dma_in_done(engine, event)
        elif event.kind == "nfu.wakeup":
            self._try_start_compute(engine)
        elif event.kind == "nfu.done":
            self._on_nfu_done(engine, event)
        elif event.kind == "dma.out.done":
            pass  # accounted when issued; kept for the trace
        elif event.kind == "layer.done":
            self._on_layer_done(engine)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _on_layer_start(self, engine: SimEngine) -> None:
        program = self.programs[self._layer_index]
        self.bin_buffer.reset()
        self.sb_buffer.reset()
        self._state = _LayerState(program, engine.now)
        self._issue_load(engine, 0)

    def _issue_load(self, engine: SimEngine, chunk_index: int) -> None:
        program = self._state.program
        if chunk_index >= len(program.chunks):
            return
        chunk = program.chunks[chunk_index]
        self.bin_buffer.begin_fill(chunk_index, chunk.input_bits)
        self.sb_buffer.begin_fill(chunk_index, chunk.weight_bits)
        completion = self.dma_in.issue(engine.now, chunk.load_bits)
        engine.post(
            completion - engine.now,
            "dma.in.done",
            f"{program.name}#{chunk_index}",
            detail=f"bits={chunk.load_bits}",
        )

    def _on_dma_in_done(self, engine: SimEngine, event: Event) -> None:
        chunk_index = int(event.subject.rsplit("#", 1)[1])
        self.bin_buffer.finish_fill(chunk_index)
        self.sb_buffer.finish_fill(chunk_index)
        self._try_start_compute(engine)

    def _try_start_compute(self, engine: SimEngine) -> None:
        state = self._state
        program = state.program
        index = state.next_compute
        if state.compute_busy or index >= len(program.chunks):
            return
        if not (self.bin_buffer.is_ready(index)
                and self.sb_buffer.is_ready(index)):
            return
        if engine.now < state.earliest_next:
            # data arrived early; the NFU is still starting up or
            # finishing the previous chunk — wake up when it frees
            if not state.wakeup_posted:
                state.wakeup_posted = True
                engine.post(
                    state.earliest_next - engine.now,
                    "nfu.wakeup",
                    f"{program.name}#{index}",
                )
            return
        state.wakeup_posted = False
        chunk = program.chunks[index]
        state.dma_wait += engine.now - state.earliest_next
        state.busy += chunk.ideal_cycles
        state.dataflow += chunk.dataflow_stall
        state.compute_busy = True
        # edge-tile bubbles keep the datapath streaming: busy power
        self._accountant.charge_busy(chunk.compute_cycles)
        engine.post(
            chunk.compute_cycles,
            "nfu.done",
            f"{program.name}#{index}",
            detail=f"macs={chunk.macs}",
        )
        # double buffering: the bank the previous chunk vacated is
        # free the moment this chunk starts computing
        self._issue_load(engine, index + 1)

    def _on_nfu_done(self, engine: SimEngine, event: Event) -> None:
        state = self._state
        program = state.program
        index = state.next_compute
        self.bin_buffer.consume(index)
        self.sb_buffer.consume(index)
        state.compute_busy = False
        state.earliest_next = engine.now
        chunk = program.chunks[index]
        if self.sim_config.drain_outputs:
            completion = self.dma_out.issue(engine.now, chunk.output_bits)
            engine.post(
                completion - engine.now,
                "dma.out.done",
                f"{program.name}#{index}",
                detail=f"bits={chunk.output_bits}",
            )
            state.out_completion = max(state.out_completion, completion)
        else:
            state.out_completion = max(state.out_completion, engine.now)
        state.next_compute += 1
        if state.next_compute < len(program.chunks):
            self._try_start_compute(engine)
        else:
            end = max(engine.now, state.out_completion)
            state.drain = end - engine.now
            engine.post(end - engine.now, "layer.done", program.name)

    def _on_layer_done(self, engine: SimEngine) -> None:
        state = self._state
        program = state.program
        coarse = (program.startup_cycles + program.fill_cycles
                  + state.dma_wait + state.drain)
        self._accountant.charge_stall(coarse)
        # busy slices were charged globally as the chunks issued; the
        # per-layer energy is re-derived from this layer's own cycles
        period = self.accelerator.tech.clock_period_s
        layer_energy = (
            (state.busy + state.dataflow) * period
            * self.accelerator.power_mw * 1e3
            + coarse * period * self.accelerator.idle_power_mw * 1e3
        )
        stalls = {
            "startup": program.startup_cycles,
            "pipeline_fill": program.fill_cycles,
            "dataflow": state.dataflow,
            "dma_wait": state.dma_wait,
            "drain": state.drain,
        }
        self._layers.append(
            SimLayer(
                name=program.name,
                kind=program.kind,
                macs=program.macs,
                cycles=engine.now - state.start_time,
                busy_cycles=state.busy,
                stalls=stalls,
                energy_uj=layer_energy,
                chunks=len(program.chunks),
            )
        )
        self._layer_index += 1
        self._state = None
        if self._layer_index < len(self.programs):
            engine.post(
                0, "layer.start", self.programs[self._layer_index].name
            )

    # ------------------------------------------------------------------
    def _build_report(
        self,
        engine: SimEngine,
        accountant: EnergyAccountant,
        total_cycles: int,
        busy_cycles: int,
        stalls: Dict[str, int],
    ) -> SimReport:
        accelerator = self.accelerator
        tech = accelerator.tech
        total_macs = self.schedule.total_macs

        dram_bits = sum(
            chunk.load_bits + chunk.output_bits
            for program in self.programs
            for chunk in program.chunks
        )
        dram_bytes = dram_bits / 8.0
        bits_per_cycle = self.sim_config.dma_bits_per_cycle(tech.clock_hz)
        intensity = total_macs / max(dram_bytes, 1e-12)
        roofline = RooflinePoint(
            arithmetic_intensity_macs_per_byte=intensity,
            achieved_macs_per_cycle=total_macs / max(total_cycles, 1),
            peak_macs_per_cycle=accelerator.macs_per_cycle,
            bandwidth_macs_per_cycle=(
                None if bits_per_cycle is None
                else intensity * bits_per_cycle / 8.0
            ),
        )

        analytical_cycles = self.schedule.total_cycles
        analytical_energy_uj = (
            analytical_cycles * tech.clock_period_s
            * accelerator.power_mw * 1e3
        )
        utilization = max(
            0.0,
            min(1.0, total_macs
                / (accelerator.macs_per_cycle * max(total_cycles, 1))),
        )
        return SimReport(
            network_name=self.schedule.network_name,
            precision_key=accelerator.spec.key,
            precision_label=accelerator.spec.label,
            clock_hz=tech.clock_hz,
            bandwidth_gbps=self.sim_config.bandwidth_gbps,
            total_cycles=total_cycles,
            busy_cycles=busy_cycles,
            stalls=stalls,
            utilization=utilization,
            energy_uj=accountant.energy_uj,
            energy_by_component_uj=accountant.component_energy_uj(),
            runtime_us=total_cycles / tech.clock_hz * 1e6,
            analytical_cycles=analytical_cycles,
            analytical_energy_uj=analytical_energy_uj,
            roofline=roofline,
            events_processed=engine.events_processed,
            trace_digest=engine.trace_digest(),
            layers=tuple(self._layers),
        )


def simulate(
    network,
    input_shape: tuple,
    accelerator: Accelerator,
    sim_config: SimConfig = SimConfig(),
) -> SimReport:
    """One-call convenience: schedule ``network`` and simulate it."""
    schedule = TileScheduler(accelerator).schedule(network, input_shape)
    return TileSimulator(accelerator, schedule, sim_config).run()
