"""Per-event energy accounting.

Reuses the calibrated :mod:`repro.hw.tech` component costs through the
accelerator's own cost roll-ups — no new coefficients.  Each simulated
cycle is charged one of two powers:

* **busy** — the NFU is streaming: full accelerator power, identical to
  what the analytical model charges for every cycle (buffers at their
  streaming rate, combinational logic switching, registers and clock
  tree toggling).
* **stalled** — startup, pipeline fill, DMA waits, drain: only SRAM
  leakage, pipeline registers and the clock tree
  (:attr:`repro.hw.Accelerator.idle_power_mw`).

The analytical model charges busy power for all cycles, so the
simulator's refinement is strictly ``<=`` it; on the paper's workloads
stalls are a low-single-digit share of cycles, which is what keeps
cross-validation inside the documented 5 % tolerance.
"""

from __future__ import annotations

from typing import Dict

from repro.hw.accelerator import Accelerator


class EnergyAccountant:
    """Integrates energy over busy/stall cycle slices for one design."""

    def __init__(self, accelerator: Accelerator):
        self.accelerator = accelerator
        self.busy_power_mw = accelerator.power_mw
        self.idle_power_mw = accelerator.idle_power_mw
        self._period_s = accelerator.tech.clock_period_s
        self.busy_cycles = 0
        self.stall_cycles = 0

    def charge_busy(self, cycles: int) -> float:
        """Account ``cycles`` of streaming compute; returns uJ added."""
        self.busy_cycles += cycles
        return self._uj(cycles, self.busy_power_mw)

    def charge_stall(self, cycles: int) -> float:
        """Account ``cycles`` of stall; returns uJ added."""
        self.stall_cycles += cycles
        return self._uj(cycles, self.idle_power_mw)

    def _uj(self, cycles: int, power_mw: float) -> float:
        # mW * 1e-3 -> W; * s -> J; * 1e6 -> uJ
        return cycles * self._period_s * power_mw * 1e3

    @property
    def energy_uj(self) -> float:
        return (
            self._uj(self.busy_cycles, self.busy_power_mw)
            + self._uj(self.stall_cycles, self.idle_power_mw)
        )

    def component_energy_uj(self) -> Dict[str, float]:
        """Figure-3-style attribution of the accounted energy.

        Busy cycles split across the four breakdown categories by their
        power share; stall cycles across leakage / registers / clock
        tree.  Sums to :attr:`energy_uj` by construction.
        """
        breakdown = self.accelerator.breakdown()
        tech = self.accelerator.tech
        out = {key: 0.0 for key in
               ("memory", "registers", "combinational", "buf_inv")}
        for key in out:
            out[key] += self._uj(self.busy_cycles, breakdown[key].power_mw)
        leakage = sum(
            b.leakage_mw(tech) for b in self.accelerator.buffers
        )
        out["memory"] += self._uj(self.stall_cycles, leakage)
        out["registers"] += self._uj(
            self.stall_cycles, breakdown["registers"].power_mw
        )
        out["buf_inv"] += self._uj(
            self.stall_cycles, breakdown["buf_inv"].power_mw
        )
        return out
