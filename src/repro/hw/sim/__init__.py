"""Event-driven, cycle-level simulator of the DianNao-style tile.

Where :mod:`repro.hw` prices the accelerator *analytically* (cycles =
MACs / throughput / efficiency; energy = power x runtime), this
subpackage *executes* the schedule: a deterministic event queue walks
DMA transfers, double-buffered Bin/SB occupancy, NFU pipeline issue and
Bout write-back, attributing every cycle to a cause and every slice of
energy to the calibrated :mod:`repro.hw.tech` component costs.

Cross-validation is the contract: with the paper's operating assumption
(DMA bandwidth unconstrained, ``SimConfig.bandwidth_gbps=None``), the
simulated energy/image agrees with the analytical model within the
documented 5 % tolerance for every Table-III precision — asserted in
tier-1 tests.  A finite bandwidth then opens the axis the analytical
model cannot see: ``dma_wait`` stalls, utilization collapse, and the
roofline crossover — see ``repro simulate --sweep-bandwidth`` and
``docs/hw_sim.md``.

The simulator is bitwise deterministic: no wall-clock, no randomness,
total event ordering by (cycle, priority, sequence).  Two runs at any
``PYTHONHASHSEED`` produce identical event traces, witnessed by
``SimReport.trace_digest``.
"""

from repro.hw.sim.engine import Event, SimConfig, SimEngine
from repro.hw.sim.buffers import DoubleBuffer
from repro.hw.sim.dma import DmaEngine
from repro.hw.sim.compile import (
    LayerProgram,
    TileChunk,
    compile_layer,
    compile_schedule,
)
from repro.hw.sim.energy import EnergyAccountant
from repro.hw.sim.report import (
    STALL_CAUSES,
    RooflinePoint,
    SimLayer,
    SimReport,
)
from repro.hw.sim.tile import TileSimulator, simulate

__all__ = [
    "Event",
    "SimConfig",
    "SimEngine",
    "DoubleBuffer",
    "DmaEngine",
    "LayerProgram",
    "TileChunk",
    "compile_layer",
    "compile_schedule",
    "EnergyAccountant",
    "STALL_CAUSES",
    "RooflinePoint",
    "SimLayer",
    "SimReport",
    "TileSimulator",
    "simulate",
]
