"""Deterministic event queue and simulated clock.

The engine is the part of the simulator that must be boring: events
carry an integer firing cycle, an integer priority and a monotonically
increasing sequence number, and the heap orders on exactly that triple
— so two events at the same cycle always pop in the order they were
posted, on any host, at any ``PYTHONHASHSEED``.  Nothing here reads
wall-clock time or draws randomness; the trace of processed events is
therefore bitwise reproducible and its SHA-256 digest is the
simulator's determinism witness.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class SimConfig:
    """Knobs of one simulation run.

    Attributes:
        bandwidth_gbps: off-chip DMA bandwidth.  ``None`` reproduces
            the paper's operating assumption — transfers are fully
            hidden behind compute (zero-cycle DMA) — which is what the
            cross-validation against the analytical model uses.  A
            finite value makes DMA transfers take
            ``ceil(bits / (bandwidth / clock))`` cycles and exposes
            ``dma_wait`` stalls: the axis the analytical model cannot
            see.
        drain_outputs: model the Bout write-back DMA after each chunk
            (adds ``drain`` stalls when bandwidth-bound).
        max_events: hard event budget; exceeding it raises
            :class:`repro.errors.SimulationError` instead of spinning.
    """

    bandwidth_gbps: Optional[float] = None
    drain_outputs: bool = True
    max_events: int = 2_000_000

    def __post_init__(self) -> None:
        if self.bandwidth_gbps is not None and self.bandwidth_gbps <= 0:
            raise SimulationError("bandwidth_gbps must be positive or None")
        if self.max_events < 1:
            raise SimulationError("max_events must be >= 1")

    def dma_bits_per_cycle(self, clock_hz: float) -> Optional[float]:
        """DMA throughput in bits per tile clock cycle (None = hidden)."""
        if self.bandwidth_gbps is None:
            return None
        return self.bandwidth_gbps * 1e9 / clock_hz


@dataclass(frozen=True, order=True)
class Event:
    """One scheduled occurrence.

    Ordering is (time, priority, seq): seq is unique per engine, so
    the ordering is total and deterministic.
    """

    time: int
    priority: int
    seq: int
    kind: str = field(compare=False)
    subject: str = field(compare=False)
    detail: str = field(compare=False, default="")

    def trace_line(self) -> str:
        return f"{self.time}|{self.priority}|{self.seq}|{self.kind}|{self.subject}|{self.detail}"


class SimEngine:
    """Event loop over integer cycles.

    Usage: post events with :meth:`post`, then :meth:`run` with a
    handler that receives ``(engine, event)`` and may post more.
    """

    def __init__(self, max_events: int = 2_000_000):
        self.now: int = 0
        self.events_processed: int = 0
        self._seq: int = 0
        self._heap: List[Event] = []
        self._trace: List[str] = []
        self._max_events = max_events

    def post(self, delay: int, kind: str, subject: str,
             detail: str = "", priority: int = 0) -> Event:
        """Schedule an event ``delay`` cycles from now."""
        delay = int(delay)
        if delay < 0:
            raise SimulationError(
                f"event {kind}:{subject} scheduled {delay} cycles in the past"
            )
        event = Event(
            time=self.now + delay,
            priority=priority,
            seq=self._seq,
            kind=kind,
            subject=subject,
            detail=detail,
        )
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run(self, handler: Callable[["SimEngine", Event], None]) -> int:
        """Drain the queue; returns the final simulated cycle."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.time < self.now:
                raise SimulationError(
                    f"time ran backwards: {event.kind} at {event.time} "
                    f"after cycle {self.now}"
                )
            self.now = event.time
            self.events_processed += 1
            if self.events_processed > self._max_events:
                raise SimulationError(
                    f"event budget exhausted ({self._max_events}); "
                    "runaway simulation"
                )
            self._trace.append(event.trace_line())
            handler(self, event)
        return self.now

    @property
    def trace(self) -> Tuple[str, ...]:
        """Processed events in execution order (the determinism witness)."""
        return tuple(self._trace)

    def trace_digest(self) -> str:
        """SHA-256 over the processed-event trace."""
        digest = hashlib.sha256()
        for line in self._trace:
            digest.update(line.encode("ascii", "replace"))
            digest.update(b"\n")
        return digest.hexdigest()
