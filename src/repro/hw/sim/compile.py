"""Layer-to-event compiler.

Consumes the analytical :class:`repro.hw.Schedule` (the same
``TileScheduler.schedule()`` output the energy model prices) and lowers
each layer to a sequence of double-buffered *chunks*: the largest unit
of work whose inputs, weights and outputs all fit in one bank (half) of
the corresponding buffer.  The simulator then streams chunk ``i+1``
while computing chunk ``i``.

Chunk compute time uses the same calibrated dataflow efficiency as the
analytical model, but split into an *ideal* part
(``ceil(macs / 256)``) and an explicit ``dataflow`` stall (edge tiles,
dataflow bubbles) so the report can attribute cycles by cause.  Per
chunk the ceil rounds up at most once, so the simulated layer exceeds
the analytical cycle count by fewer than ``len(chunks)`` cycles — the
documented source of the (tiny) cross-validation gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.hw.accelerator import Accelerator
from repro.hw.scheduler import LayerWork, Schedule


@dataclass(frozen=True)
class TileChunk:
    """One double-buffered unit of work within a layer."""

    index: int
    macs: int
    ideal_cycles: int        # ceil(macs / peak MACs-per-cycle)
    dataflow_stall: int      # calibrated-efficiency bubbles, explicit
    input_bits: int          # Bin traffic for this chunk
    weight_bits: int         # SB traffic for this chunk
    output_bits: int         # Bout write-back for this chunk

    @property
    def compute_cycles(self) -> int:
        return self.ideal_cycles + self.dataflow_stall

    @property
    def load_bits(self) -> int:
        return self.input_bits + self.weight_bits


@dataclass(frozen=True)
class LayerProgram:
    """Event-compiler output for one compute layer."""

    name: str
    kind: str
    macs: int
    startup_cycles: int      # buffer priming (config.layer_startup_cycles)
    fill_cycles: int         # NFU pipeline depth (2 for binary, else 3)
    chunks: Tuple[TileChunk, ...]

    @property
    def compute_cycles(self) -> int:
        return sum(chunk.compute_cycles for chunk in self.chunks)


def _split(total: int, parts: int) -> List[int]:
    """Balanced integer split: parts differ by at most one, sum == total."""
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def _chunk_count(work: LayerWork, accelerator: Accelerator) -> int:
    """Chunks needed so every slice fits one double-buffered bank."""
    config = accelerator.config
    return max(
        1,
        math.ceil(work.input_values / (config.input_buffer_words // 2)),
        math.ceil(work.weights / (config.weight_buffer_words // 2)),
        math.ceil(work.output_values / (config.output_buffer_words // 2)),
    )


def compile_layer(work: LayerWork, accelerator: Accelerator) -> LayerProgram:
    """Lower one scheduled layer to its chunk program."""
    spec = accelerator.spec
    config = accelerator.config
    peak = accelerator.macs_per_cycle
    efficiency = config.dataflow_efficiency

    parts = _chunk_count(work, accelerator)
    macs = _split(work.macs, parts)
    inputs = _split(work.input_values, parts)
    weights = _split(work.weights, parts)
    outputs = _split(work.output_values, parts)

    chunks = []
    for index in range(parts):
        ideal = int(math.ceil(macs[index] / peak))
        scaled = int(math.ceil((macs[index] / peak) / efficiency))
        chunks.append(
            TileChunk(
                index=index,
                macs=macs[index],
                ideal_cycles=ideal,
                dataflow_stall=max(0, scaled - ideal),
                input_bits=inputs[index] * spec.input_bits,
                weight_bits=weights[index] * spec.weight_bits,
                output_bits=outputs[index] * spec.input_bits,
            )
        )
    return LayerProgram(
        name=work.name,
        kind=work.kind,
        macs=work.macs,
        startup_cycles=config.layer_startup_cycles,
        fill_cycles=accelerator.nfu.pipeline_depth,
        chunks=tuple(chunks),
    )


def compile_schedule(
    schedule: Schedule, accelerator: Accelerator
) -> Tuple[LayerProgram, ...]:
    """Lower a whole-network schedule to layer programs, in order."""
    return tuple(compile_layer(work, accelerator) for work in schedule.layers)
