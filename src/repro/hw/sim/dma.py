"""DMA channel model.

One channel serializes its transfers: a transfer issued while the
channel is busy queues behind the in-flight one.  Transfer duration is
``ceil(bits / bits_per_cycle)`` with the bits-per-cycle derived from
:class:`repro.hw.sim.engine.SimConfig.bandwidth_gbps`; ``None`` means
the paper's operating point — transfers fully hidden, zero cycles —
under which the simulator must agree with the analytical model.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.errors import SimulationError


class DmaEngine:
    """A single DMA channel with deterministic FIFO service."""

    def __init__(self, name: str, bits_per_cycle: Optional[float]):
        if bits_per_cycle is not None and bits_per_cycle <= 0:
            raise SimulationError(f"{name}: bits_per_cycle must be positive")
        self.name = name
        self.bits_per_cycle = bits_per_cycle
        self.busy_until: int = 0
        self.bits_moved: int = 0
        self.busy_cycles: int = 0
        self.transfers: int = 0

    def duration_cycles(self, bits: int) -> int:
        if bits < 0:
            raise SimulationError(f"{self.name}: negative transfer size")
        if self.bits_per_cycle is None:
            return 0
        return int(math.ceil(bits / self.bits_per_cycle))

    def issue(self, now: int, bits: int) -> int:
        """Enqueue a transfer at cycle ``now``; returns completion cycle.

        The channel services transfers in issue order, so the transfer
        starts at ``max(now, busy_until)``.
        """
        start = max(int(now), self.busy_until)
        duration = self.duration_cycles(bits)
        self.busy_until = start + duration
        self.bits_moved += bits
        self.busy_cycles += duration
        self.transfers += 1
        return self.busy_until
