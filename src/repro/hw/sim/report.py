"""Simulation results: per-layer stats, stall breakdown, roofline.

A :class:`SimReport` is the simulator's one output object.  It carries
the cycle/energy totals, the stall breakdown by cause, the roofline
point, the analytical cross-validation gap, and the event-trace digest
that witnesses determinism.  ``format()`` renders the human table used
by ``repro simulate``; ``as_dict()`` feeds ``--json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: every stall cause the simulator can attribute, in display order
STALL_CAUSES: Tuple[str, ...] = (
    "startup", "pipeline_fill", "dataflow", "dma_wait", "drain",
)


@dataclass(frozen=True)
class SimLayer:
    """Simulated execution of one compute layer."""

    name: str
    kind: str
    macs: int
    cycles: int              # end - start, includes every stall
    busy_cycles: int         # NFU streaming
    stalls: Dict[str, int]   # cause -> cycles (keys = STALL_CAUSES)
    energy_uj: float
    chunks: int

    @property
    def stall_cycles(self) -> int:
        return sum(self.stalls.values())

    @property
    def utilization(self) -> float:
        """MACs issued over peak MACs issuable in the layer's window."""
        if self.cycles <= 0 or self.busy_cycles <= 0:
            return 0.0
        # peak per cycle = macs / ideal busy cycles; utilization is the
        # achieved fraction over the whole window, clamped like
        # LayerWork.utilization
        return max(0.0, min(1.0, self.busy_cycles / self.cycles))

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "macs": self.macs,
            "cycles": self.cycles,
            "busy_cycles": self.busy_cycles,
            "stalls": dict(self.stalls),
            "energy_uj": self.energy_uj,
            "utilization": self.utilization,
            "chunks": self.chunks,
        }


@dataclass(frozen=True)
class RooflinePoint:
    """Where the run sits on the naive roofline for this design."""

    arithmetic_intensity_macs_per_byte: float
    achieved_macs_per_cycle: float
    peak_macs_per_cycle: int
    bandwidth_macs_per_cycle: Optional[float]  # None = unconstrained DMA

    @property
    def attainable_macs_per_cycle(self) -> float:
        if self.bandwidth_macs_per_cycle is None:
            return float(self.peak_macs_per_cycle)
        return min(float(self.peak_macs_per_cycle),
                   self.bandwidth_macs_per_cycle)

    @property
    def compute_bound(self) -> bool:
        return (self.bandwidth_macs_per_cycle is None
                or self.bandwidth_macs_per_cycle
                >= float(self.peak_macs_per_cycle))

    def as_dict(self) -> Dict[str, object]:
        return {
            "arithmetic_intensity_macs_per_byte":
                self.arithmetic_intensity_macs_per_byte,
            "achieved_macs_per_cycle": self.achieved_macs_per_cycle,
            "peak_macs_per_cycle": self.peak_macs_per_cycle,
            "attainable_macs_per_cycle": self.attainable_macs_per_cycle,
            "compute_bound": self.compute_bound,
        }


@dataclass(frozen=True)
class SimReport:
    """Everything one simulation run produced."""

    network_name: str
    precision_key: str
    precision_label: str
    clock_hz: float
    bandwidth_gbps: Optional[float]      # None = transfers fully hidden
    total_cycles: int
    busy_cycles: int
    stalls: Dict[str, int]               # cause -> cycles, whole network
    utilization: float                   # in [0, 1]
    energy_uj: float
    energy_by_component_uj: Dict[str, float]
    runtime_us: float
    analytical_cycles: int
    analytical_energy_uj: float
    roofline: RooflinePoint
    events_processed: int
    trace_digest: str
    layers: Tuple[SimLayer, ...]

    @property
    def stall_cycles(self) -> int:
        return sum(self.stalls.values())

    @property
    def cycle_gap_pct(self) -> float:
        """Simulated vs analytical cycle count, in percent."""
        return 100.0 * (self.total_cycles / self.analytical_cycles - 1.0)

    @property
    def energy_gap_pct(self) -> float:
        """Simulated vs analytical energy/image, in percent."""
        return 100.0 * (self.energy_uj / self.analytical_energy_uj - 1.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "network": self.network_name,
            "precision": self.precision_key,
            "precision_label": self.precision_label,
            "clock_hz": self.clock_hz,
            "bandwidth_gbps": self.bandwidth_gbps,
            "total_cycles": self.total_cycles,
            "busy_cycles": self.busy_cycles,
            "stalls": dict(self.stalls),
            "utilization": self.utilization,
            "energy_uj": self.energy_uj,
            "energy_by_component_uj": dict(self.energy_by_component_uj),
            "runtime_us": self.runtime_us,
            "analytical_cycles": self.analytical_cycles,
            "analytical_energy_uj": self.analytical_energy_uj,
            "cycle_gap_pct": self.cycle_gap_pct,
            "energy_gap_pct": self.energy_gap_pct,
            "roofline": self.roofline.as_dict(),
            "events_processed": self.events_processed,
            "trace_digest": self.trace_digest,
            "layers": [layer.as_dict() for layer in self.layers],
        }

    # ------------------------------------------------------------------
    def stall_summary(self) -> str:
        """Compact ``cause:cycles`` listing of non-zero stalls."""
        parts = [
            f"{cause}:{self.stalls.get(cause, 0)}"
            for cause in STALL_CAUSES
            if self.stalls.get(cause, 0)
        ]
        return " ".join(parts) if parts else "none"

    def format(self) -> str:
        """Human-readable report for ``repro simulate``."""
        bandwidth = (
            "unconstrained (paper mode)" if self.bandwidth_gbps is None
            else f"{self.bandwidth_gbps:g} Gbit/s"
        )
        lines = [
            f"Simulation: {self.network_name} at {self.precision_label}",
            f"clock {self.clock_hz / 1e6:.0f} MHz, DMA bandwidth {bandwidth}",
            "",
            f"cycles      : {self.total_cycles} "
            f"(analytical {self.analytical_cycles}, "
            f"{self.cycle_gap_pct:+.2f}%)",
            f"energy/image: {self.energy_uj:.3f} uJ "
            f"(analytical {self.analytical_energy_uj:.3f} uJ, "
            f"{self.energy_gap_pct:+.2f}%)",
            f"utilization : {100 * self.utilization:.1f}%  "
            f"({self.busy_cycles} busy / {self.stall_cycles} stalled)",
            f"runtime     : {self.runtime_us:.1f} us/image",
            f"roofline    : {self.roofline.achieved_macs_per_cycle:.1f} of "
            f"{self.roofline.attainable_macs_per_cycle:.1f} attainable "
            f"MACs/cycle "
            f"({'compute' if self.roofline.compute_bound else 'bandwidth'}"
            f"-bound, "
            f"{self.roofline.arithmetic_intensity_macs_per_byte:.1f} "
            f"MACs/byte)",
            f"events      : {self.events_processed}  "
            f"trace {self.trace_digest[:16]}",
            "",
            "stall breakdown (cycles):",
        ]
        for cause in STALL_CAUSES:
            cycles = self.stalls.get(cause, 0)
            share = 100.0 * cycles / max(self.total_cycles, 1)
            lines.append(f"  {cause:<14}{cycles:>10}  {share:5.1f}%")
        lines.append("")
        lines.append(
            f"{'layer':<10}{'kind':<7}{'chunks':>7}{'cycles':>10}"
            f"{'util %':>8}{'stalls':>8}{'uJ':>10}"
        )
        lines.append("-" * 60)
        for layer in self.layers:
            lines.append(
                f"{layer.name:<10}{layer.kind:<7}{layer.chunks:>7}"
                f"{layer.cycles:>10}{100 * layer.utilization:>8.1f}"
                f"{layer.stall_cycles:>8}{layer.energy_uj:>10.3f}"
            )
        return "\n".join(lines)
