"""Accelerator design-space exploration.

The paper fixes the microarchitecture (16x16 tile, 250 MHz) and sweeps
only precision, explicitly declaring geometry/frequency exploration
out of scope.  This module provides that exploration as an extension:
sweep tile geometry x precision (optionally x clock), evaluate each
candidate on a workload, and extract the area/throughput/energy
Pareto set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.precision import PAPER_PRECISIONS, PrecisionSpec
from repro.errors import ConfigurationError
from repro.hw.accelerator import Accelerator, AcceleratorConfig
from repro.hw.scheduler import TileScheduler
from repro.hw.tech import TECH_65NM, TechnologyLibrary
from repro.nn.network import Sequential

#: geometries swept by default: (neurons, synapses)
DEFAULT_GEOMETRIES: Tuple[Tuple[int, int], ...] = (
    (8, 8), (16, 8), (16, 16), (32, 16), (32, 32),
)


@dataclass(frozen=True)
class DesignCandidate:
    """One evaluated accelerator design point on a fixed workload."""

    precision: PrecisionSpec
    neurons: int
    synapses: int
    clock_mhz: float
    area_mm2: float
    power_mw: float
    cycles_per_image: int
    images_per_second: float
    energy_uj_per_image: float

    @property
    def label(self) -> str:
        return (
            f"{self.precision.key} {self.neurons}x{self.synapses} "
            f"@{self.clock_mhz:.0f}MHz"
        )

    @property
    def images_per_second_per_watt(self) -> float:
        return self.images_per_second / (self.power_mw * 1e-3)


def evaluate_design(
    network: Sequential,
    input_shape: tuple,
    spec: PrecisionSpec,
    neurons: int,
    synapses: int,
    tech: TechnologyLibrary = TECH_65NM,
    base_config: Optional[AcceleratorConfig] = None,
) -> DesignCandidate:
    """Evaluate one (precision, geometry) candidate on a network."""
    base = base_config or AcceleratorConfig()
    config = AcceleratorConfig(
        neurons=neurons,
        synapses=synapses,
        input_buffer_words=base.input_buffer_words,
        output_buffer_words=base.output_buffer_words,
        weight_buffer_words=base.weight_buffer_words,
        dataflow_efficiency=base.dataflow_efficiency,
        layer_startup_cycles=base.layer_startup_cycles,
    )
    accelerator = Accelerator(spec, config=config, tech=tech)
    schedule = TileScheduler(accelerator).schedule(network, input_shape)
    runtime_s = schedule.runtime_s(tech.clock_hz)
    return DesignCandidate(
        precision=spec,
        neurons=neurons,
        synapses=synapses,
        clock_mhz=tech.clock_hz / 1e6,
        area_mm2=accelerator.area_mm2,
        power_mw=accelerator.power_mw,
        cycles_per_image=schedule.total_cycles,
        images_per_second=1.0 / runtime_s,
        energy_uj_per_image=runtime_s * accelerator.power_mw * 1e-3 * 1e6,
    )


def explore_design_space(
    network: Sequential,
    input_shape: tuple,
    precisions: Optional[Sequence[PrecisionSpec]] = None,
    geometries: Sequence[Tuple[int, int]] = DEFAULT_GEOMETRIES,
    clocks_mhz: Sequence[float] = (250.0,),
    tech: TechnologyLibrary = TECH_65NM,
) -> List[DesignCandidate]:
    """Full sweep over precision x geometry x clock."""
    if not geometries:
        raise ConfigurationError("need at least one geometry")
    specs = list(precisions) if precisions is not None else list(PAPER_PRECISIONS)
    candidates: List[DesignCandidate] = []
    for clock in clocks_mhz:
        scaled = tech if clock == tech.clock_hz / 1e6 else tech.with_clock(clock * 1e6)
        for spec in specs:
            for neurons, synapses in geometries:
                candidates.append(
                    evaluate_design(
                        network, input_shape, spec, neurons, synapses, tech=scaled
                    )
                )
    return candidates


def throughput_pareto(candidates: Sequence[DesignCandidate]) -> List[DesignCandidate]:
    """Non-dominated set maximizing throughput, minimizing area & energy."""
    def dominated(a: DesignCandidate, b: DesignCandidate) -> bool:
        no_worse = (
            b.images_per_second >= a.images_per_second
            and b.area_mm2 <= a.area_mm2
            and b.energy_uj_per_image <= a.energy_uj_per_image
        )
        strictly = (
            b.images_per_second > a.images_per_second
            or b.area_mm2 < a.area_mm2
            or b.energy_uj_per_image < a.energy_uj_per_image
        )
        return no_worse and strictly

    frontier = [
        c for c in candidates if not any(dominated(c, other) for other in candidates)
    ]
    return sorted(frontier, key=lambda c: c.area_mm2)
