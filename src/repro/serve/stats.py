"""Serving metrics: latency percentiles, throughput, batching, energy.

The paper's argument is an accuracy/energy trade-off measured per
image; :class:`ServerStats` carries that accounting into the serving
path so every load test reports not just p50/p95/p99 latency and
images/s but also the cumulative *modeled* accelerator energy of the
traffic it served (via :class:`repro.hw.energy.EnergyModel`).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_metrics


@dataclass(frozen=True)
class StatsReport:
    """Immutable snapshot of one serving run."""

    completed: int
    rejected: int
    failed: int
    deadline_expired: int          # requests evicted past their deadline
    degraded: int                  # admissions rerouted to lower precision
    throttled: int                 # rejections by the admission controller
    wall_s: float
    throughput_ips: float          # completed images per second
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    latency_ms_max: float
    queue_ms_mean: float
    batch_histogram: Dict[int, int]  # batch size -> number of batches
    mean_batch_size: float
    max_queue_depth: int
    energy_uj_total: float
    energy_uj_per_image: float
    #: model key -> {"digest", "version", "batches"} for traffic served
    #: from registry-deployed servables; empty when serving zoo weights.
    served_artifacts: Dict[str, Dict[str, object]] = dataclasses.field(
        default_factory=dict
    )

    def format(self) -> str:
        """Human-readable report block (CLI / benchmark output)."""
        lines = [
            f"requests completed     : {self.completed}"
            + (f"  (rejected {self.rejected}, failed {self.failed})"
               if self.rejected or self.failed else "")
            + (f"  (deadline expired {self.deadline_expired})"
               if self.deadline_expired else "")
            + (f"  (degraded {self.degraded})" if self.degraded else "")
            + (f"  (throttled {self.throttled})" if self.throttled else ""),
            f"wall time              : {self.wall_s:.3f} s",
            f"throughput             : {self.throughput_ips:.1f} img/s",
            "latency (ms)           : "
            f"mean {self.latency_ms_mean:.2f}  p50 {self.latency_ms_p50:.2f}  "
            f"p95 {self.latency_ms_p95:.2f}  p99 {self.latency_ms_p99:.2f}  "
            f"max {self.latency_ms_max:.2f}",
            f"queue wait (ms, mean)  : {self.queue_ms_mean:.2f}",
            f"mean batch size        : {self.mean_batch_size:.2f}"
            f"  (peak queue depth {self.max_queue_depth})",
            "batch-size histogram   : " + self._histogram_line(),
            f"modeled energy         : {self.energy_uj_total:.2f} uJ total, "
            f"{self.energy_uj_per_image:.3f} uJ/image",
        ]
        for key, info in sorted(self.served_artifacts.items()):
            lines.append(
                f"served artifact        : {key} = "
                f"{str(info.get('digest', ''))[:12]} "
                f"(v{info.get('version')}, {info.get('batches')} batches)"
            )
        return "\n".join(lines)

    def _histogram_line(self) -> str:
        if not self.batch_histogram:
            return "(empty)"
        return "  ".join(
            f"{size}:{count}" for size, count in sorted(self.batch_histogram.items())
        )


class ServerStats:
    """Thread-safe accumulator fed by the serving engine's workers.

    Besides its own accounting, every completion/batch/rejection is
    also routed into a :class:`~repro.obs.metrics.MetricsRegistry`
    (the process-wide one by default) under ``serve.*`` names, so
    serving latency and modeled energy show up in the same
    ``snapshot()`` dict as trainer and sweep metrics.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.metrics = metrics or get_metrics()
        self._clock = clock
        self._lock = threading.Lock()
        self._latencies_ms: List[float] = []
        self._queue_ms: List[float] = []
        self._batch_sizes: Counter = Counter()
        self._max_queue_depth = 0
        self._energy_uj = 0.0
        self._rejected = 0
        self._failed = 0
        self._deadline_expired = 0
        self._degraded = 0
        self._throttled = 0
        self._served_artifacts: Dict[str, Dict[str, object]] = {}
        self._first_admit: Optional[float] = None
        self._last_complete: Optional[float] = None

    # ------------------------------------------------------------------
    def record_admission(self) -> None:
        """One request accepted by the queue; starts the wall clock.

        Only *admitted* requests start the clock: a rejected burst long
        before real traffic must not inflate ``wall_s`` (and thereby
        deflate throughput and energy-per-image denominators).
        """
        now = self._clock()
        with self._lock:
            if self._first_admit is None:
                self._first_admit = now

    # Backwards-compatible name from when the engine stamped the clock
    # before the queue accepted the request.
    record_submission = record_admission

    def record_rejection(self) -> None:
        with self._lock:
            self._rejected += 1
        self.metrics.counter("serve.rejected").inc()

    def record_deadline_expired(self, count: int = 1) -> None:
        with self._lock:
            self._deadline_expired += count
        self.metrics.counter("serve.deadline_expired").inc(count)

    def record_degraded(self, count: int = 1) -> None:
        with self._lock:
            self._degraded += count
        self.metrics.counter("serve.degraded").inc(count)

    def record_throttled(self, count: int = 1) -> None:
        """An admission-controller rejection (the token bucket said no).

        Throttles are *not* counted as queue rejections: the queue had
        room, the controller chose to shed.  Keeping the two apart lets
        operators tell backpressure (a capacity problem) from throttling
        (a policy decision) in the same snapshot.
        """
        with self._lock:
            self._throttled += count
        self.metrics.counter("controller.throttled").inc(count)

    def record_failure(self, count: int = 1) -> None:
        with self._lock:
            self._failed += count
        self.metrics.counter("serve.failed").inc(count)

    def record_batch(self, batch_size: int, queue_depth: int) -> None:
        with self._lock:
            self._batch_sizes[batch_size] += 1
            self._max_queue_depth = max(self._max_queue_depth, queue_depth)
        self.metrics.histogram("serve.batch_size").observe(batch_size)
        self.metrics.gauge("serve.queue_depth").set(queue_depth)

    def record_artifact(self, key: str, digest: str, version: object) -> None:
        """One batch served from a registry-deployed artifact.

        The engine calls this only when the servable carries a registry
        digest (:attr:`repro.serve.Servable.registry_digest`), so plain
        zoo-weight serving pays nothing.  The snapshot then answers
        *which model version actually handled the traffic* — the datum
        a rollout/rollback needs to be auditable.
        """
        with self._lock:
            entry = self._served_artifacts.get(key)
            if entry is None or entry.get("digest") != digest:
                entry = {"digest": digest, "version": version, "batches": 0}
                self._served_artifacts[key] = entry
            entry["batches"] = int(entry["batches"]) + 1
        self.metrics.counter("serve.registry_batches").inc()

    def record_completion(
        self, latency_ms: float, queue_ms: float, energy_uj: float
    ) -> None:
        now = self._clock()
        with self._lock:
            self._latencies_ms.append(latency_ms)
            self._queue_ms.append(queue_ms)
            self._energy_uj += energy_uj
            self._last_complete = now
        self.metrics.counter("serve.completed").inc()
        self.metrics.counter("serve.energy_uj").inc(energy_uj)
        self.metrics.histogram("serve.latency_ms").observe(latency_ms)
        self.metrics.histogram("serve.queue_ms").observe(queue_ms)

    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """Cheap monotonic counters for incremental (windowed) sampling.

        Unlike :meth:`report` this computes no percentiles — it is the
        control loop's per-tick read, O(1) under the lock.  Pair with
        :meth:`latencies_since` to build per-window signals.
        """
        with self._lock:
            return {
                "completed": float(len(self._latencies_ms)),
                "failed": float(self._failed),
                "rejected": float(self._rejected),
                "deadline_expired": float(self._deadline_expired),
                "degraded": float(self._degraded),
                "throttled": float(self._throttled),
                "energy_uj": float(self._energy_uj),
            }

    def latencies_since(self, start: int) -> Tuple[List[float], int]:
        """Latency samples appended at index ``start`` or later.

        Returns ``(samples, next_cursor)``; completions only append, so
        a caller holding the returned cursor sees each sample exactly
        once across successive calls.
        """
        with self._lock:
            return list(self._latencies_ms[start:]), len(self._latencies_ms)

    def samples(self) -> Tuple[List[float], List[float]]:
        """Raw (latency_ms, queue_ms) per-request samples, copied.

        Fleet replicas ship these alongside their :class:`StatsReport`
        so the front-end can merge percentiles *exactly* (pooling the
        samples) instead of averaging each replica's p99 — see
        :func:`merge_reports`.
        """
        with self._lock:
            return list(self._latencies_ms), list(self._queue_ms)

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time dict of the serving counters and percentiles.

        Same contract as :meth:`repro.obs.MetricsRegistry.snapshot`:
        one plain dict, JSON-serializable, computed consistently under
        the lock.  Use :meth:`report` for the typed
        :class:`StatsReport` (attribute access and ``format()``).
        """
        return dataclasses.asdict(self.report())

    def report(self) -> StatsReport:
        """Consistent point-in-time report (percentiles computed here)."""
        with self._lock:
            latencies = np.asarray(self._latencies_ms, dtype=np.float64)
            queue_ms = np.asarray(self._queue_ms, dtype=np.float64)
            completed = int(latencies.size)
            wall_s = 0.0
            if self._first_admit is not None and self._last_complete is not None:
                wall_s = max(self._last_complete - self._first_admit, 0.0)
            n_batches = sum(self._batch_sizes.values())
            batched_images = sum(
                size * count for size, count in self._batch_sizes.items()
            )

            def percentile(p: float) -> float:
                return float(np.percentile(latencies, p)) if completed else 0.0

            return StatsReport(
                completed=completed,
                rejected=self._rejected,
                failed=self._failed,
                deadline_expired=self._deadline_expired,
                degraded=self._degraded,
                throttled=self._throttled,
                wall_s=wall_s,
                throughput_ips=completed / wall_s if wall_s > 0 else 0.0,
                latency_ms_mean=float(latencies.mean()) if completed else 0.0,
                latency_ms_p50=percentile(50),
                latency_ms_p95=percentile(95),
                latency_ms_p99=percentile(99),
                latency_ms_max=float(latencies.max()) if completed else 0.0,
                queue_ms_mean=float(queue_ms.mean()) if queue_ms.size else 0.0,
                batch_histogram=dict(self._batch_sizes),
                mean_batch_size=batched_images / n_batches if n_batches else 0.0,
                max_queue_depth=self._max_queue_depth,
                energy_uj_total=float(self._energy_uj),
                energy_uj_per_image=(
                    float(self._energy_uj) / completed if completed else 0.0
                ),
                served_artifacts={
                    key: dict(info)
                    for key, info in self._served_artifacts.items()
                },
            )


def _weighted_percentile(
    values: np.ndarray, weights: np.ndarray, p: float
) -> float:
    """Percentile of a weighted sample set (linear interpolation).

    Used only for the degraded merge path where raw samples are not
    available: each part contributes its own percentile value weighted
    by how many requests backed it.  An approximation — exact pooling
    via raw samples is always preferred — but strictly better than the
    unweighted mean of percentiles, which lets a 10-request replica
    drag the fleet p99 as hard as a 10000-request one.
    """
    if len(values) == 0:
        return 0.0
    order = np.argsort(values)
    values = values[order]
    weights = weights[order].astype(np.float64)
    total = float(weights.sum())
    if total <= 0.0:
        # Every contributing part served zero requests; dividing by the
        # zero weight sum used to yield NaN percentiles.  Nothing was
        # measured, so report 0.0 like the empty-report percentiles do.
        return 0.0
    cum = np.cumsum(weights) - 0.5 * weights
    cum /= total
    return float(np.interp(p / 100.0, cum, values))


def merge_reports(
    parts: Sequence[StatsReport],
    samples: Optional[Sequence[Tuple[Sequence[float], Sequence[float]]]] = None,
) -> StatsReport:
    """Aggregate per-replica :class:`StatsReport` s into one fleet view.

    The trap this function exists to avoid is averages-of-averages: a
    fleet's p99 is *not* the mean of replica p99s, and energy per
    request is *not* the mean of per-replica energy means when replicas
    served different request counts.  Counters are summed; energy per
    image is recomputed as total energy over total completions; batch
    histograms are added; ``wall_s`` is the maximum part wall (replicas
    run concurrently, so the fleet's span is the longest replica span)
    and throughput is total completions over that shared wall.

    Percentiles merge in one of two ways:

    * ``samples`` given (one ``(latencies_ms, queue_ms)`` pair per
      part, as shipped by replicas at shutdown): the samples are pooled
      and the percentiles recomputed exactly.
    * otherwise: weighted percentile merge — each part's percentile
      enters a weighted quantile with weight = its completion count.
      Approximate, clearly better than unweighted averaging, and only
      used when a replica died before shipping its samples.
    """
    # Validate alignment against the ORIGINAL part list, then drop dead
    # replicas (a ``None`` report) together with their sample slot.
    # Filtering parts first used to either raise spuriously (the dead
    # replica's sample slot was still present) or silently pool samples
    # against the wrong report.
    if samples is not None and len(samples) != len(parts):
        raise ValueError(
            f"{len(parts)} reports but {len(samples)} sample sets"
        )
    if samples is not None:
        kept = [(p, s) for p, s in zip(parts, samples) if p is not None]
        parts = [p for p, _ in kept]
        samples = [s for _, s in kept]
    else:
        parts = [p for p in parts if p is not None]
    if not parts:
        return ServerStats(metrics=MetricsRegistry()).report()

    completed = sum(p.completed for p in parts)
    energy_total = float(sum(p.energy_uj_total for p in parts))
    wall_s = max(p.wall_s for p in parts)
    histogram: Counter = Counter()
    for p in parts:
        histogram.update({int(k): v for k, v in p.batch_histogram.items()})
    n_batches = sum(histogram.values())
    batched_images = sum(size * count for size, count in histogram.items())

    artifacts: Dict[str, Dict[str, object]] = {}
    for p in parts:
        for key, info in p.served_artifacts.items():
            entry = artifacts.setdefault(
                key, {"digest": info.get("digest"),
                      "version": info.get("version"), "batches": 0}
            )
            if entry.get("digest") == info.get("digest"):
                entry["batches"] = int(entry["batches"]) + int(info["batches"])
            else:  # a canary split: keep the most-served digest's entry
                if int(info["batches"]) > int(entry["batches"]):
                    artifacts[key] = dict(info)

    if samples is not None:
        pooled_lat = np.concatenate([
            np.asarray(list(s[0]), dtype=np.float64) for s in samples
        ]) if any(len(s[0]) for s in samples) else np.empty(0)
        pooled_queue = np.concatenate([
            np.asarray(list(s[1]), dtype=np.float64) for s in samples
        ]) if any(len(s[1]) for s in samples) else np.empty(0)

        def pct(p: float) -> float:
            return float(np.percentile(pooled_lat, p)) if pooled_lat.size else 0.0

        latency_mean = float(pooled_lat.mean()) if pooled_lat.size else 0.0
        latency_max = float(pooled_lat.max()) if pooled_lat.size else 0.0
        queue_mean = float(pooled_queue.mean()) if pooled_queue.size else 0.0
        p50, p95, p99 = pct(50), pct(95), pct(99)
    else:
        weights = np.asarray([p.completed for p in parts], dtype=np.float64)
        if weights.sum() <= 0:
            weights = np.ones(len(parts))

        def wpct(attr: str, p: float) -> float:
            values = np.asarray([getattr(part, attr) for part in parts])
            return _weighted_percentile(values, weights, p)

        latency_mean = float(np.average(
            [p.latency_ms_mean for p in parts], weights=weights))
        latency_max = max(p.latency_ms_max for p in parts)
        queue_mean = float(np.average(
            [p.queue_ms_mean for p in parts], weights=weights))
        p50 = wpct("latency_ms_p50", 50)
        p95 = wpct("latency_ms_p95", 95)
        p99 = wpct("latency_ms_p99", 99)

    return StatsReport(
        completed=completed,
        rejected=sum(p.rejected for p in parts),
        failed=sum(p.failed for p in parts),
        deadline_expired=sum(p.deadline_expired for p in parts),
        degraded=sum(p.degraded for p in parts),
        throttled=sum(p.throttled for p in parts),
        wall_s=wall_s,
        throughput_ips=completed / wall_s if wall_s > 0 else 0.0,
        latency_ms_mean=latency_mean,
        latency_ms_p50=p50,
        latency_ms_p95=p95,
        latency_ms_p99=p99,
        latency_ms_max=latency_max,
        queue_ms_mean=queue_mean,
        batch_histogram=dict(histogram),
        mean_batch_size=batched_images / n_batches if n_batches else 0.0,
        max_queue_depth=max(p.max_queue_depth for p in parts),
        energy_uj_total=energy_total,
        energy_uj_per_image=energy_total / completed if completed else 0.0,
        served_artifacts=artifacts,
    )


def latency_percentiles(latencies_ms: List[float]) -> Tuple[float, float, float]:
    """(p50, p95, p99) helper for ad-hoc measurements outside the stats
    object (used by the benchmark drivers)."""
    if not latencies_ms:
        return (0.0, 0.0, 0.0)
    array = np.asarray(latencies_ms, dtype=np.float64)
    return tuple(float(np.percentile(array, p)) for p in (50, 95, 99))  # type: ignore[return-value]
