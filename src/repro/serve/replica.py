"""The fleet replica: one process, one frozen model, one command loop.

A replica is spawned by :class:`repro.serve.fleet.FleetServer` with a
picklable :class:`ReplicaConfig`, builds its own
:class:`~repro.serve.ModelStore` (same seed, calibration budget and
backend as a single-process server would use, so a fleet's responses
are bitwise identical to in-process serving), attaches to the
front-end's shared-memory ring, and then serves commands from the
control pipe:

``infer``
    read the batch from the slot named in the descriptor, run one
    forward pass, write the logits back into the slot's output region,
    reply ``done`` (or ``error`` carrying the pickled typed exception).
``deploy``
    build a registry artifact (by digest) into the local model store —
    the per-replica half of a canary rollout.  ``sabotage`` in the
    command arms ``engine.forward`` raise-faults on this replica's
    injector, which is how chaos tests force a regressing canary.
``stop``
    reply with a final stats snapshot (report + raw latency samples for
    exact percentile merging) and exit the loop.

Heartbeats are sent from a daemon thread every
``ReplicaConfig.heartbeat_s`` so the front-end's monitor can tell a
wedged replica from a merely busy one.  Chaos is local to the process:
``chaos_seed`` arms :func:`repro.resilience.chaos_preset` (including
the ``replica.crash`` site, which kills the process with ``os._exit``
— real process death, not an exception), and ``crash_after_batches``
schedules one deterministic crash for CI's crash/rejoin smoke.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultInjectedError
from repro.serve.ipc import ReplicaRing, SlotDescriptor
from repro.serve.stats import ServerStats

__all__ = ["ReplicaConfig", "replica_main", "CRASH_EXIT_CODE"]

#: Exit status of a chaos-killed replica, distinguishable from real bugs.
CRASH_EXIT_CODE = 17


@dataclass
class ReplicaConfig:
    """Everything a replica needs to rebuild the serving state.

    The config must stay picklable under the ``spawn`` start method —
    plain strings/numbers only, no live objects.
    """

    index: int
    segment_names: List[str]
    input_bytes: int
    seed: int = 0
    backend: Optional[str] = None
    calibration_images: int = 128
    memory_budget_kb: float = 16384.0
    weight_paths: Dict[str, str] = field(default_factory=dict)
    #: warm these (network, precision) pairs before reporting ready
    warm_keys: List[Tuple[str, str]] = field(default_factory=list)
    #: deploy this registry artifact at startup (root, channel, digest,
    #: version) — how a respawned replica rejoins on the deployed model
    startup_artifact: Optional[Tuple[str, str, str, int]] = None
    heartbeat_s: float = 0.25
    chaos_seed: Optional[int] = None
    incarnation: int = 0
    #: deterministic crash for CI: die after serving this many batches
    crash_after_batches: Optional[int] = None


class _Sender:
    """Serializes pipe sends: the command loop and the heartbeat thread
    share one connection, and ``Connection.send`` is not thread-safe."""

    def __init__(self, conn):
        self._conn = conn
        self._lock = threading.Lock()

    def send(self, message) -> None:
        with self._lock:
            self._conn.send(message)


def _heartbeat_loop(sender: _Sender, interval_s: float,
                    stop: threading.Event) -> None:
    while not stop.wait(interval_s):
        try:
            sender.send({"type": "heartbeat", "ts": time.time()})
        except (BrokenPipeError, OSError):
            return


def replica_main(config: ReplicaConfig, conn) -> None:
    """Entry point of the replica process (target of ``Process``)."""
    # Imports that pull numpy/model code happen here, inside the child.
    from repro.resilience.faults import chaos_preset, get_injector, set_injector
    from repro.serve.model_store import ModelStore

    if config.chaos_seed is not None:
        # Derive a per-(replica, incarnation) seed so respawned replicas
        # replay a *different* — but still deterministic — schedule and
        # chaos does not re-kill every incarnation at the same batch.
        set_injector(chaos_preset(
            config.chaos_seed * 1009 + config.index * 31 + config.incarnation
        ))

    sender = _Sender(conn)
    store = ModelStore(
        memory_budget_kb=config.memory_budget_kb,
        weight_paths=config.weight_paths or None,
        calibration_images=config.calibration_images,
        seed=config.seed,
        backend=config.backend,
    )
    stats = ServerStats()
    ring = ReplicaRing(config.segment_names, config.input_bytes)
    sabotage_armed = False

    def deploy_artifact(root: str, digest: str, version: int,
                        sabotage: bool = False) -> Dict[str, object]:
        """Install one registry artifact into the local store."""
        nonlocal sabotage_armed
        from repro.registry.deployer import Deployer
        from repro.registry.store import ArtifactStore

        art_store = ArtifactStore(root)
        deployer = Deployer(art_store, store, seed=config.seed)
        manifest = art_store.get(digest)
        servable = deployer.build_servable(manifest, version)
        store.install(servable)
        if sabotage and not sabotage_armed:
            # A deliberately broken rollout for canary chaos tests: the
            # forward-path fault site starts raising on this replica.
            get_injector().arm("engine.forward", mode="raise", rate=0.75)
            sabotage_armed = True
        elif not sabotage and sabotage_armed:
            get_injector().disarm("engine.forward")
            sabotage_armed = False
        return {"digest": manifest.digest, "version": version}

    try:
        if config.startup_artifact is not None:
            root, _channel, digest, version = config.startup_artifact
            deploy_artifact(root, digest, version)
        for network, precision in config.warm_keys:
            store.warm(network, precision)
    except Exception as error:
        try:
            sender.send({"type": "init_error", "error": error})
        except Exception:
            pass
        ring.close()
        return

    stop_heartbeat = threading.Event()
    heartbeat = threading.Thread(
        target=_heartbeat_loop,
        args=(sender, config.heartbeat_s, stop_heartbeat),
        name=f"replica-{config.index}-heartbeat",
        daemon=True,
    )
    heartbeat.start()
    sender.send({"type": "ready", "pid": os.getpid(),
                 "incarnation": config.incarnation})

    batches_served = 0
    injector = get_injector()
    try:
        while True:
            message = conn.recv()
            kind = message.get("type")
            if kind == "stop":
                report = stats.report()
                latencies, queue_ms = stats.samples()
                sender.send({
                    "type": "stats",
                    "report": report,
                    "latencies_ms": latencies,
                    "queue_ms": queue_ms,
                })
                return
            if kind == "deploy":
                try:
                    payload = deploy_artifact(
                        message["root"], message["digest"],
                        int(message["version"]),
                        sabotage=bool(message.get("sabotage", False)),
                    )
                    sender.send({"type": "deployed", **payload})
                except Exception as error:
                    sender.send({"type": "deploy_error", "error": error})
                continue
            if kind != "infer":
                continue

            desc = SlotDescriptor(
                slot=int(message["slot"]),
                n=int(message["n"]),
                shape=tuple(message["shape"]),
                dtype=str(message["dtype"]),
            )
            seq = int(message["seq"])
            stats.record_admission()
            try:
                # The crash site injects *process death*: the front-end
                # must detect it via heartbeat/EOF, respawn this replica
                # and resubmit the batch — no exception path to hide in.
                try:
                    injector.fire("replica.crash")
                except FaultInjectedError:
                    os._exit(CRASH_EXIT_CODE)
                if (
                    config.crash_after_batches is not None
                    and config.incarnation == 0
                    and batches_served >= config.crash_after_batches
                ):
                    os._exit(CRASH_EXIT_CODE)
                injector.fire("engine.forward")
                servable = store.get(message["network"], message["precision"])
                batch = ring.read_batch(desc)
                started = time.perf_counter()
                logits = injector.corrupt("engine.forward",
                                          servable.forward(batch))
                compute_ms = 1000.0 * (time.perf_counter() - started)
                n_out, out_dtype = ring.write_output(desc, logits)
            except BaseException as error:  # noqa: BLE001 - shipped to parent
                stats.record_failure(desc.n)
                sender.send({"type": "error", "seq": seq, "slot": desc.slot,
                            "error": error})
                continue
            batches_served += 1
            stats.record_batch(desc.n, 0)
            for _ in range(desc.n):
                stats.record_completion(
                    latency_ms=compute_ms,
                    queue_ms=0.0,
                    energy_uj=servable.energy_uj_per_image,
                )
            if servable.registry_digest is not None:
                stats.record_artifact(
                    f"{message['network']}@{message['precision']}",
                    servable.registry_digest,
                    servable.registry_version,
                )
            sender.send({
                "type": "done",
                "seq": seq,
                "slot": desc.slot,
                "n": desc.n,
                "n_out": n_out,
                "dtype": out_dtype,
                "compute_ms": compute_ms,
                "energy_uj_per_image": servable.energy_uj_per_image,
                "registry_digest": servable.registry_digest,
                "registry_version": servable.registry_version,
            })
    except (EOFError, KeyboardInterrupt):
        return
    finally:
        stop_heartbeat.set()
        ring.close()
