"""Batched, multi-worker quantized-inference serving with energy accounting.

The paper measures accuracy against *per-image inference energy* on an
accelerator — a deployment argument.  This subpackage makes that
deployment scenario executable: an in-process service that accepts
single-image requests, groups them into dynamic micro-batches, runs
them through calibrated :class:`~repro.core.QuantizedNetwork` pipelines
on a pool of worker threads, and attributes modeled accelerator energy
(:class:`~repro.hw.energy.EnergyModel`) to every request it serves.
The paper's accuracy/energy trade-off thereby becomes observable per
request under load, not only in offline benchmark tables.

Components:

``ModelStore``
    Loads weights (``repro.nn.serialization``), calibrates and freezes
    one servable per ``(network, precision)``, LRU-evicted under a
    memory budget computed with the paper's Section V-B footprint
    accounting — low-precision models are proportionally cheaper to
    cache, mirroring the accelerator's buffers.
``Batcher`` / ``BatchPolicy``
    Bounded request queue with explicit backpressure and dynamic
    micro-batching (max batch size + max latency deadline).
``InferenceServer``
    Worker-thread engine with graceful drain; thread safety comes from
    :meth:`repro.core.QuantizedNetwork.freeze`, which bakes quantized
    parameter copies in so the inference path never mutates shared
    state.
``ServerStats`` / ``StatsReport``
    p50/p95/p99 latency, throughput, queue depth, batch-size histogram
    and cumulative modeled energy.
``run_closed_loop``
    Closed-loop load generator backing ``python -m repro serve-bench``:
    records client-side per-request latencies, runs request- or
    time-bounded, and retries submissions the admission controller
    throttles.  Both servers accept two optional control hooks — a
    ``degrade`` router and an ``admission`` gate (checked in
    ``submit``; refusals raise ``ServerOverloadedError`` and count as
    ``throttled``) — which the closed-loop autotuner in
    :mod:`repro.control` actuates (``docs/control.md``).
``FleetServer`` / ``FleetConfig``
    Multi-process sharded serving: N replica processes behind one
    admission front-end, zero-copy shared-memory tensor handoff
    (``repro.serve.ipc``), heartbeat-driven crash recovery with
    in-flight resubmission, and per-replica canary deploys
    (``docs/serving.md`` has the topology).
"""

from repro.serve.request import (
    InferenceRequest,
    InferenceResult,
    ModelKey,
    PendingRequest,
    ServeFuture,
)
from repro.serve.batcher import Batcher, BatchPolicy
from repro.serve.stats import (
    ServerStats,
    StatsReport,
    latency_percentiles,
    merge_reports,
)
from repro.serve.model_store import ModelStore, Servable
from repro.serve.engine import InferenceServer
from repro.serve.ipc import (
    ReplicaRing,
    SlotDescriptor,
    SlotState,
    TensorRing,
    scan_segments,
)
from repro.serve.replica import CRASH_EXIT_CODE, ReplicaConfig
from repro.serve.fleet import (
    FleetConfig,
    FleetReport,
    FleetServer,
    ReplicaStatus,
)
from repro.serve.loadgen import LoadResult, run_closed_loop

__all__ = [
    "ModelKey",
    "InferenceRequest",
    "InferenceResult",
    "ServeFuture",
    "Batcher",
    "BatchPolicy",
    "PendingRequest",
    "ServerStats",
    "StatsReport",
    "latency_percentiles",
    "merge_reports",
    "ModelStore",
    "Servable",
    "InferenceServer",
    "TensorRing",
    "ReplicaRing",
    "SlotDescriptor",
    "SlotState",
    "scan_segments",
    "ReplicaConfig",
    "CRASH_EXIT_CODE",
    "FleetServer",
    "FleetConfig",
    "FleetReport",
    "ReplicaStatus",
    "LoadResult",
    "run_closed_loop",
]
