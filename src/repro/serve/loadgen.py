"""Closed-loop load generation for serve benchmarking.

A closed loop keeps a fixed number of in-flight requests: each client
thread submits one image, waits for its result, then submits the next.
That bounds the queue naturally (offered load adapts to service rate),
which is the honest way to measure a batching engine — an open loop
with a fixed rate either starves the batcher or overruns the queue.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError, ServerOverloadedError
from repro.serve.engine import InferenceServer
from repro.serve.stats import StatsReport


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one closed-loop run."""

    report: StatsReport          # the server's stats over this run
    submitted: int               # requests successfully admitted
    retries: int                 # submissions retried after backpressure
    client_errors: int           # requests that raised at the client


def run_closed_loop(
    server: InferenceServer,
    images: np.ndarray,
    network: str,
    precision: str,
    n_requests: int,
    concurrency: int = 32,
    request_timeout_s: float = 120.0,
) -> LoadResult:
    """Drive ``n_requests`` single-image requests through ``server``.

    ``images`` is an NCHW pool cycled through round-robin; ``concurrency``
    clients keep that many requests in flight.  Backpressure rejections
    are retried after a short pause (and counted), so every request
    eventually completes unless the server fails it.
    """
    if n_requests < 1:
        raise ConfigurationError("n_requests must be >= 1")
    if concurrency < 1:
        raise ConfigurationError("concurrency must be >= 1")
    n_images = images.shape[0]
    counter_lock = threading.Lock()
    state = {"next": 0, "submitted": 0, "retries": 0, "errors": 0}

    def next_index() -> Optional[int]:
        with counter_lock:
            if state["next"] >= n_requests:
                return None
            index = state["next"]
            state["next"] += 1
            return index

    def client() -> None:
        while True:
            index = next_index()
            if index is None:
                return
            image = images[index % n_images]
            while True:
                try:
                    future = server.submit(image, network, precision)
                    break
                except ServerOverloadedError:
                    with counter_lock:
                        state["retries"] += 1
                    time.sleep(0.001)
            with counter_lock:
                state["submitted"] += 1
            try:
                future.result(timeout=request_timeout_s)
            except Exception:
                with counter_lock:
                    state["errors"] += 1

    threads: List[threading.Thread] = [
        threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
        for i in range(min(concurrency, n_requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    return LoadResult(
        report=server.report(),
        submitted=state["submitted"],
        retries=state["retries"],
        client_errors=state["errors"],
    )
