"""Closed-loop load generation for serve benchmarking.

A closed loop keeps a fixed number of in-flight requests: each client
thread submits one image, waits for its result, then submits the next.
That bounds the queue naturally (offered load adapts to service rate),
which is the honest way to measure a batching engine — an open loop
with a fixed rate either starves the batcher or overruns the queue.

Every admitted request is accounted for in exactly one bucket of the
returned :class:`LoadResult` — result, deadline expiry, typed server
error, or lost (the future never resolved within the client's wait
budget).  Chaos runs assert ``lost == 0``: faults may fail requests,
but never silently swallow them.

The generator also records its *own* per-request enqueue-to-completion
latency samples (``LoadResult.latencies_ms``) — the client-side view,
measured outside the server.  The server's stats report percentiles
over its internal timestamps; the client-side samples are what an SLO
verdict should be judged on and what per-phase scenario analysis slices.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ResultTimeoutError,
    ServerOverloadedError,
)
from repro.serve.engine import InferenceServer
from repro.serve.stats import StatsReport


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one closed-loop run."""

    report: StatsReport          # the server's stats over this run
    submitted: int               # requests successfully admitted
    retries: int                 # submissions retried after backpressure
    client_errors: int           # requests failed with a typed server error
    deadline_expired: int = 0    # requests that raised DeadlineExceededError
    lost: int = 0                # futures that never resolved (wait timeout)
    #: client-measured enqueue-to-completion latency of every request
    #: that returned a result, in submission order per client
    latencies_ms: Tuple[float, ...] = field(default=())

    @property
    def accounted(self) -> int:
        """Requests that terminated in a definite outcome."""
        return (
            self.report.completed + self.client_errors + self.deadline_expired
        )


def run_closed_loop(
    server: InferenceServer,
    images: np.ndarray,
    network: str,
    precision: str,
    n_requests: int,
    concurrency: int = 32,
    request_timeout_s: float = 120.0,
    deadline_ms: Optional[float] = None,
    duration_s: Optional[float] = None,
) -> LoadResult:
    """Drive ``n_requests`` single-image requests through ``server``.

    ``images`` is an NCHW pool cycled through round-robin; ``concurrency``
    clients keep that many requests in flight.  Backpressure rejections
    are retried after a short pause (and counted), so every request
    eventually completes unless the server fails it.  ``deadline_ms``
    is attached to every submission when given.

    ``duration_s`` turns the run time-bounded: clients stop starting
    new requests once that many seconds have elapsed (whichever of the
    request budget and the clock runs out first ends the run) — this is
    how scenario phases hold a concurrency level for a fixed span.
    """
    if n_requests < 1:
        raise ConfigurationError("n_requests must be >= 1")
    if concurrency < 1:
        raise ConfigurationError("concurrency must be >= 1")
    if duration_s is not None and duration_s <= 0:
        raise ConfigurationError("duration_s must be positive")
    n_images = images.shape[0]
    started_at = time.monotonic()
    stop_at = None if duration_s is None else started_at + duration_s
    counter_lock = threading.Lock()
    state = {
        "next": 0, "submitted": 0, "retries": 0,
        "errors": 0, "deadline": 0, "lost": 0,
    }
    latencies_ms: List[float] = []

    def next_index() -> Optional[int]:
        if stop_at is not None and time.monotonic() >= stop_at:
            return None
        with counter_lock:
            if state["next"] >= n_requests:
                return None
            index = state["next"]
            state["next"] += 1
            return index

    def bump(key: str) -> None:
        with counter_lock:
            state[key] += 1

    def client() -> None:
        while True:
            index = next_index()
            if index is None:
                return
            image = images[index % n_images]
            while True:
                try:
                    future = server.submit(
                        image, network, precision, deadline_ms=deadline_ms
                    )
                    break
                except ServerOverloadedError:
                    bump("retries")
                    if stop_at is not None and time.monotonic() >= stop_at:
                        return  # time-bounded run: don't retry past the end
                    time.sleep(0.001)
            enqueued_at = time.monotonic()
            bump("submitted")
            try:
                future.result(timeout=request_timeout_s)
            except DeadlineExceededError:
                bump("deadline")
            except ResultTimeoutError:
                bump("lost")
            except Exception:
                bump("errors")
            else:
                sample = (time.monotonic() - enqueued_at) * 1e3
                with counter_lock:
                    latencies_ms.append(sample)

    threads: List[threading.Thread] = [
        threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
        for i in range(min(concurrency, n_requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    return LoadResult(
        report=server.report(),
        submitted=state["submitted"],
        retries=state["retries"],
        client_errors=state["errors"],
        deadline_expired=state["deadline"],
        lost=state["lost"],
        latencies_ms=tuple(latencies_ms),
    )
