"""Dynamic micro-batching over a bounded request queue.

Single-image requests are grouped into batches per ``(network,
precision)`` lane.  A batch is released when it reaches
``max_batch_size`` or when its oldest request has waited
``max_delay_ms`` — the classic throughput/latency knob: larger batches
amortize per-call numpy dispatch over more images (the same reason the
accelerator processes feature maps tile-by-tile), the deadline bounds
the latency cost of waiting for co-riders.

The queue is bounded and rejects on overflow
(:class:`~repro.errors.ServerOverloadedError`) rather than buffering
unboundedly: under sustained overload an unbounded queue only converts
memory into latency, so the server pushes back explicitly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Protocol

from repro.errors import ConfigurationError, ServerClosedError, ServerOverloadedError
from repro.serve.request import ModelKey


class Batchable(Protocol):
    """Anything the batcher can group: a model lane plus an arrival time.

    An optional ``deadline_at`` attribute (monotonic seconds, or None)
    opts the item into deadline eviction: once the clock passes it the
    batcher drops the item instead of batching it.
    """

    @property
    def model_key(self) -> ModelKey: ...

    @property
    def enqueued_at(self) -> float: ...


class BatchPolicy:
    """Batch-formation knobs.

    Args:
        max_batch_size: release a batch as soon as it has this many
            requests.
        max_delay_ms: release a batch once its oldest request has waited
            this long, even if not full.
    """

    def __init__(self, max_batch_size: int = 32, max_delay_ms: float = 2.0):
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if max_delay_ms < 0:
            raise ConfigurationError("max_delay_ms must be >= 0")
        self.max_batch_size = max_batch_size
        self.max_delay_ms = max_delay_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BatchPolicy(max_batch_size={self.max_batch_size}, "
            f"max_delay_ms={self.max_delay_ms})"
        )


class Batcher:
    """Bounded multi-lane queue that releases dynamic micro-batches.

    Requests for different models never share a batch; the lane whose
    head request is oldest is always served first, so no model starves.
    ``next_batch`` is designed to be called by several worker threads
    concurrently.
    """

    def __init__(
        self,
        policy: Optional[BatchPolicy] = None,
        max_queue_depth: int = 256,
        on_expired: Optional[Callable[[List[Batchable]], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")
        self.policy = policy or BatchPolicy()
        self.max_queue_depth = max_queue_depth
        self._on_expired = on_expired
        self._clock = clock
        self._lanes: Dict[ModelKey, Deque[Batchable]] = {}
        self._claims: set = set()  # lanes a worker is currently assembling
        self._size = 0
        self._closed = False
        self._cond = threading.Condition()
        # set once any deadlined item is enqueued; until then the
        # eviction scan is skipped entirely, keeping the no-deadline
        # hot path exactly as cheap as before
        self._track_deadlines = False

    # ------------------------------------------------------------------
    def put(self, item: Batchable) -> None:
        """Enqueue one request; rejects when closed or full."""
        with self._cond:
            if self._closed:
                raise ServerClosedError("server is draining; request rejected")
            if self._size >= self.max_queue_depth:
                raise ServerOverloadedError(
                    f"request queue full ({self.max_queue_depth} pending)"
                )
            self._lanes.setdefault(item.model_key, deque()).append(item)
            self._size += 1
            if getattr(item, "deadline_at", None) is not None:
                self._track_deadlines = True
            self._cond.notify_all()

    def requeue(self, items: List[Batchable]) -> None:
        """Put recovered in-flight items back at the *front* of their lanes.

        The fleet resubmits batches that were in flight to a crashed
        replica.  Unlike :meth:`put`, this works on a closed batcher
        (the crash may happen during drain — the items were already
        admitted once and are still owed a result), bypasses the depth
        bound, and prepends in reverse order so the original arrival
        order is preserved for deadline accounting and lane fairness.
        """
        with self._cond:
            for item in reversed(items):
                self._lanes.setdefault(item.model_key, deque()).appendleft(item)
                self._size += 1
                if getattr(item, "deadline_at", None) is not None:
                    self._track_deadlines = True
            if items:
                self._cond.notify_all()

    def depth(self) -> int:
        """Requests currently queued (all lanes)."""
        with self._cond:
            return self._size

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop accepting requests; queued work can still be drained."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def pop_all(self) -> List[Batchable]:
        """Remove and return every queued request (non-drain shutdown)."""
        with self._cond:
            items: List[Batchable] = []
            for lane in self._lanes.values():
                items.extend(lane)
            self._lanes.clear()
            self._size = 0
            self._cond.notify_all()
            return items

    # ------------------------------------------------------------------
    def _oldest_unclaimed_lane(self) -> Optional[ModelKey]:
        """Oldest-head lane no other worker is currently assembling."""
        candidates = [key for key in self._lanes if key not in self._claims]
        if not candidates:
            return None
        return min(candidates, key=lambda key: self._lanes[key][0].enqueued_at)

    def _evict_expired(self) -> None:
        """Drop queued items whose deadline has passed (lock held).

        Expired items are handed to ``on_expired`` so the engine can
        fail their futures with ``DeadlineExceededError``; the callback
        runs under the batcher lock and must not call back in.
        """
        if not self._track_deadlines or not self._lanes:
            return
        now = self._clock()
        expired: List[Batchable] = []
        for key in list(self._lanes):
            lane = self._lanes[key]
            kept: Deque[Batchable] = deque()
            for item in lane:
                deadline = getattr(item, "deadline_at", None)
                if deadline is not None and now >= deadline:
                    expired.append(item)
                else:
                    kept.append(item)
            if len(kept) != len(lane):
                if kept:
                    self._lanes[key] = kept
                else:
                    del self._lanes[key]
        if expired:
            self._size -= len(expired)
            self._cond.notify_all()
            if self._on_expired is not None:
                self._on_expired(expired)

    def next_batch(self, timeout: Optional[float] = None) -> Optional[List[Batchable]]:
        """Block until a batch is ready and return it.

        Returns ``None`` when the batcher is closed and fully drained
        (the worker's exit signal) and ``[]`` on timeout with nothing
        queued.  May return fewer than ``max_batch_size`` requests when
        the delay deadline fires first.  Requests whose ``deadline_at``
        has passed are evicted (via ``on_expired``), never returned.

        Each lane is *claimed* by exactly one worker while its batch
        fills; without the claim, every worker waiting on the same
        deadline would slice the lane into fragments, defeating the
        point of batching.
        """
        with self._cond:
            # One timeout budget for the whole call: computed exactly
            # once, so losing a claimed lane to pop_all() or deadline
            # eviction and looping again never restarts the clock.
            wait_until = None if timeout is None else self._clock() + timeout
            while True:
                # Phase 1: wait for a lane nobody else is assembling.
                while True:
                    self._evict_expired()
                    key = self._oldest_unclaimed_lane()
                    if key is not None:
                        break
                    if self._closed and self._size == 0:
                        return None
                    remaining = (
                        None if wait_until is None else wait_until - self._clock()
                    )
                    if remaining is not None and remaining <= 0:
                        return []
                    self._cond.wait(remaining)

                # Phase 2: let the claimed lane fill until full or deadline.
                self._claims.add(key)
                try:
                    deadline = (
                        self._lanes[key][0].enqueued_at
                        + self.policy.max_delay_ms / 1000.0
                    )
                    while not self._closed:
                        lane = self._lanes.get(key)
                        if lane is None or len(lane) >= self.policy.max_batch_size:
                            break
                        remaining = deadline - self._clock()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)

                    # evict items that expired while the batch filled,
                    # then re-check: pop_all() or eviction may have
                    # drained the lane entirely while we waited.
                    self._evict_expired()
                    lane = self._lanes.get(key)
                    if not lane:
                        continue
                    take = min(self.policy.max_batch_size, len(lane))
                    batch = [lane.popleft() for _ in range(take)]
                    if not lane:
                        del self._lanes[key]
                    self._size -= take
                    return batch
                finally:
                    self._claims.discard(key)
                    self._cond.notify_all()
