"""Multi-process sharded serving: one front-end, N model replicas.

The in-process :class:`~repro.serve.InferenceServer` is capped by the
GIL for everything that is not BLAS; this module shards the fleet
across worker *processes* instead.  One front-end process keeps the
whole admission story — the bounded :class:`~repro.serve.Batcher` with
its per-lane micro-batching, deadlines, degrade rerouting and
backpressure — and N replica processes each run a frozen
:class:`~repro.core.QuantizedNetwork` with a resolved backend.  Batches
cross the process boundary through preallocated
``multiprocessing.shared_memory`` slots (:mod:`repro.serve.ipc`), so
the per-batch cost is one memcpy each way plus a tiny pickled
descriptor; replicas build their servables from the same seed,
calibration budget and backend as a single-process server, which makes
fleet responses bitwise identical to in-process serving.

Topology::

    clients ──submit()──► Batcher lanes ──► dispatcher threads (1/replica)
                                              │  shared-memory slot write
                                              ▼
                                      replica process pool
                                              │  logits in the same slot
                                              ▼
                          receiver threads ──► futures / ServerStats

Routing: ``shared`` (default) lets every replica's dispatcher pull
from one batcher — work-stealing, best aggregate throughput; ``hash``
gives each replica its own batcher and routes each ``(network,
precision)`` lane to a replica on a consistent-hash ring with virtual
nodes, so a model's traffic sticks to a replica (warm caches) and
adding replicas only remaps ~1/N of lanes.

Failure model: every replica sends heartbeats; the monitor thread
detects process death (or a wedged replica via heartbeat staleness),
terminates what is left, resets the shared-memory ring, *resubmits*
the in-flight batches through :meth:`Batcher.requeue` (bounded by
``max_resubmits`` per request, then
:class:`~repro.errors.ReplicaCrashError`), and respawns the replica —
which rejoins on whatever artifact it was last told to serve.  Chaos
runs kill replicas for real (``os._exit`` via the ``replica.crash``
fault site) and assert zero lost futures.

Segment lifetime is owned exclusively by the front-end: ``stop()``
unlinks every slot, and an optional SIGTERM/atexit emergency path
(enabled by the CLI) unlinks without taking locks so ``kill <pid>``
cannot leak ``/dev/shm`` entries.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import multiprocessing
import os
import queue
import secrets
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    ConfigurationError,
    FleetNotReadyError,
    ReplicaCrashError,
    ServerClosedError,
    ServerOverloadedError,
    ServingError,
)
from repro.obs.metrics import get_metrics
from repro.resilience.degrade import DegradePolicy
from repro.serve.batcher import Batcher, BatchPolicy
from repro.serve.ipc import TensorRing
from repro.serve.replica import ReplicaConfig, replica_main
from repro.serve.request import (
    InferenceRequest,
    InferenceResult,
    ModelKey,
    PendingRequest,
    ServeFuture,
)
from repro.serve.stats import ServerStats, StatsReport, merge_reports
from repro.zoo.registry import NETWORK_BUILDERS

__all__ = ["FleetConfig", "FleetServer", "FleetReport", "ReplicaStatus"]


def _max_image_floats() -> int:
    """Largest per-image element count over every registered network."""
    return max(
        int(np.prod(info.input_shape)) for info in NETWORK_BUILDERS.values()
    )


@dataclass
class FleetConfig:
    """Shape and policies of one serving fleet."""

    replicas: int = 2
    ring_slots: int = 2               # in-flight batches per replica
    max_batch_size: int = 32
    max_delay_ms: float = 2.0
    max_queue_depth: int = 256
    routing: str = "shared"           # "shared" (work stealing) | "hash"
    seed: int = 0
    backend: Optional[str] = None
    calibration_images: int = 128
    memory_budget_kb: float = 16384.0
    weight_paths: Dict[str, str] = field(default_factory=dict)
    #: (network, precision) pairs every replica warms before ready
    warm: List[Tuple[str, str]] = field(default_factory=list)
    #: serve this registry artifact: (root, channel, digest, version)
    startup_artifact: Optional[Tuple[str, str, str, int]] = None
    start_method: str = "spawn"
    startup_timeout_s: float = 180.0
    heartbeat_s: float = 0.25
    heartbeat_timeout_s: float = 30.0
    max_resubmits: int = 3
    chaos_seed: Optional[int] = None
    #: deterministic chaos: (replica index, batches before it dies once)
    crash_replica_after: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        if self.ring_slots < 1:
            raise ConfigurationError("ring_slots must be >= 1")
        if self.routing not in ("shared", "hash"):
            raise ConfigurationError(
                f"routing must be 'shared' or 'hash', got {self.routing!r}"
            )


@dataclass(frozen=True)
class ReplicaStatus:
    """Point-in-time front-end view of one replica."""

    index: int
    pid: Optional[int]
    ready: bool
    incarnation: int
    restarts: int
    completed: int
    failed: int
    artifact_digest: Optional[str]
    artifact_version: Optional[int]


@dataclass(frozen=True)
class FleetReport:
    """Fleet-wide stats: end-to-end view plus the merged replica view."""

    aggregate: StatsReport            # front-end, end-to-end latencies
    replica_compute: StatsReport      # merged replica-side (compute-only)
    replicas: Dict[int, ReplicaStatus]
    restarts: int
    resubmissions: int

    def format(self) -> str:
        lines = [self.aggregate.format()]
        lines.append(
            f"fleet                  : {len(self.replicas)} replicas, "
            f"{self.restarts} restarts, {self.resubmissions} resubmissions"
        )
        for index in sorted(self.replicas):
            status = self.replicas[index]
            artifact = (
                f" artifact {str(status.artifact_digest)[:12]}"
                f"/v{status.artifact_version}"
                if status.artifact_digest else ""
            )
            lines.append(
                f"  replica {index}            : "
                f"{'ready' if status.ready else 'down'} "
                f"pid {status.pid} inc {status.incarnation} "
                f"({status.completed} ok, {status.failed} failed, "
                f"{status.restarts} restarts){artifact}"
            )
        return "\n".join(lines)


class _ReplicaHandle:
    """Front-end bookkeeping for one replica slot in the fleet."""

    def __init__(self, index: int, ring: TensorRing):
        self.index = index
        self.ring = ring
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None
        self.send_lock = threading.Lock()
        self.lock = threading.Lock()
        self.ready = threading.Event()
        self.init_error: Optional[BaseException] = None
        self.receiver: Optional[threading.Thread] = None
        self.incarnation = 0
        self.restarts = 0
        #: bumped by crash recovery; a dispatcher that acquired a slot
        #: under an older epoch must drop it — the ring was reset
        self.epoch = 0
        self.last_seen = time.monotonic()
        #: seq -> (slot index, pendings, dispatched_at)
        self.in_flight: Dict[int, Tuple[int, List[PendingRequest], float]] = {}
        self.completed = 0
        self.failed = 0
        self.latencies_ms: List[float] = []
        self.control_replies: "queue.Queue[dict]" = queue.Queue()
        self.final_report: Optional[StatsReport] = None
        self.final_samples: Tuple[List[float], List[float]] = ([], [])
        self.artifact: Optional[Tuple[str, str, str, int]] = None  # desired
        self.dead = False

    def send(self, message: dict) -> None:
        with self.send_lock:
            self.conn.send(message)

    def record_result(self, latency_ms: float) -> None:
        with self.lock:
            self.completed += 1
            self.latencies_ms.append(latency_ms)
            if len(self.latencies_ms) > 65536:
                del self.latencies_ms[:32768]

    def record_failed(self, count: int) -> None:
        with self.lock:
            self.failed += count


class FleetServer:
    """Admission front-end over N replica processes.

    Drop-in for :class:`~repro.serve.InferenceServer` on the client
    side: ``start`` / ``submit`` / ``report`` / ``stop`` and the
    context-manager protocol behave identically, so
    :func:`repro.serve.run_closed_loop` drives either engine.
    """

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        degrade: Optional[DegradePolicy] = None,
        admission=None,
    ):
        self.config = config or FleetConfig()
        self.degrade = degrade
        self.admission = admission
        self.stats = ServerStats()
        self.metrics = get_metrics()
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._ids = itertools.count()
        self._seqs = itertools.count()
        self._started = False
        self._stopped = False
        self._stopping = False
        self._token = None
        self._handles: List[_ReplicaHandle] = []
        self._dispatchers: List[threading.Thread] = []
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._batchers: List[Batcher] = []
        self._hash_ring: List[Tuple[int, int]] = []
        self._restarts = 0
        self._resubmissions = 0
        self._state_lock = threading.Lock()
        self._sigterm_installed = False
        self._previous_sigterm = None
        self._atexit_registered = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, install_signal_handler: bool = False) -> "FleetServer":
        if self._started:
            raise ConfigurationError("fleet already started")
        if self._stopped:
            raise ConfigurationError("fleet cannot be restarted after stop")
        self._started = True
        config = self.config
        image_floats = _max_image_floats()

        n_batchers = config.replicas if config.routing == "hash" else 1
        policy_args = dict(
            max_batch_size=config.max_batch_size,
            max_delay_ms=config.max_delay_ms,
        )
        self._batchers = [
            Batcher(
                BatchPolicy(**policy_args),
                max_queue_depth=config.max_queue_depth,
                on_expired=self._expire_pending,
            )
            for _ in range(n_batchers)
        ]
        if config.routing == "hash":
            self._hash_ring = self._build_hash_ring(config.replicas)

        self._token = secrets.token_hex(4)
        for index in range(config.replicas):
            ring = TensorRing.for_batches(
                index, config.ring_slots, config.max_batch_size,
                image_floats, token=self._token,
            )
            handle = _ReplicaHandle(index, ring)
            handle.artifact = config.startup_artifact
            self._handles.append(handle)

        if install_signal_handler:
            self._install_signal_handler()
        # Always registered: a fleet abandoned without stop() (a raised
        # exception between start and stop, say) must still leave
        # /dev/shm clean at interpreter exit.  Cheap and idempotent —
        # after a normal stop() there is nothing left to clean.
        atexit.register(self._emergency_cleanup)
        self._atexit_registered = True

        for handle in self._handles:
            self._spawn(handle, incarnation=0)

        deadline = time.monotonic() + config.startup_timeout_s
        for handle in self._handles:
            while not handle.ready.wait(timeout=0.05):
                died = handle.dead or (
                    handle.process is not None
                    and not handle.process.is_alive()
                )
                if died or time.monotonic() > deadline:
                    error = handle.init_error
                    self._emergency_cleanup()
                    if error is not None:
                        raise FleetNotReadyError(
                            f"replica {handle.index} failed to initialize"
                        ) from error
                    if died:
                        raise FleetNotReadyError(
                            f"replica {handle.index} died during startup"
                        )
                    raise FleetNotReadyError(
                        f"replica {handle.index} not ready within "
                        f"{config.startup_timeout_s:.0f}s"
                    )
            if handle.init_error is not None:
                error = handle.init_error
                self._emergency_cleanup()
                raise FleetNotReadyError(
                    f"replica {handle.index} failed to initialize"
                ) from error

        for handle in self._handles:
            thread = threading.Thread(
                target=self._dispatch_loop, args=(handle,),
                name=f"fleet-dispatch-{handle.index}", daemon=True,
            )
            thread.start()
            self._dispatchers.append(thread)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()
        self.metrics.gauge("fleet.replicas_ready").set(len(self._handles))
        return self

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- spawning -------------------------------------------------------
    def _replica_config(self, handle: _ReplicaHandle,
                        incarnation: int) -> ReplicaConfig:
        config = self.config
        crash_after = None
        if (
            config.crash_replica_after is not None
            and config.crash_replica_after[0] == handle.index
        ):
            crash_after = config.crash_replica_after[1]
        return ReplicaConfig(
            index=handle.index,
            segment_names=handle.ring.segment_names(),
            input_bytes=handle.ring.input_bytes,
            seed=config.seed,
            backend=config.backend,
            calibration_images=config.calibration_images,
            memory_budget_kb=config.memory_budget_kb,
            weight_paths=dict(config.weight_paths),
            warm_keys=list(config.warm),
            startup_artifact=handle.artifact,
            heartbeat_s=config.heartbeat_s,
            chaos_seed=config.chaos_seed,
            incarnation=incarnation,
            crash_after_batches=crash_after,
        )

    def _spawn(self, handle: _ReplicaHandle, incarnation: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=replica_main,
            args=(self._replica_config(handle, incarnation), child_conn),
            name=f"fleet-replica-{handle.index}",
            daemon=True,
        )
        handle.conn = parent_conn
        handle.process = process
        handle.incarnation = incarnation
        handle.init_error = None
        handle.dead = False
        handle.last_seen = time.monotonic()
        process.start()
        child_conn.close()
        receiver = threading.Thread(
            target=self._recv_loop, args=(handle, parent_conn),
            name=f"fleet-recv-{handle.index}-{incarnation}", daemon=True,
        )
        handle.receiver = receiver
        receiver.start()

    # -- signal/atexit emergency path ----------------------------------
    def _install_signal_handler(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return

        def _on_sigterm(signum, frame):  # pragma: no cover - signal path
            self._emergency_cleanup()
            os._exit(128 + signal.SIGTERM)

        self._previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
        self._sigterm_installed = True

    def _emergency_cleanup(self) -> None:
        """Terminate replicas and unlink segments without taking locks.

        Safe to call from a signal handler or atexit: every operation
        is lock-free and idempotent, so a front-end killed mid-dispatch
        still leaves ``/dev/shm`` clean.
        """
        for handle in self._handles:
            process = handle.process
            if process is not None and process.is_alive():
                try:
                    process.terminate()
                except Exception:
                    pass
        for handle in self._handles:
            try:
                handle.ring.unlink()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _build_hash_ring(replicas: int, vnodes: int = 64) -> List[Tuple[int, int]]:
        ring = []
        for index in range(replicas):
            for vnode in range(vnodes):
                digest = hashlib.sha256(
                    f"replica-{index}-vnode-{vnode}".encode()
                ).digest()
                ring.append((int.from_bytes(digest[:8], "big"), index))
        ring.sort()
        return ring

    def _route(self, key: ModelKey) -> int:
        """Replica index owning this lane on the consistent-hash ring."""
        point = int.from_bytes(
            hashlib.sha256(
                f"{key.network}@{key.precision}".encode()
            ).digest()[:8],
            "big",
        )
        for marker, index in self._hash_ring:
            if marker >= point:
                return index
        return self._hash_ring[0][1]

    def _batcher_for_replica(self, index: int) -> Batcher:
        if self.config.routing == "hash":
            return self._batchers[index]
        return self._batchers[0]

    def _batcher_for_key(self, key: ModelKey) -> Batcher:
        if self.config.routing == "hash":
            return self._batchers[self._route(key)]
        return self._batchers[0]

    # ------------------------------------------------------------------
    # Client API (mirrors InferenceServer)
    # ------------------------------------------------------------------
    def submit(
        self,
        image: np.ndarray,
        network: str,
        precision: str,
        deadline_ms: Optional[float] = None,
    ) -> ServeFuture:
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 3:
            raise ConfigurationError(
                f"expected one CHW image, got shape {image.shape}"
            )
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError("deadline_ms must be positive")
        if self.admission is not None and not self.admission.try_acquire():
            self.stats.record_throttled()
            raise ServerOverloadedError(
                "admission controller is throttling; retry later"
            )
        degraded = False
        if self.degrade is not None:
            depth = sum(b.depth() for b in self._batchers)
            routed = self.degrade.route(precision, depth)
            if routed != precision:
                precision = routed
                degraded = True
        now = time.monotonic()
        request = InferenceRequest(
            image=image,
            model_key=ModelKey(network=network, precision=precision),
            request_id=next(self._ids),
            enqueued_at=now,
            deadline_at=None if deadline_ms is None else now + deadline_ms / 1e3,
        )
        future = ServeFuture()
        pending = PendingRequest(request=request, future=future)
        try:
            self._batcher_for_key(request.model_key).put(pending)
        except Exception:
            self.stats.record_rejection()
            raise
        self.stats.record_admission()
        if degraded:
            self.stats.record_degraded()
        return future

    @property
    def batchers(self) -> List[Batcher]:
        """Every front-end batcher (one per hash lane, or a single shared
        queue) — the uniform surface the control loop actuates.  Note the
        fleet's ring slots are sized by ``config.max_batch_size``, so a
        batch knob applied here must never exceed that bound."""
        return list(self._batchers)

    def report(self) -> StatsReport:
        return self.stats.report()

    def fleet_report(self) -> FleetReport:
        replica_reports: List[StatsReport] = []
        replica_samples: List[Tuple[List[float], List[float]]] = []
        statuses: Dict[int, ReplicaStatus] = {}
        for handle in self._handles:
            if handle.final_report is not None:
                replica_reports.append(handle.final_report)
                replica_samples.append(handle.final_samples)
            with handle.lock:
                statuses[handle.index] = ReplicaStatus(
                    index=handle.index,
                    pid=None if handle.process is None else handle.process.pid,
                    ready=handle.ready.is_set(),
                    incarnation=handle.incarnation,
                    restarts=handle.restarts,
                    completed=handle.completed,
                    failed=handle.failed,
                    artifact_digest=(
                        handle.artifact[2] if handle.artifact else None
                    ),
                    artifact_version=(
                        handle.artifact[3] if handle.artifact else None
                    ),
                )
        return FleetReport(
            aggregate=self.report(),
            replica_compute=merge_reports(replica_reports, replica_samples),
            replicas=statuses,
            restarts=self._restarts,
            resubmissions=self._resubmissions,
        )

    def replica_metrics(self) -> Dict[int, Dict[str, object]]:
        """Per-replica live counters (the canary controller's input)."""
        out: Dict[int, Dict[str, object]] = {}
        for handle in self._handles:
            with handle.lock:
                out[handle.index] = {
                    "completed": handle.completed,
                    "failed": handle.failed,
                    "latencies_ms": list(handle.latencies_ms),
                    "restarts": handle.restarts,
                    "ready": handle.ready.is_set(),
                }
        return out

    def ready_replicas(self) -> int:
        return sum(1 for handle in self._handles if handle.ready.is_set())

    @property
    def restarts(self) -> int:
        return self._restarts

    @property
    def resubmissions(self) -> int:
        return self._resubmissions

    # ------------------------------------------------------------------
    # Canary/deploy control plane
    # ------------------------------------------------------------------
    def deploy_to(
        self,
        indices: Sequence[int],
        root: str,
        channel: str,
        digest: str,
        version: int,
        sabotage: bool = False,
        timeout_s: float = 120.0,
    ) -> None:
        """Install a registry artifact on a subset of replicas.

        Blocks until every addressed replica acks the deploy (it builds
        and calibrates in its own process, then swaps its local store —
        the same zero-downtime contract as ``Deployer.rollout``).  A
        ``deploy_error`` reply raises :class:`ServingError` chaining the
        replica's exception.  ``sabotage`` arms forward-path faults on
        the addressed replicas; chaos tests use it to force a canary
        regression.
        """
        for index in indices:
            handle = self._handles[index]
            handle.send({
                "type": "deploy", "root": root, "digest": digest,
                "version": version, "sabotage": sabotage,
            })
        deadline = time.monotonic() + timeout_s
        for index in indices:
            handle = self._handles[index]
            remaining = max(deadline - time.monotonic(), 0.01)
            try:
                reply = handle.control_replies.get(timeout=remaining)
            except queue.Empty:
                raise ServingError(
                    f"replica {index} did not ack deploy of "
                    f"{digest[:12]} within {timeout_s:.0f}s"
                ) from None
            if reply.get("type") == "deploy_error":
                raise ServingError(
                    f"replica {index} failed to deploy {digest[:12]}"
                ) from reply.get("error")
            handle.artifact = (root, channel, digest, version)
        self.metrics.counter("fleet.deploys").inc(len(indices))

    def kill_replica(self, index: int) -> None:
        """SIGKILL one replica (chaos/testing); the monitor respawns it."""
        process = self._handles[index].process
        if process is not None and process.pid is not None:
            try:
                os.kill(process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass

    # ------------------------------------------------------------------
    # Dispatch / receive / monitor threads
    # ------------------------------------------------------------------
    def _expire_pending(self, expired: List[PendingRequest]) -> None:
        from repro.errors import DeadlineExceededError

        for pending in expired:
            pending.future.set_exception(
                DeadlineExceededError(
                    f"request {pending.request.request_id} missed its "
                    "deadline before a replica picked it up"
                )
            )
        self.stats.record_deadline_expired(len(expired))

    def _total_in_flight(self) -> int:
        total = 0
        for handle in self._handles:
            with handle.lock:
                total += len(handle.in_flight)
        return total

    def _dispatch_loop(self, handle: _ReplicaHandle) -> None:
        batcher = self._batcher_for_replica(handle.index)
        while True:
            if not handle.ready.wait(timeout=0.05):
                if self._stopped:
                    return
                continue
            batch = batcher.next_batch(timeout=0.05)
            if batch is None:
                # closed and drained — but crash recovery may requeue
                # in-flight work, so only exit once nothing is pending
                if self._total_in_flight() == 0:
                    return
                time.sleep(0.005)
                continue
            if not batch:
                continue
            self._dispatch(handle, batch)  # type: ignore[arg-type]

    def _dispatch(self, handle: _ReplicaHandle,
                  batch: List[PendingRequest]) -> None:
        ring = handle.ring
        images = np.stack(
            [pending.request.image for pending in batch], axis=0
        )
        key = batch[0].model_key
        while True:
            if handle.dead or not handle.ready.is_set():
                # never dispatched, so no resubmission penalty: hand the
                # batch back for this dispatcher (once the replica
                # rejoins) or a peer to pick up
                self._batcher_for_key(key).requeue(batch)
                return
            epoch = handle.epoch
            slot = ring.acquire(timeout=0.25)
            if slot is None:
                if self._stopped:
                    self._resubmit(batch)
                    return
                continue
            with handle.lock:
                if handle.epoch != epoch or handle.dead:
                    # crash recovery reset the ring between acquire and
                    # here; the slot claim is void, try again
                    try:
                        ring.release(slot)
                    except ConfigurationError:
                        pass
                    continue
                seq = next(self._seqs)
                dispatched_at = time.monotonic()
                try:
                    desc = ring.write_batch(slot, images)
                    handle.in_flight[seq] = (slot, batch, dispatched_at)
                    handle.send({
                        "type": "infer",
                        "seq": seq,
                        "slot": desc.slot,
                        "n": desc.n,
                        "shape": desc.shape,
                        "dtype": desc.dtype,
                        "network": key.network,
                        "precision": key.precision,
                    })
                    ring.mark_inflight(slot)
                except (BrokenPipeError, OSError, EOFError):
                    # replica died under us: reclaim the batch; the
                    # monitor handles the respawn
                    handle.in_flight.pop(seq, None)
                    try:
                        ring.release(slot)
                    except ConfigurationError:
                        pass
                    self._resubmit(batch)
                    return
            self.metrics.counter("fleet.dispatched_batches").inc()
            return

    def _recv_loop(self, handle: _ReplicaHandle, conn) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                handle.dead = True
                return
            handle.last_seen = time.monotonic()
            kind = message.get("type")
            if kind == "heartbeat":
                continue
            if kind == "ready":
                handle.ready.set()
                self.metrics.gauge("fleet.replicas_ready").set(
                    self.ready_replicas()
                )
                continue
            if kind == "init_error":
                handle.init_error = message.get("error")
                handle.dead = True  # the starter polls this flag
                return
            if kind in ("deployed", "deploy_error"):
                handle.control_replies.put(message)
                continue
            if kind == "stats":
                handle.final_report = message.get("report")
                handle.final_samples = (
                    message.get("latencies_ms", []),
                    message.get("queue_ms", []),
                )
                continue
            if kind == "done":
                self._complete(handle, message)
            elif kind == "error":
                self._fail(handle, message)

    def _pop_in_flight(
        self, handle: _ReplicaHandle, seq: int
    ) -> Optional[Tuple[int, List[PendingRequest], float]]:
        with handle.lock:
            return handle.in_flight.pop(seq, None)

    def _complete(self, handle: _ReplicaHandle, message: dict) -> None:
        entry = self._pop_in_flight(handle, int(message["seq"]))
        if entry is None:
            return  # already reclaimed by crash recovery
        slot, batch, dispatched_at = entry
        finished_at = time.monotonic()
        try:
            logits = handle.ring.read_output(
                slot, int(message["n"]), int(message["n_out"]),
                str(message["dtype"]),
            )
        except (ConfigurationError, ServingError) as error:
            handle.ring.release(slot)
            for pending in batch:
                pending.future.set_exception(error)
            self.stats.record_failure(len(batch))
            handle.record_failed(len(batch))
            return
        handle.ring.release(slot)
        queue_depth = sum(b.depth() for b in self._batchers)
        self.stats.record_batch(len(batch), queue_depth)
        digest = message.get("registry_digest")
        if digest:
            key = batch[0].model_key
            self.stats.record_artifact(
                f"{key.network}@{key.precision}", digest,
                message.get("registry_version"),
            )
        energy = float(message.get("energy_uj_per_image", 0.0))
        for row, pending in enumerate(batch):
            request = pending.request
            result = InferenceResult(
                request_id=request.request_id,
                logits=logits[row].copy(),
                model_key=request.model_key,
                batch_size=len(batch),
                queue_ms=(dispatched_at - request.enqueued_at) * 1e3,
                latency_ms=(finished_at - request.enqueued_at) * 1e3,
                energy_uj=energy,
            )
            self.stats.record_completion(
                latency_ms=result.latency_ms,
                queue_ms=result.queue_ms,
                energy_uj=energy,
            )
            handle.record_result(result.latency_ms)
            pending.future.set_result(result)
        self.metrics.counter("fleet.completed_batches").inc()

    def _fail(self, handle: _ReplicaHandle, message: dict) -> None:
        entry = self._pop_in_flight(handle, int(message["seq"]))
        if entry is None:
            return
        slot, batch, _ = entry
        try:
            handle.ring.release(slot)
        except ConfigurationError:
            pass
        error = message.get("error") or ServingError(
            f"replica {handle.index} failed a batch"
        )
        for pending in batch:
            pending.future.set_exception(error)
        self.stats.record_failure(len(batch))
        handle.record_failed(len(batch))

    def _resubmit(self, batch: List[PendingRequest]) -> None:
        """Requeue reclaimed requests, bounded per request."""
        survivors: List[PendingRequest] = []
        for pending in batch:
            pending.resubmits += 1
            if pending.resubmits > self.config.max_resubmits:
                pending.future.set_exception(ReplicaCrashError(
                    f"request {pending.request.request_id} lost its "
                    f"replica {pending.resubmits} times "
                    f"(budget {self.config.max_resubmits})"
                ))
                self.stats.record_failure()
            else:
                survivors.append(pending)
        if survivors:
            key = survivors[0].model_key
            self._batcher_for_key(key).requeue(survivors)
            self._resubmissions += len(survivors)
            self.metrics.counter("fleet.resubmitted_requests").inc(
                len(survivors)
            )

    # -- crash detection ------------------------------------------------
    def _monitor_loop(self) -> None:
        interval = min(0.05, self.config.heartbeat_s)
        while not self._monitor_stop.wait(interval):
            for handle in self._handles:
                if self._monitor_stop.is_set():
                    return
                self._check_replica(handle)

    def _check_replica(self, handle: _ReplicaHandle) -> None:
        process = handle.process
        if process is None:
            return
        alive = process.is_alive()
        stale = (
            handle.ready.is_set()
            and self.config.heartbeat_timeout_s > 0
            and time.monotonic() - handle.last_seen
            > self.config.heartbeat_timeout_s
        )
        if alive and not handle.dead and not stale:
            return
        if not handle.ready.is_set() and alive and not handle.dead:
            return  # still starting up
        with self._state_lock:
            # re-check under the lock; another pass may have respawned
            if handle.process is not process:
                return
            self._recover_replica(handle, reason="stale" if stale else "died")

    def _recover_replica(self, handle: _ReplicaHandle, reason: str) -> None:
        handle.dead = True
        handle.ready.clear()
        self.metrics.gauge("fleet.replicas_ready").set(self.ready_replicas())
        process = handle.process
        if process is not None and process.is_alive():
            process.terminate()
        if process is not None:
            process.join(timeout=5.0)
        try:
            handle.conn.close()
        except Exception:
            pass
        # The receiver must be gone before the ring is reset: it may
        # still be draining done-messages the dead replica buffered,
        # and those touch slot states.
        if handle.receiver is not None and (
            handle.receiver is not threading.current_thread()
        ):
            handle.receiver.join(timeout=5.0)
        with handle.lock:
            handle.epoch += 1
            reclaimed = list(handle.in_flight.values())
            handle.in_flight.clear()
            handle.ring.reset()
        for _slot, batch, _at in reclaimed:
            self._resubmit(batch)
        handle.restarts += 1
        self._restarts += 1
        self.metrics.counter("fleet.replica_restarts").inc()
        if self._stopping or self._stopped:
            return
        self._spawn(handle, incarnation=handle.incarnation + 1)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admissions, drain (default) or fail queued work, tear
        down replicas, and unlink every shared-memory segment."""
        if self._stopped:
            return
        self._stopping = True
        for batcher in self._batchers:
            batcher.close()
        if not drain:
            abandoned: List[PendingRequest] = []
            for batcher in self._batchers:
                abandoned.extend(batcher.pop_all())  # type: ignore[arg-type]
            for pending in abandoned:
                pending.future.set_exception(
                    ServerClosedError("server stopped before this request ran")
                )
            if abandoned:
                self.stats.record_failure(len(abandoned))
        deadline = (
            time.monotonic() + timeout if timeout is not None
            else time.monotonic() + 120.0
        )
        # wait for queues + in-flight work to drain
        while time.monotonic() < deadline:
            queued = sum(b.depth() for b in self._batchers)
            if queued == 0 and self._total_in_flight() == 0:
                break
            time.sleep(0.01)
        self._stopped = True
        for thread in self._dispatchers:
            thread.join(timeout=2.0)
        self._monitor_stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        # now tear down replicas and collect their final stats
        with self._state_lock:
            for handle in self._handles:
                try:
                    handle.send({"type": "stop"})
                except Exception:
                    pass
            for handle in self._handles:
                if handle.process is not None:
                    handle.process.join(timeout=10.0)
                    if handle.process.is_alive():
                        handle.process.terminate()
                        handle.process.join(timeout=5.0)
                if handle.receiver is not None:
                    handle.receiver.join(timeout=2.0)
                handle.ring.close()
                handle.ring.unlink()
        if self._sigterm_installed and (
            threading.current_thread() is threading.main_thread()
        ):
            try:
                signal.signal(signal.SIGTERM, self._previous_sigterm)
            except (ValueError, TypeError):
                pass
            self._sigterm_installed = False
        self.metrics.gauge("fleet.replicas_ready").set(0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FleetServer(replicas={self.config.replicas}, "
            f"routing={self.config.routing!r}, "
            f"ready={self.ready_replicas()})"
        )
