"""Zero-copy tensor handoff between the fleet front-end and replicas.

Batches cross the process boundary through
:mod:`multiprocessing.shared_memory`: the front-end writes the stacked
input images into a preallocated segment, sends only a tiny descriptor
(slot index, batch size, shape) over the control pipe, and the replica
maps the same bytes as a numpy view — no pickling, no per-batch
allocation, one memcpy on each side of the forward pass.

Each replica owns a small :class:`TensorRing` of fixed-size *slots*.
A slot is one shared-memory segment laid out as ``[input region |
output region]``; the replica writes the logits into the output region
of the very slot the inputs arrived in, so a round trip touches exactly
one segment.  Slot ownership is tracked front-end-side with the same
explicit state discipline as the fused kernels' workspace buffers
(``repro.kernels.workspace``):

``FREE``
    nobody may touch the bytes; acquirable by the dispatcher.
``LOADED``
    the front-end wrote inputs and is about to dispatch; the replica
    must not read yet.
``INFLIGHT``
    the replica owns the bytes (reading inputs, writing outputs); the
    front-end must not write.

Transitions are one-way per cycle (FREE -> LOADED -> INFLIGHT -> FREE)
and violations raise :class:`~repro.errors.ConfigurationError` instead
of silently racing.

The *front-end* is the single owner of segment lifetime: it creates
every segment and it alone unlinks them (on ``stop``, on replica
respawn the same segments are reused, and a SIGTERM/atexit emergency
path unlinks without taking locks).  Replicas only attach, and
explicitly unregister the attachment from their ``resource_tracker``
so a dying replica can never unlink segments the front-end still
serves from — the classic double-unlink wart of pre-3.13 CPython.

:func:`scan_segments` lists live segments under this module's naming
prefix; the shared-memory lifecycle regression tests scan before and
after fleet runs to prove nothing leaks in ``/dev/shm``.
"""

from __future__ import annotations

import os
import secrets
import threading
import time
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ServingError

__all__ = [
    "SEGMENT_PREFIX",
    "SlotState",
    "SlotDescriptor",
    "TensorRing",
    "ReplicaRing",
    "scan_segments",
]

#: Every fleet segment name starts with this, so a ``/dev/shm`` scan can
#: attribute leaks to us (and to nothing else).
SEGMENT_PREFIX = "reprofleet"

#: Bytes reserved per image for the replica's logits (any dtype).
OUTPUT_BYTES_PER_IMAGE = 512


class SlotState:
    """Ownership states of one ring slot (front-end bookkeeping)."""

    FREE = "free"
    LOADED = "loaded"          # front-end wrote inputs, not yet dispatched
    INFLIGHT = "inflight"      # replica owns the bytes


@dataclass(frozen=True)
class SlotDescriptor:
    """What crosses the control pipe instead of the tensors themselves."""

    slot: int
    n: int                         # batch size
    shape: Tuple[int, ...]         # per-image CHW shape
    dtype: str                     # input dtype string, e.g. "float32"


def _segment_name(token: str, replica: int, slot: int) -> str:
    return f"{SEGMENT_PREFIX}_{token}_r{replica}_s{slot}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    On CPython < 3.13 (no ``track=False``), attaching registers the
    segment with the resource tracker — and spawned children share the
    parent's tracker process, so a replica's registration (or a later
    unregister) clobbers the front-end's own bookkeeping: the classic
    double-unlink wart.  Only the front-end may own segment lifetime,
    so replicas attach with registration suppressed entirely.
    """
    try:  # pragma: no cover - 3.13+
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


class _Slot:
    """Front-end view of one segment plus its ownership state."""

    __slots__ = ("index", "shm", "state")

    def __init__(self, index: int, shm: shared_memory.SharedMemory):
        self.index = index
        self.shm = shm
        self.state = SlotState.FREE


class TensorRing:
    """Front-end side: a ring of owned shared-memory slots for one replica.

    Args:
        replica: replica index (segment naming only).
        slots: ring depth — how many batches may be in flight to this
            replica at once; acquisition blocks when all are taken,
            which is the fleet's natural per-replica backpressure.
        input_bytes: capacity of the input region per slot.
        token: run-unique segment-name component (shared by the whole
            fleet so one scan finds every segment of a run).
    """

    def __init__(
        self,
        replica: int,
        slots: int,
        input_bytes: int,
        token: Optional[str] = None,
    ):
        if slots < 1:
            raise ConfigurationError("ring must have at least one slot")
        if input_bytes < 1:
            raise ConfigurationError("input_bytes must be positive")
        self.replica = replica
        self.token = token or secrets.token_hex(4)
        self.input_bytes = int(input_bytes)
        self.output_bytes = 0  # filled per slot below
        self._cond = threading.Condition()
        self._slots: List[_Slot] = []
        self._closed = False
        slot_bytes = self.input_bytes  # + output region, sized by caller
        self.slot_bytes = slot_bytes
        for index in range(slots):
            shm = shared_memory.SharedMemory(
                name=_segment_name(self.token, replica, index),
                create=True,
                size=slot_bytes,
            )
            self._slots.append(_Slot(index, shm))

    # -- layout ---------------------------------------------------------
    @classmethod
    def for_batches(
        cls,
        replica: int,
        slots: int,
        max_batch: int,
        image_floats: int,
        token: Optional[str] = None,
    ) -> "TensorRing":
        """Size a ring so one slot holds ``max_batch`` images + logits."""
        input_bytes = max_batch * image_floats * 4          # float32 inputs
        output_bytes = max_batch * OUTPUT_BYTES_PER_IMAGE   # any-dtype logits
        ring = cls(replica, slots, input_bytes + output_bytes, token=token)
        ring.input_bytes = input_bytes
        ring.output_bytes = output_bytes
        return ring

    def segment_names(self) -> List[str]:
        return [slot.shm.name for slot in self._slots]

    # -- ownership ------------------------------------------------------
    def acquire(self, timeout: Optional[float] = None) -> Optional[int]:
        """Claim a FREE slot (-> LOADED); ``None`` on timeout or close."""
        with self._cond:
            deadline = None if timeout is None else time.monotonic() + timeout
            while True:
                if self._closed:
                    return None
                for slot in self._slots:
                    if slot.state == SlotState.FREE:
                        slot.state = SlotState.LOADED
                        return slot.index
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._cond.wait(remaining)
                else:
                    self._cond.wait()

    def _expect(self, index: int, state: str) -> _Slot:
        slot = self._slots[index]
        if slot.state != state:
            raise ConfigurationError(
                f"ring slot {index} is {slot.state}, expected {state}"
            )
        return slot

    def write_batch(self, index: int, batch: np.ndarray) -> SlotDescriptor:
        """Copy ``batch`` (N, C, H, W) into a LOADED slot's input region."""
        slot = self._expect(index, SlotState.LOADED)
        flat = np.ascontiguousarray(batch, dtype=np.float32)
        nbytes = flat.nbytes
        if nbytes > self.input_bytes:
            raise ConfigurationError(
                f"batch needs {nbytes} B, slot input region has "
                f"{self.input_bytes} B"
            )
        view = np.frombuffer(slot.shm.buf, dtype=np.float32,
                             count=flat.size)
        view[:] = flat.reshape(-1)
        del view
        return SlotDescriptor(
            slot=index,
            n=int(batch.shape[0]),
            shape=tuple(int(d) for d in batch.shape[1:]),
            dtype="float32",
        )

    def mark_inflight(self, index: int) -> None:
        """LOADED -> INFLIGHT: the descriptor was sent to the replica."""
        with self._cond:
            self._expect(index, SlotState.LOADED).state = SlotState.INFLIGHT

    def read_output(
        self, index: int, n: int, n_out: int, dtype: str
    ) -> np.ndarray:
        """Copy the replica's logits out of an INFLIGHT slot."""
        slot = self._expect(index, SlotState.INFLIGHT)
        out_dtype = np.dtype(dtype)
        nbytes = n * n_out * out_dtype.itemsize
        if nbytes > self.output_bytes:
            raise ServingError(
                f"replica wrote {nbytes} B of logits, output region has "
                f"{self.output_bytes} B"
            )
        view = np.frombuffer(slot.shm.buf, dtype=out_dtype,
                             count=n * n_out, offset=self.input_bytes)
        logits = view.reshape(n, n_out).copy()
        del view
        return logits

    def release(self, index: int) -> None:
        """INFLIGHT/LOADED -> FREE (crash recovery may skip INFLIGHT)."""
        with self._cond:
            slot = self._slots[index]
            if slot.state == SlotState.FREE:
                raise ConfigurationError(f"ring slot {index} already free")
            slot.state = SlotState.FREE
            self._cond.notify_all()

    def reset(self) -> None:
        """Force every slot FREE — only safe once the replica is dead."""
        with self._cond:
            for slot in self._slots:
                slot.state = SlotState.FREE
            self._cond.notify_all()

    def states(self) -> Dict[int, str]:
        with self._cond:
            return {slot.index: slot.state for slot in self._slots}

    # -- lifetime -------------------------------------------------------
    def close(self) -> None:
        """Wake waiters; further acquires return ``None``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def unlink(self) -> None:
        """Destroy every segment.  Idempotent; lock-free by design so the
        SIGTERM emergency path can call it from a signal handler."""
        self._closed = True
        for slot in self._slots:
            try:
                slot.shm.close()
            except Exception:
                pass
            try:
                slot.shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass


class ReplicaRing:
    """Replica side: attach to the front-end's segments by name."""

    def __init__(self, names: List[str], input_bytes: int):
        self.input_bytes = int(input_bytes)
        self._segments: List[shared_memory.SharedMemory] = []
        for name in names:
            self._segments.append(_attach_untracked(name))

    def read_batch(self, desc: SlotDescriptor) -> np.ndarray:
        """Copy the dispatched batch out of the slot's input region."""
        shm = self._segments[desc.slot]
        count = desc.n * int(np.prod(desc.shape))
        view = np.frombuffer(shm.buf, dtype=np.dtype(desc.dtype), count=count)
        batch = view.reshape((desc.n,) + tuple(desc.shape)).copy()
        del view
        return batch

    def write_output(self, desc: SlotDescriptor, logits: np.ndarray) -> Tuple[int, str]:
        """Write logits into the slot's output region; returns (n_out, dtype)."""
        shm = self._segments[desc.slot]
        flat = np.ascontiguousarray(logits)
        view = np.frombuffer(shm.buf, dtype=flat.dtype, count=flat.size,
                             offset=self.input_bytes)
        view[:] = flat.reshape(-1)
        del view
        return int(logits.shape[1]), str(flat.dtype)

    def close(self) -> None:
        """Detach (never unlink — the front-end owns segment lifetime)."""
        for shm in self._segments:
            try:
                shm.close()
            except Exception:
                pass


def scan_segments(token: Optional[str] = None) -> List[str]:
    """Live fleet segments visible in ``/dev/shm`` (POSIX only).

    With ``token`` the scan is narrowed to one fleet run.  Returns an
    empty list on platforms without a scannable shm mount; the
    lifecycle tests skip there.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    needle = SEGMENT_PREFIX if token is None else f"{SEGMENT_PREFIX}_{token}"
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(needle))
