"""Servable cache: load, calibrate, freeze and evict quantized models.

A *servable* is a fully prepared inference artifact for one
``(network, precision)`` pair: weights loaded (via
``repro.nn.serialization``), activation ranges calibrated, quantized
parameter copies baked in via
:meth:`repro.core.QuantizedNetwork.freeze`, and the per-image modeled
energy pre-resolved from :class:`repro.hw.energy.EnergyModel`.  Each
servable owns a private network instance, so freezing never disturbs a
network the caller is training elsewhere, and worker threads can share
the frozen pipeline without synchronization.

The store keeps servables in an LRU map under a memory budget derived
from :func:`repro.hw.memory_footprint.network_memory_footprint` — the
same accounting the paper uses in Section V-B, so an int8 model costs
the cache ~4x less than its float32 twin, exactly as it would on the
accelerator's buffers.
"""

from __future__ import annotations

import functools
import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from repro.core.mixed_precision import make_quantized_network
from repro.core.precision import PrecisionSpec
from repro.core.quantized import FrozenQuantizedNetwork
from repro.data.registry import load_dataset
from repro.errors import FaultInjectedError
from repro.hw.energy import EnergyModel
from repro.hw.memory_footprint import network_memory_footprint
from repro.nn.serialization import load_network_weights, state_digest
from repro.obs.metrics import get_metrics
from repro.resilience.faults import get_injector
from repro.resilience.retry import RetryPolicy, retry_call
from repro.serve.request import ModelKey
from repro.zoo.registry import build_network, network_info

logger = logging.getLogger(__name__)

#: Errors worth a rebuilt attempt: injected chaos and transient I/O
#: (e.g. a checkpoint read hiccup).  Real configuration mistakes
#: (unknown network, bad spec) propagate on the first try.
RETRYABLE_BUILD_ERRORS: Tuple[Type[BaseException], ...] = (
    FaultInjectedError,
    OSError,
)


@dataclass
class Servable:
    """One ready-to-serve frozen model plus its accounting metadata."""

    key: ModelKey
    frozen: FrozenQuantizedNetwork
    input_shape: Tuple[int, ...]
    memory_kb: float             # paper-style footprint at this precision
    energy_uj_per_image: float   # modeled accelerator energy per inference
    weights_digest: str          # SHA-256 of the loaded float parameters
    registry_digest: Optional[str] = None   # artifact digest when deployed
    registry_version: Optional[int] = None  # channel version when deployed

    def forward(self, batch: np.ndarray) -> np.ndarray:
        return self.frozen.forward(batch)


class ModelStore:
    """LRU cache of calibrated, frozen quantized networks.

    Args:
        memory_budget_kb: evict least-recently-used servables once the
            summed footprint exceeds this (the most recent entry is
            always kept, so one oversized model still serves).
        weight_paths: optional ``network name -> .npz path`` map; names
            without an entry serve freshly initialized weights (useful
            for load testing without a training run).
        calibration_images: how many task images calibrate each model's
            activation ranges.
        calibration_data: optional ``dataset name -> images`` override;
            when absent the registry's synthetic task data is used.
        energy_model: shared :class:`EnergyModel` (reports are cached
            per (network, shape, precision) inside it).
        seed: build seed for networks served without trained weights.
        retry_policy: backoff policy for servable builds that fail with
            a :data:`RETRYABLE_BUILD_ERRORS` type (injected faults,
            transient I/O); other errors propagate immediately.

    Eviction only drops the cache's reference — workers holding a
    servable for an in-flight batch keep it alive until they finish.
    """

    def __init__(
        self,
        memory_budget_kb: float = 16384.0,
        weight_paths: Optional[Dict[str, str]] = None,
        calibration_images: int = 128,
        calibration_data: Optional[Dict[str, np.ndarray]] = None,
        energy_model: Optional[EnergyModel] = None,
        seed: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        backend: Optional[str] = None,
    ):
        self.memory_budget_kb = memory_budget_kb
        self.weight_paths = dict(weight_paths or {})
        self.calibration_images = calibration_images
        self.energy_model = energy_model or EnergyModel()
        self.seed = seed
        #: compute backend every servable is frozen onto (None = default)
        self.backend = backend
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.25
        )
        self._calibration: Dict[str, np.ndarray] = dict(calibration_data or {})
        self._entries: "OrderedDict[ModelKey, Servable]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def calibration_for(self, dataset: str) -> np.ndarray:
        """Calibration images for ``dataset`` (loaded once, then cached).

        Public because the registry's :class:`~repro.registry.Deployer`
        calibrates its background-built servables with the same images
        the store would use, so a deployed artifact and a store-built
        fallback see identical activation ranges.
        """
        if dataset not in self._calibration:
            split = load_dataset(
                dataset,
                n_train=max(self.calibration_images, 32),
                n_test=32,
                seed=self.seed,
            )
            self._calibration[dataset] = split.train.images[: self.calibration_images]
        return self._calibration[dataset]

    def _build_servable(self, key: ModelKey) -> Servable:
        get_injector().fire("store.build")
        info = network_info(key.network)
        spec = PrecisionSpec.parse(key.precision)
        network = build_network(key.network, seed=self.seed)
        if key.network in self.weight_paths:
            load_network_weights(network, self.weight_paths[key.network])
        digest = state_digest(network)
        qnet = make_quantized_network(network, spec)
        if not spec.is_float:
            qnet.calibrate(self.calibration_for(info.dataset))
        energy = self.energy_model.evaluate_cached(network, info.input_shape, spec)
        footprint = network_memory_footprint(network, info.input_shape, spec)
        return Servable(
            key=key,
            frozen=qnet.freeze(backend=self.backend),
            input_shape=info.input_shape,
            memory_kb=footprint.total_kb,
            energy_uj_per_image=energy.energy_uj,
            weights_digest=digest,
        )

    def _evict_over_budget(self) -> None:
        while len(self._entries) > 1 and self.total_memory_kb > self.memory_budget_kb:
            evicted_key, _ = self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    def get(self, network: str, precision: str) -> Servable:
        """Fetch (building and calibrating on miss) one servable.

        Misses build under the store's retry policy, so a transient
        failure (an injected fault, a flaky checkpoint read) costs a
        backoff sleep rather than failing every request in the batch
        that needed the model.
        """
        key = ModelKey(network=network, precision=precision)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            servable = retry_call(
                functools.partial(self._build_servable, key),
                policy=self.retry_policy,
                retry_on=RETRYABLE_BUILD_ERRORS,
                on_retry=self._note_build_retry,
            )
            self._entries[key] = servable
            self._evict_over_budget()
            return servable

    def install(self, servable: Servable) -> Optional[Servable]:
        """Atomically (re)place the cache entry for ``servable.key``.

        This is the zero-downtime swap slot used by
        :class:`repro.registry.Deployer`: the new servable is built and
        calibrated entirely outside the lock, then swapped in here in
        one locked assignment.  Workers that grabbed the previous
        servable for an in-flight batch keep their reference and finish
        on the old weights; every later :meth:`get` returns the new
        one.  Returns the replaced servable (``None`` on first
        install), which the caller keeps for rollback.
        """
        with self._lock:
            previous = self._entries.pop(servable.key, None)
            self._entries[servable.key] = servable
            self._evict_over_budget()
            return previous

    @staticmethod
    def _note_build_retry(attempt: int, error: BaseException) -> None:
        logger.warning(
            "model store: servable build attempt %d failed (%s); retrying",
            attempt + 1, error,
        )
        get_metrics().counter("serve.store_build_retries").inc()

    def warm(self, network: str, precision: str) -> Servable:
        """Alias for :meth:`get`, named for pre-loading before traffic."""
        return self.get(network, precision)

    # ------------------------------------------------------------------
    @property
    def total_memory_kb(self) -> float:
        return sum(entry.memory_kb for entry in self._entries.values())

    def cached_keys(self) -> List[ModelKey]:
        """LRU -> MRU order of currently cached servables."""
        with self._lock:
            return list(self._entries.keys())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ModelStore({len(self._entries)} cached, "
            f"{self.total_memory_kb:.0f}/{self.memory_budget_kb:.0f} KB)"
        )
