"""The in-process inference server: queue -> batches -> worker threads.

Workers pull micro-batches from the :class:`~repro.serve.batcher.
Batcher`, fetch the matching frozen servable from the
:class:`~repro.serve.model_store.ModelStore`, and run one forward pass
per batch.  Threads give real parallelism here because the hot path is
numpy BLAS, which releases the GIL; on a single core they still overlap
queueing with compute, and batching itself provides the dominant
speedup by amortizing python/numpy dispatch across images.

Shutdown is graceful by default: ``stop(drain=True)`` stops admissions,
lets workers finish everything queued, then joins them.  ``drain=False``
fails queued requests with :class:`~repro.errors.ServerClosedError`.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import List, Optional

import numpy as np

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServerClosedError,
    ServerOverloadedError,
    WorkerStallError,
)
from repro.resilience.degrade import DegradePolicy
from repro.resilience.faults import FaultInjector, get_injector
from repro.serve.batcher import Batcher, BatchPolicy
from repro.serve.model_store import ModelStore
from repro.serve.request import (
    InferenceRequest,
    InferenceResult,
    ModelKey,
    PendingRequest,
    ServeFuture,
)
from repro.serve.stats import ServerStats, StatsReport

# Both serving engines queue the same unit; the fleet server adds a
# resubmission count on top, which the in-process engine never touches.
_Pending = PendingRequest


class InferenceServer:
    """Batched, multi-worker serving engine with per-request energy.

    Args:
        store: servable cache (a default one is built if omitted).
        workers: worker-thread count.
        max_batch_size / max_delay_ms: dynamic-batching policy.
        max_queue_depth: bounded-queue backpressure threshold.
        degrade: optional overload router — anything with
            ``route(precision, queue_depth)``: the legacy static
            :class:`~repro.resilience.DegradePolicy` or a
            :class:`~repro.control.AutoTuner` (reroutes counted in
            ``stats.degraded``).
        admission: optional :class:`~repro.control.TokenBucket`; when
            its ``try_acquire`` fails the request is rejected with
            :class:`~repro.errors.ServerOverloadedError` before the
            queue is touched (counted in ``stats.throttled``).
        faults: explicit fault injector; defaults to the process-wide
            one (unarmed, effectively free).

    Use as a context manager for deterministic drain::

        with InferenceServer(store, workers=4) as server:
            futures = [server.submit(img, "lenet_small", "fixed8")
                       for img in images]
            results = [f.result(timeout=30.0) for f in futures]
        print(server.report().format())
    """

    def __init__(
        self,
        store: Optional[ModelStore] = None,
        workers: int = 4,
        max_batch_size: int = 32,
        max_delay_ms: float = 2.0,
        max_queue_depth: int = 256,
        degrade: Optional[DegradePolicy] = None,
        admission=None,
        faults: Optional[FaultInjector] = None,
    ):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.store = store or ModelStore()
        self.workers = workers
        self.degrade = degrade
        self.admission = admission
        self._faults = faults
        self.batcher = Batcher(
            BatchPolicy(max_batch_size=max_batch_size, max_delay_ms=max_delay_ms),
            max_queue_depth=max_queue_depth,
            on_expired=self._expire_pending,
        )
        self.stats = ServerStats()
        self._threads: List[threading.Thread] = []
        self._ids = itertools.count()
        self._started = False
        self._stopped = False

    @property
    def batchers(self) -> List[Batcher]:
        """Every batcher feeding this server (one, here) — the uniform
        surface the control loop actuates across both engines."""
        return [self.batcher]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "InferenceServer":
        if self._started:
            raise ConfigurationError("server already started")
        if self._stopped:
            raise ConfigurationError("server cannot be restarted after stop")
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop admissions; drain (default) or fail queued requests.

        ``timeout`` is one shared deadline across *all* worker joins —
        not a per-thread budget, so the total wait is bounded by
        ``timeout`` regardless of worker count.  Workers still alive at
        the deadline raise :class:`~repro.errors.WorkerStallError`
        (counted under ``serve.leaked_workers``) instead of being
        silently leaked behind a clean-looking stop.
        """
        if self._stopped:
            return
        self.batcher.close()
        if not drain:
            abandoned = self.batcher.pop_all()
            for pending in abandoned:
                pending.future.set_exception(
                    ServerClosedError("server stopped before this request ran")
                )
            if abandoned:
                self.stats.record_failure(len(abandoned))
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in self._threads:
            remaining = (
                None if deadline is None
                else max(deadline - time.monotonic(), 0.0)
            )
            thread.join(remaining)
        self._stopped = True
        leaked = [thread.name for thread in self._threads if thread.is_alive()]
        if leaked:
            self.stats.metrics.counter("serve.leaked_workers").inc(len(leaked))
            raise WorkerStallError(
                f"{len(leaked)} worker thread(s) still running after the "
                f"{timeout}s stop deadline: {', '.join(leaked)}"
            )

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def warmup(self, network: str, precision: str) -> None:
        """Pre-build a servable so first requests don't pay calibration."""
        self.store.warm(network, precision)

    def submit(
        self,
        image: np.ndarray,
        network: str,
        precision: str,
        deadline_ms: Optional[float] = None,
    ) -> ServeFuture:
        """Enqueue one CHW image; returns a future for its result.

        Raises :class:`~repro.errors.ServerOverloadedError` when the
        bounded queue is full and :class:`~repro.errors.ServerClosedError`
        after shutdown began — both *before* accepting the request, so
        the caller always knows whether the image was admitted.

        ``deadline_ms`` bounds queueing: if no worker has started the
        request's batch that many milliseconds after submission, the
        batcher evicts it and the future raises
        :class:`~repro.errors.DeadlineExceededError`.

        When a :class:`~repro.resilience.DegradePolicy` is configured
        and the queue is past its watermark, the request is admitted
        under the policy's lower-precision fallback instead; the
        returned result's ``model_key`` names the model that actually
        served it.
        """
        image = np.asarray(image, dtype=np.float32)
        if image.ndim != 3:
            raise ConfigurationError(
                f"expected one CHW image, got shape {image.shape}"
            )
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError("deadline_ms must be positive")
        if self.admission is not None and not self.admission.try_acquire():
            self.stats.record_throttled()
            raise ServerOverloadedError(
                "admission controller is throttling; retry later"
            )
        degraded = False
        if self.degrade is not None:
            routed = self.degrade.route(precision, self.batcher.depth())
            if routed != precision:
                precision = routed
                degraded = True
        now = time.monotonic()
        request = InferenceRequest(
            image=image,
            model_key=ModelKey(network=network, precision=precision),
            request_id=next(self._ids),
            enqueued_at=now,
            deadline_at=None if deadline_ms is None else now + deadline_ms / 1e3,
        )
        future = ServeFuture()
        pending = _Pending(request=request, future=future)
        try:
            self.batcher.put(pending)
        except Exception:
            self.stats.record_rejection()
            raise
        # the wall clock starts only once the queue has the request —
        # rejected bursts must not stretch throughput denominators
        self.stats.record_admission()
        if degraded:
            self.stats.record_degraded()
        return future

    def report(self) -> StatsReport:
        """Typed stats report; ``self.stats.snapshot()`` is the dict form."""
        return self.stats.report()

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    def _expire_pending(self, expired: List[_Pending]) -> None:
        """Batcher callback: fail evicted requests with the typed error."""
        for pending in expired:
            pending.future.set_exception(
                DeadlineExceededError(
                    f"request {pending.request.request_id} missed its "
                    "deadline before a worker picked it up"
                )
            )
        self.stats.record_deadline_expired(len(expired))

    def _worker_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch(timeout=0.1)
            if batch is None:
                return
            if batch:
                self._run_batch(batch)  # type: ignore[arg-type]

    def _run_batch(self, batch: List[_Pending]) -> None:
        queue_depth = self.batcher.depth()
        started_at = time.monotonic()
        faults = self._faults or get_injector()
        try:
            faults.fire("engine.forward")
            key = batch[0].model_key
            servable = self.store.get(key.network, key.precision)
            images = np.stack([pending.request.image for pending in batch], axis=0)
            logits = faults.corrupt("engine.forward", servable.forward(images))
        except Exception as error:
            self.stats.record_failure(len(batch))
            for pending in batch:
                pending.future.set_exception(error)
            return
        finished_at = time.monotonic()
        self.stats.record_batch(len(batch), queue_depth)
        if servable.registry_digest is not None:
            self.stats.record_artifact(
                f"{key.network}@{key.precision}",
                servable.registry_digest,
                servable.registry_version,
            )
        for row, pending in enumerate(batch):
            request = pending.request
            result = InferenceResult(
                request_id=request.request_id,
                logits=logits[row].copy(),
                model_key=request.model_key,
                batch_size=len(batch),
                queue_ms=(started_at - request.enqueued_at) * 1e3,
                latency_ms=(finished_at - request.enqueued_at) * 1e3,
                energy_uj=servable.energy_uj_per_image,
            )
            self.stats.record_completion(
                latency_ms=result.latency_ms,
                queue_ms=result.queue_ms,
                energy_uj=result.energy_uj,
            )
            pending.future.set_result(result)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"InferenceServer(workers={self.workers}, "
            f"policy={self.batcher.policy!r}, depth={self.batcher.depth()})"
        )
