"""Request/result types and the future handed back by ``submit``.

A request is one image bound for one ``(network, precision)`` model; the
result carries the logits plus the observability payload the paper's
trade-off analysis needs per request: where the time went (queue vs.
compute), how large the batch it rode in was, and the modeled
accelerator energy the inference cost.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ResultTimeoutError


@dataclass(frozen=True)
class ModelKey:
    """Cache/batching identity of a served model."""

    network: str
    precision: str


@dataclass
class InferenceRequest:
    """One single-image inference request.

    Attributes:
        image: CHW float32 array (no batch dimension — batching is the
            server's job).
        model_key: which (network, precision) pair should serve it.
        request_id: server-assigned monotonically increasing id.
        enqueued_at: ``time.monotonic()`` at submission; latency and the
            batcher's deadline accounting are measured from here.
        deadline_at: ``time.monotonic()`` value past which the batcher
            evicts the request instead of computing it (None = no
            deadline).  A deadline bounds *queueing*: a request whose
            batch started before the deadline still completes.
    """

    image: np.ndarray
    model_key: ModelKey
    request_id: int
    enqueued_at: float
    deadline_at: Optional[float] = None


@dataclass(frozen=True)
class InferenceResult:
    """Logits plus per-request accounting."""

    request_id: int
    logits: np.ndarray
    model_key: ModelKey
    batch_size: int          # size of the micro-batch this request rode in
    queue_ms: float          # submission -> batch execution start
    latency_ms: float        # submission -> result available
    energy_uj: float         # modeled accelerator energy for this image

    @property
    def predicted_class(self) -> int:
        return int(np.argmax(self.logits))


@dataclass
class PendingRequest:
    """A queued request paired with its completion future.

    This is the unit the :class:`~repro.serve.Batcher` queues and both
    serving engines (in-process ``InferenceServer`` and the
    multi-process ``FleetServer``) dispatch.  ``resubmits`` counts how
    many times a fleet front-end re-queued the request after a replica
    crashed with it in flight; the budget lives in the fleet config.
    """

    request: "InferenceRequest"
    future: "ServeFuture"
    resubmits: int = 0

    @property
    def model_key(self) -> ModelKey:
        return self.request.model_key

    @property
    def enqueued_at(self) -> float:
        return self.request.enqueued_at

    @property
    def deadline_at(self) -> Optional[float]:
        return self.request.deadline_at


@dataclass
class ServeFuture:
    """Completion handle for a submitted request (wait with ``result``)."""

    _event: threading.Event = field(default_factory=threading.Event)
    _result: Optional[InferenceResult] = None
    _exception: Optional[BaseException] = None

    def set_result(self, result: InferenceResult) -> None:
        self._result = result
        self._event.set()

    def set_exception(self, exception: BaseException) -> None:
        self._exception = exception
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> InferenceResult:
        """Block until the request completes; re-raises server errors."""
        if not self._event.wait(timeout):
            raise ResultTimeoutError("timed out waiting for inference result")
        if self._exception is not None:
            raise self._exception
        assert self._result is not None
        return self._result
