"""Fused, buffer-reusing inference kernels.

Each kernel collapses what the layer-by-layer reference path does in
several numpy passes (quantize -> im2col/matmul -> clip -> activation,
each allocating temporaries) into the minimum number of vectorized
passes over preallocated :class:`~repro.kernels.workspace.Workspace`
buffers.  Clipping and the ReLU both use the mask idiom of the
dianaSDK ``SIMDModelClass`` hardware model: build a boolean mask, then
patch the masked lanes in place instead of materializing branch
temporaries.

Every kernel is **bitwise-equal** to the reference implementation it
replaces (``repro.nn`` layer ``forward`` + ``FakeQuantLayer``).  Three
equalities carry the speed without breaking that contract:

- *float32 quantization*: scaling by a power of two is exact in
  float32, so for word lengths whose code range fits a float32
  mantissa (``bits <= 24``) the whole round/saturate/rescale chain can
  run at single precision in place — the reference's float64 round
  trip is only kept for ``fixed32``;
- *channel-major (CHWN) activations*: the im2col matmul naturally
  produces ``(C_out, OH, OW, N)``; since quantize/ReLU are elementwise
  and pooling windows are layout-agnostic, downstream kernels accept
  that layout directly and the NCHW transpose-copy the reference pays
  after every convolution happens at most once (at ``Flatten`` or a
  fallback boundary);
- *in-place updates*: a tensor owned by scratch memory is quantized
  and rectified where it sits instead of into a fresh buffer.

The property tests in ``tests/kernels/test_parity.py`` enforce bitwise
output parity for every Table III precision.

Quantization fuses only for the plain round-to-nearest
:class:`~repro.core.fixed_point.FixedPointQuantizer` (the activation
format of every non-float paper precision); anything else — stochastic
rounding, per-channel or custom quantizers — must go through the
quantizer's own ``quantize`` so semantics are never silently changed.
"""

from __future__ import annotations

from typing import Hashable, Optional

import numpy as np

from repro.core.fixed_point import FixedPointQuantizer
from repro.core.quantizers import IdentityQuantizer, Quantizer
from repro.kernels.workspace import Workspace

__all__ = [
    "fusable_quantizer",
    "fused_quantize",
    "fused_dense",
    "fused_conv2d",
    "fused_maxpool",
    "fused_avgpool",
    "fused_relu_quantize",
    "im2col_into",
    "to_nchw",
]


def fusable_quantizer(quantizer: Optional[Quantizer]) -> bool:
    """Can the fused clip/round path legally replace ``quantizer``?

    ``True`` for ``None``, identity pass-through, and the exact
    round-to-nearest :class:`FixedPointQuantizer` (subclasses excluded:
    they may redefine the grid).  Everything else must fall back to the
    quantizer's own ``quantize``.
    """
    if quantizer is None or type(quantizer) is IdentityQuantizer:
        return True
    return (
        type(quantizer) is FixedPointQuantizer
        and not quantizer.stochastic_rounding
    )


def _quantize_core(
    quantizer: FixedPointQuantizer,
    x: np.ndarray,
    frac_bits: int,
    ws: Workspace,
    key: Hashable,
    in_place: bool,
) -> np.ndarray:
    """scale -> rint -> clip -> rescale, matching the reference bit for bit.

    Fast path: with ``bits <= 24`` every clipped code is exactly
    representable in a float32 mantissa, and ``2^frac`` scaling is an
    exact exponent shift while the scale itself is a normal float32
    (``-126 <= frac <= 127``), so multiply/rint/clip/divide at single
    precision produce the identical bit pattern the reference's
    float64 round trip does (brute-force-verified across saturation,
    subnormal and non-finite corners).  ``fixed32`` codes exceed the
    float32 mantissa, so that width keeps the float64 chain.
    """
    scale = float(2.0**frac_bits)
    q_min = float(-(2 ** (quantizer.bits - 1)))
    q_max = float(2 ** (quantizer.bits - 1) - 1)
    if quantizer.bits <= 24 and -126 <= frac_bits <= 127:
        out = x if in_place else ws.get((key, "q32"), x.shape, np.float32)
        # saturated lanes may overflow float32 pre-clip; the clip heals
        # them to the same codes the float64 path produces
        with np.errstate(over="ignore"):
            np.multiply(x, scale, out=out)
        np.rint(out, out=out)
        np.clip(out, q_min, q_max, out=out)
        np.divide(out, scale, out=out)
        return out
    buf64 = ws.get((key, "q64"), x.shape, np.float64)
    out = x if in_place else ws.get((key, "q32"), x.shape, np.float32)
    np.multiply(x, scale, out=buf64)
    np.rint(buf64, out=buf64)
    np.clip(buf64, q_min, q_max, out=buf64)
    np.divide(buf64, scale, out=buf64)
    np.copyto(out, buf64, casting="unsafe")
    return out


def fused_quantize(
    quantizer: Optional[Quantizer],
    x: np.ndarray,
    range_hint: Optional[float],
    ws: Workspace,
    key: Hashable,
    in_place: bool = False,
) -> np.ndarray:
    """Quantize ``x`` into scratch (or, with ``in_place``, into ``x``).

    The caller must have checked :func:`fusable_quantizer`; an identity
    quantizer is a true pass-through (float32 in, same array out), so
    no buffer is touched.  ``in_place`` may only be set when ``x`` is
    memory the caller owns (a workspace buffer or a dead temporary) —
    never on the user's input array.
    """
    if quantizer is None:
        return x
    if type(quantizer) is IdentityQuantizer:
        return np.asarray(x, dtype=np.float32)
    x = np.asarray(x, dtype=np.float32)
    frac = quantizer.resolve_frac_bits(x, range_hint)
    return _quantize_core(quantizer, x, frac, ws, key, in_place)


def fused_relu_quantize(
    quantizer: Optional[Quantizer],
    x: np.ndarray,
    range_hint: Optional[float],
    ws: Workspace,
    key: Hashable,
    in_place: bool = False,
) -> np.ndarray:
    """ReLU and activation quantization as one mask-based pass.

    Instead of materializing ``relu(x)`` and quantizing the result, the
    kernel quantizes ``x`` directly and then zeroes the non-positive
    lanes through a mask — quantization is monotonic and positive
    values quantize identically either way, while every masked lane
    lands on exactly ``+0.0``, just as ``np.where(x > 0, x, 0)``
    followed by quantization would.

    The dynamic radix point (no hint, uncalibrated tracker) is placed
    from the *rectified* range: ``max(x, 0)`` is the largest magnitude
    the reference quantizer would ever see after the ReLU.
    """
    # ~(x > 0) rather than (x <= 0): identical for finite lanes, and a
    # NaN lane zeroes exactly as the reference's np.where(x > 0, ...)
    mask = ws.get((key, "mask"), x.shape, np.bool_)
    np.greater(x, 0, out=mask)
    np.logical_not(mask, out=mask)
    if quantizer is None or type(quantizer) is IdentityQuantizer:
        if in_place:
            out = x
        else:
            out = ws.get((key, "relu"), x.shape, np.float32)
            np.copyto(out, x)
        np.copyto(out, 0.0, where=mask)
        return out
    if quantizer.frac_bits is not None:
        frac = quantizer.frac_bits
    elif range_hint is not None:
        frac = quantizer.frac_bits_for(range_hint)
    else:
        frac = quantizer.frac_bits_for(float(np.max(x, initial=0.0)))
    out = _quantize_core(quantizer, x, frac, ws, key, in_place)
    np.copyto(out, 0.0, where=mask)
    return out


def fused_dense(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    ws: Workspace,
    key: Hashable,
) -> np.ndarray:
    """``x @ W + b`` straight into a workspace buffer."""
    out = ws.get((key, "out"), (x.shape[0], weight.shape[1]), np.float32)
    np.matmul(x, weight, out=out)
    if bias is not None:
        out += bias
    return out


def im2col_into(
    src: np.ndarray,
    kernel: int,
    stride: int,
    out_h: int,
    out_w: int,
    cols: np.ndarray,
    chwn: bool = False,
) -> np.ndarray:
    """Lower ``src`` (already padded) into the ``cols`` buffer.

    Produces the exact ``(C*K*K, OHW*N)`` layout of
    :func:`repro.nn.im2col.im2col` — row ``c*K*K + ki*K + kj``, column
    ``o*N + n`` — via strided-view assignments, so the only writes land
    in the preallocated buffer.  ``src`` is NCHW by default; with
    ``chwn`` it is channel-major ``(C, H, W, N)``, whose shifted views
    already match the column layout with no per-patch transpose.
    """
    c = src.shape[0] if chwn else src.shape[1]
    out5 = cols.reshape(c, kernel * kernel, out_h, out_w, -1)
    for ki in range(kernel):
        row = ki * kernel
        for kj in range(kernel):
            if chwn:
                out5[:, row + kj] = src[
                    :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ]
            else:
                view = src[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ]
                out5[:, row + kj] = view.transpose(1, 2, 3, 0)
    return cols


def fused_conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
    ws: Workspace,
    key: Hashable,
    chwn_in: bool = False,
) -> np.ndarray:
    """im2col convolution with every intermediate in workspace buffers.

    One padded copy (only when ``padding > 0``), one strided im2col
    fill, one BLAS matmul with ``out=``, and an in-place bias add.

    Returns the result in **channel-major** layout ``(C_out, OH, OW,
    N)`` — a free reshape of the matmul buffer; the reference path's
    per-layer NCHW transpose-copy is deferred to whoever actually
    needs NCHW (``to_nchw``).  Input may be NCHW or, with ``chwn_in``,
    channel-major.
    """
    if chwn_in:
        c, h, w, n = x.shape
    else:
        n, c, h, w = x.shape
    out_c, _, kernel, _ = weight.shape
    if padding > 0:
        if chwn_in:
            pad = ws.get((key, "pad"), (c, h + 2 * padding, w + 2 * padding, n))
            pad.fill(0.0)
            pad[:, padding : padding + h, padding : padding + w, :] = x
        else:
            pad = ws.get((key, "pad"), (n, c, h + 2 * padding, w + 2 * padding))
            pad.fill(0.0)
            pad[:, :, padding : padding + h, padding : padding + w] = x
        src = pad
    else:
        src = x
    cols = ws.get((key, "cols"), (c * kernel * kernel, n * out_h * out_w))
    im2col_into(src, kernel, stride, out_h, out_w, cols, chwn=chwn_in)
    w_mat = weight.reshape(out_c, -1)
    mm = ws.get((key, "mm"), (out_c, n * out_h * out_w))
    np.matmul(w_mat, cols, out=mm)
    if bias is not None:
        mm += bias[:, None]
    return mm.reshape(out_c, out_h, out_w, n)


def to_nchw(x: np.ndarray, ws: Workspace, key: Hashable) -> np.ndarray:
    """Transpose-copy a channel-major ``(C, H, W, N)`` tensor to NCHW."""
    c, h, w, n = x.shape
    out = ws.get((key, "nchw"), (n, c, h, w))
    np.copyto(out, x.transpose(3, 0, 1, 2))
    return out


def _pooled_source(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
    fill: float,
    ws: Workspace,
    key: Hashable,
    chwn: bool,
) -> np.ndarray:
    """Pad so every (possibly partial, ceil-mode) window is materialized.

    Mirrors ``_Pool2D._padded``; when no padding is needed the input is
    used directly — the reference's unconditional ``np.pad`` copy is
    pure data movement, so skipping it cannot change any value.
    """
    h, w = (x.shape[1], x.shape[2]) if chwn else (x.shape[2], x.shape[3])
    need_h = (out_h - 1) * stride + kernel
    need_w = (out_w - 1) * stride + kernel
    pad_bottom = max(0, need_h - h - padding)
    pad_right = max(0, need_w - w - padding)
    if padding == 0 and pad_bottom == 0 and pad_right == 0:
        return x
    full_h = padding + h + pad_bottom
    full_w = padding + w + pad_right
    if chwn:
        pad = ws.get((key, "pad"), (x.shape[0], full_h, full_w, x.shape[3]))
        pad.fill(fill)
        pad[:, padding : padding + h, padding : padding + w, :] = x
    else:
        pad = ws.get((key, "pad"), (x.shape[0], x.shape[1], full_h, full_w))
        pad.fill(fill)
        pad[:, :, padding : padding + h, padding : padding + w] = x
    return pad


def _pool_views(src, kernel, stride, out_h, out_w, chwn):
    for ki in range(kernel):
        for kj in range(kernel):
            if chwn:
                yield src[
                    :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride, :
                ]
            else:
                yield src[
                    :, :, ki : ki + stride * out_h : stride, kj : kj + stride * out_w : stride
                ]


def _pool_out(x, out_h, out_w, ws, key, chwn):
    if chwn:
        return ws.get((key, "out"), (x.shape[0], out_h, out_w, x.shape[3]))
    return ws.get((key, "out"), (x.shape[0], x.shape[1], out_h, out_w))


def fused_maxpool(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
    ws: Workspace,
    key: Hashable,
    chwn: bool = False,
) -> np.ndarray:
    """Max pooling as a running ``np.maximum`` over the k*k shifted views.

    The reference stacks all k*k views and takes the argmax; the
    running maximum selects the same values without the (K*K, N, C,
    OH, OW) stack allocation.  Output layout follows the input layout.
    """
    src = _pooled_source(
        x, kernel, stride, padding, out_h, out_w, -np.inf, ws, key, chwn
    )
    out = _pool_out(x, out_h, out_w, ws, key, chwn)
    first = True
    for view in _pool_views(src, kernel, stride, out_h, out_w, chwn):
        if first:
            np.copyto(out, view)
            first = False
        else:
            np.maximum(out, view, out=out)
    return out


def fused_avgpool(
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
    ws: Workspace,
    key: Hashable,
    chwn: bool = False,
) -> np.ndarray:
    """Average pooling as a running float32 sum over the shifted views.

    Sequential accumulation in view order matches ``np.mean(axis=0)``
    over the reference's stacked windows bit for bit (numpy reduces a
    leading axis sequentially), including the final division by the
    full window size (Caffe ``AVE`` semantics).
    """
    src = _pooled_source(
        x, kernel, stride, padding, out_h, out_w, 0.0, ws, key, chwn
    )
    out = _pool_out(x, out_h, out_w, ws, key, chwn)
    first = True
    for view in _pool_views(src, kernel, stride, out_h, out_w, chwn):
        if first:
            np.copyto(out, view)
            first = False
        else:
            out += view
    np.divide(out, float(kernel * kernel), out=out)
    return out
