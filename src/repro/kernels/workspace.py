"""Preallocated, reusable kernel buffers.

Every fused kernel writes into buffers owned by a :class:`Workspace`
instead of allocating fresh arrays per batch.  Buffers are keyed by
``(name, shape, dtype)``: re-running the same batch shape reuses the
existing buffer (``hits`` grows, ``allocations`` does not), while a
batch-size change is revalidated into a freshly sized buffer — exactly
the contract the buffer-reuse tests lock.

A workspace is **not** thread-safe; the fused backend keeps one
workspace per (pipeline, thread), which is what makes lock-free
concurrent serving possible on top of mutable scratch memory.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Named scratch buffers reused across kernel invocations."""

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[Hashable, Tuple[int, ...], np.dtype], np.ndarray] = {}
        self.allocations = 0
        self.hits = 0

    def get(
        self,
        key: Hashable,
        shape: Tuple[int, ...],
        dtype: "np.typing.DTypeLike" = np.float32,
    ) -> np.ndarray:
        """Fetch (allocating on first use) the buffer for ``key``/``shape``.

        Contents are unspecified on return — kernels must fully
        overwrite the region they read back.  Distinct shapes under the
        same key coexist, so a trailing partial batch does not thrash
        the full-batch buffers.
        """
        full_key = (key, tuple(int(s) for s in shape), np.dtype(dtype))
        buffer = self._buffers.get(full_key)
        if buffer is None:
            buffer = np.empty(full_key[1], dtype=full_key[2])
            self._buffers[full_key] = buffer
            self.allocations += 1
        else:
            self.hits += 1
        return buffer

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes held by live buffers."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def clear(self) -> None:
        """Drop every buffer (counters keep their history)."""
        self._buffers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Workspace({len(self._buffers)} buffers, {self.nbytes / 1024:.0f} KB, "
            f"{self.allocations} allocs / {self.hits} hits)"
        )
