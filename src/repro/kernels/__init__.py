"""Fused quantized-inference kernels and their reusable workspaces.

The kernels here are the compute substrate of the ``fused`` backend in
:mod:`repro.backends`: single-pass quantize / matmul / im2col-conv /
pool / ReLU routines that write into preallocated
:class:`~repro.kernels.workspace.Workspace` buffers instead of
allocating per batch, while staying bitwise-equal to the reference
layer-by-layer path for every paper precision.  See ``docs/kernels.md``
for the design and the rules for adding a new backend on top of them.
"""

from repro.kernels.fused import (
    fusable_quantizer,
    fused_avgpool,
    fused_conv2d,
    fused_dense,
    fused_maxpool,
    fused_quantize,
    fused_relu_quantize,
    im2col_into,
    to_nchw,
)
from repro.kernels.workspace import Workspace

__all__ = [
    "Workspace",
    "fusable_quantizer",
    "fused_avgpool",
    "fused_conv2d",
    "fused_dense",
    "fused_maxpool",
    "fused_quantize",
    "fused_relu_quantize",
    "im2col_into",
    "to_nchw",
]
