"""Registry-driven canary rollouts over a serving fleet.

A canary rollout deploys a candidate artifact to a *fraction* of a
:class:`~repro.serve.FleetServer`'s replicas, lets real traffic split
between the canary group and the control group (the replicas still on
the incumbent), and then compares the two groups' error rates and tail
latencies.  A healthy canary is promoted: the candidate is appended to
the :class:`~repro.registry.Channel` (history intact, same promotion
policy hooks as a direct promote) and the control replicas are rolled
onto it.  A regressing canary is rolled back: the canary replicas are
redeployed onto the incumbent digest and the channel pointer never
moves — the bad artifact leaves no trace in the channel history.

The controller is deliberately passive about traffic: it snapshots
per-replica counters at :meth:`CanaryController.begin`, and
:meth:`~CanaryController.decide` only reasons about the deltas since
then.  Whoever drives load (the closed-loop generator, production
clients) is invisible to it; it needs no hooks in the serving path.

Verdict rules (:class:`CanaryPolicy`):

* ``wait`` until both groups saw ``min_requests`` requests — deciding
  on three data points promotes noise, in both directions.
* ``rollback`` when the canary group's error rate exceeds the control
  group's by more than ``max_error_rate_increase`` (absolute), or when
  the canary p99 exceeds the control p99 by more than
  ``max_p99_increase_pct`` percent.
* ``promote`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, RegistryError
from repro.obs.metrics import get_metrics
from repro.registry.channels import Channel
from repro.registry.policy import PromotionPolicy
from repro.registry.store import ArtifactStore

__all__ = [
    "CanaryPolicy",
    "CanaryDecision",
    "CanaryReport",
    "CanaryController",
]


@dataclass(frozen=True)
class CanaryPolicy:
    """Knobs of the promote/rollback verdict."""

    fraction: float = 0.25             # share of replicas canaried
    min_requests: int = 20             # per group, before any verdict
    max_error_rate_increase: float = 0.05   # absolute (canary - control)
    max_p99_increase_pct: float = 100.0     # canary p99 vs control p99

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ConfigurationError("canary fraction must be in (0, 1)")
        if self.min_requests < 1:
            raise ConfigurationError("min_requests must be >= 1")


@dataclass(frozen=True)
class CanaryDecision:
    """One evaluation of canary vs control since ``begin``."""

    verdict: str                       # "promote" | "rollback" | "wait"
    reason: str
    canary_requests: int
    control_requests: int
    canary_error_rate: float
    control_error_rate: float
    canary_p99_ms: float
    control_p99_ms: float


@dataclass(frozen=True)
class CanaryReport:
    """What one finished canary rollout did."""

    outcome: str                       # "promoted" | "rolled_back"
    digest: str
    version: Optional[int]             # channel version when promoted
    canary_indices: Tuple[int, ...]
    decision: CanaryDecision


@dataclass
class _GroupBaseline:
    completed: int = 0
    failed: int = 0
    n_latencies: int = 0


class CanaryController:
    """Drives one candidate artifact through canary -> verdict -> act.

    Args:
        fleet: a started :class:`~repro.serve.FleetServer` with at
            least two replicas (a canary needs a control group).
        store: artifact source of truth.
        channel: the channel being rolled; its active version is the
            incumbent the canary is measured against and rolled back to.
        policy: verdict thresholds.

    Lifecycle::

        controller = CanaryController(fleet, store, channel)
        controller.begin("abc123...")      # deploys to canary replicas
        ... traffic flows ...
        while controller.decide().verdict == "wait":
            ... more traffic ...
        report = controller.finish()       # promotes or rolls back
    """

    def __init__(
        self,
        fleet,
        store: ArtifactStore,
        channel: Channel,
        policy: Optional[CanaryPolicy] = None,
    ):
        self.fleet = fleet
        self.store = store
        self.channel = channel
        self.policy = policy or CanaryPolicy()
        self._digest: Optional[str] = None
        self._incumbent_digest: Optional[str] = None
        self._incumbent_version: Optional[int] = None
        self._canary: Tuple[int, ...] = ()
        self._control: Tuple[int, ...] = ()
        self._baselines: Dict[int, _GroupBaseline] = {}
        self._active = False

    # ------------------------------------------------------------------
    def begin(self, ref: str, sabotage: bool = False) -> Tuple[int, ...]:
        """Deploy the candidate onto the canary replicas.

        Returns the canary replica indices.  ``sabotage`` arms
        forward-path faults on the canary replicas (chaos testing —
        it forces the regression the rollback path must catch).
        """
        if self._active:
            raise RegistryError("a canary rollout is already in progress")
        replicas = self.fleet.config.replicas
        if replicas < 2:
            raise ConfigurationError(
                "canary rollout needs >= 2 replicas (one must stay control)"
            )
        manifest = self.store.get(ref)
        incumbent = self.channel.active()
        if incumbent is None:
            raise RegistryError(
                f"channel {self.channel.name!r} has no incumbent; "
                "use a plain rollout for the first deploy"
            )
        if incumbent.digest == manifest.digest:
            raise RegistryError(
                f"candidate {manifest.short_digest()} is already active "
                f"on {self.channel.name!r}"
            )
        self._incumbent_digest = incumbent.digest
        self._incumbent_version = incumbent.version
        n_canary = max(1, round(self.policy.fraction * replicas))
        n_canary = min(n_canary, replicas - 1)
        # highest indices canary: replica 0 stays control, so a
        # single-replica fleet restart story never loses the incumbent
        self._canary = tuple(range(replicas - n_canary, replicas))
        self._control = tuple(range(0, replicas - n_canary))
        self._digest = manifest.digest
        self._snapshot_baselines()
        # the version number is provisional until the promote appends
        # the real channel entry; replicas only echo it in stats
        provisional = 1 + max(
            (v.version for v in self.channel.versions), default=0
        )
        self.fleet.deploy_to(
            self._canary, self.store.root, self.channel.name,
            manifest.digest, provisional, sabotage=sabotage,
        )
        self._active = True
        get_metrics().counter("registry.canary_started").inc()
        return self._canary

    def _snapshot_baselines(self) -> None:
        self._baselines = {}
        for index, metrics in self.fleet.replica_metrics().items():
            self._baselines[index] = _GroupBaseline(
                completed=int(metrics["completed"]),
                failed=int(metrics["failed"]),
                n_latencies=len(metrics["latencies_ms"]),
            )

    # ------------------------------------------------------------------
    def _group_window(
        self, indices: Sequence[int]
    ) -> Tuple[int, int, List[float]]:
        """(completed, failed, latency window) deltas since ``begin``."""
        metrics = self.fleet.replica_metrics()
        completed = failed = 0
        latencies: List[float] = []
        for index in indices:
            snap = metrics[index]
            base = self._baselines.get(index, _GroupBaseline())
            completed += int(snap["completed"]) - base.completed
            failed += int(snap["failed"]) - base.failed
            samples = snap["latencies_ms"]
            if len(samples) >= base.n_latencies:
                latencies.extend(samples[base.n_latencies:])
            else:  # the replica's sample buffer was trimmed mid-canary
                latencies.extend(samples)
        return completed, failed, latencies

    def decide(self) -> CanaryDecision:
        """Compare canary vs control traffic since ``begin``."""
        if not self._active:
            raise RegistryError("no canary rollout in progress")
        can_done, can_fail, can_lat = self._group_window(self._canary)
        ctl_done, ctl_fail, ctl_lat = self._group_window(self._control)
        can_requests = can_done + can_fail
        ctl_requests = ctl_done + ctl_fail
        can_err = can_fail / can_requests if can_requests else 0.0
        ctl_err = ctl_fail / ctl_requests if ctl_requests else 0.0
        can_p99 = float(np.percentile(can_lat, 99)) if can_lat else 0.0
        ctl_p99 = float(np.percentile(ctl_lat, 99)) if ctl_lat else 0.0

        def decision(verdict: str, reason: str) -> CanaryDecision:
            return CanaryDecision(
                verdict=verdict,
                reason=reason,
                canary_requests=can_requests,
                control_requests=ctl_requests,
                canary_error_rate=can_err,
                control_error_rate=ctl_err,
                canary_p99_ms=can_p99,
                control_p99_ms=ctl_p99,
            )

        if min(can_requests, ctl_requests) < self.policy.min_requests:
            return decision(
                "wait",
                f"need {self.policy.min_requests} requests per group, have "
                f"canary={can_requests} control={ctl_requests}",
            )
        if can_err > ctl_err + self.policy.max_error_rate_increase:
            return decision(
                "rollback",
                f"canary error rate {can_err:.1%} exceeds control "
                f"{ctl_err:.1%} by more than "
                f"{self.policy.max_error_rate_increase:.1%}",
            )
        if (
            ctl_p99 > 0.0
            and can_lat
            and can_p99 > ctl_p99 * (1.0 + self.policy.max_p99_increase_pct / 100.0)
        ):
            return decision(
                "rollback",
                f"canary p99 {can_p99:.2f} ms exceeds control "
                f"{ctl_p99:.2f} ms by more than "
                f"{self.policy.max_p99_increase_pct:.0f}%",
            )
        return decision(
            "promote",
            f"canary healthy: error {can_err:.1%} vs {ctl_err:.1%}, "
            f"p99 {can_p99:.2f} ms vs {ctl_p99:.2f} ms",
        )

    # ------------------------------------------------------------------
    def finish(
        self,
        decision: Optional[CanaryDecision] = None,
        *,
        promotion_policy: Optional[PromotionPolicy] = None,
        note: str = "",
    ) -> CanaryReport:
        """Act on the verdict: promote fleet-wide or roll the canary back.

        A ``wait`` verdict raises — the caller is responsible for
        driving traffic until :meth:`decide` reaches a real verdict (or
        for choosing one explicitly and passing it in).
        """
        if not self._active:
            raise RegistryError("no canary rollout in progress")
        decision = decision or self.decide()
        if decision.verdict == "wait":
            raise RegistryError(
                f"canary verdict still 'wait' ({decision.reason}); "
                "drive more traffic before finish()"
            )
        assert self._digest is not None
        if decision.verdict == "promote":
            entry = self.channel.promote(
                self._digest, policy=promotion_policy,
                note=note or "canary promote",
            )
            if self._control:
                self.fleet.deploy_to(
                    self._control, self.store.root, self.channel.name,
                    self._digest, entry.version,
                )
            self._active = False
            get_metrics().counter("registry.canary_promotions").inc()
            return CanaryReport(
                outcome="promoted",
                digest=self._digest,
                version=entry.version,
                canary_indices=self._canary,
                decision=decision,
            )
        # rollback: canary replicas return to the incumbent; the channel
        # pointer never moved, so there is nothing to rewind there
        assert self._incumbent_digest is not None
        assert self._incumbent_version is not None
        self.fleet.deploy_to(
            self._canary, self.store.root, self.channel.name,
            self._incumbent_digest, self._incumbent_version,
        )
        digest = self._digest
        self._active = False
        get_metrics().counter("registry.canary_rollbacks").inc()
        return CanaryReport(
            outcome="rolled_back",
            digest=digest,
            version=None,
            canary_indices=self._canary,
            decision=decision,
        )
