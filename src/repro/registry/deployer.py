"""Zero-downtime rollout of registry artifacts into the serving engine.

The :class:`Deployer` turns a channel's active artifact into a live
:class:`repro.serve.Servable` without pausing traffic: the replacement
is loaded, calibrated and frozen entirely in the background (its own
private network instance), then swapped into the
:class:`repro.serve.ModelStore` in one locked assignment
(:meth:`~repro.serve.ModelStore.install`).  Worker threads that picked
up the old servable for an in-flight batch keep their reference and
drain on the old weights; every batch dispatched after the swap runs
the new ones.  No request is dropped and no lock is held while weights
load or calibration runs.

Builds read weights through the ``registry.load`` fault site and run
under the same retry policy as servable cache misses
(:data:`repro.serve.model_store.RETRYABLE_BUILD_ERRORS`).  When a
build still fails after retries, :meth:`Deployer.deploy` rolls the
channel pointer back to the previously active version — the serving
engine never saw the broken artifact, and the channel again reflects
what is actually running.
"""

from __future__ import annotations

import functools
import logging
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.precision import PrecisionSpec
from repro.core.quantized import QuantizedNetwork
from repro.errors import RegistryError
from repro.hw.memory_footprint import network_memory_footprint
from repro.nn.serialization import load_network_state, state_digest
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.registry.channels import Channel
from repro.registry.policy import PromotionPolicy
from repro.registry.store import ArtifactManifest, ArtifactStore
from repro.resilience.retry import RetryPolicy, retry_call
from repro.serve.model_store import (
    RETRYABLE_BUILD_ERRORS,
    ModelStore,
    Servable,
)
from repro.serve.request import ModelKey
from repro.zoo.registry import build_network, network_info

__all__ = ["Deployer", "RolloutReport"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RolloutReport:
    """What one rollout (or rollback) actually did."""

    channel: str
    version: int
    digest: str
    previous_digest: Optional[str]  # servable replaced in the store
    swap_ms: float                  # time the locked swap itself took
    build_ms: float                 # background build (load+calibrate+freeze)
    rolled_back: bool = False       # channel pointer was restored on failure


class Deployer:
    """Wires a :class:`Channel` into a live :class:`ModelStore`.

    Args:
        store: artifact source of truth.
        model_store: the serving engine's servable cache to swap into.
        retry_policy: backoff for builds failing with a retryable error
            (injected ``registry.load`` faults, transient I/O); defaults
            to the model store's own policy.
        seed: architecture-build seed (weights are overwritten by the
            artifact's, so this only affects layer construction).
    """

    def __init__(
        self,
        store: ArtifactStore,
        model_store: ModelStore,
        *,
        retry_policy: Optional[RetryPolicy] = None,
        seed: int = 0,
    ):
        self.store = store
        self.model_store = model_store
        self.retry_policy = retry_policy or model_store.retry_policy
        self.seed = seed

    # ------------------------------------------------------------------
    def build_servable(
        self, manifest: ArtifactManifest, version: int
    ) -> Servable:
        """Load, calibrate and freeze one artifact off the serving path.

        Public because fleet replicas build their own copy of a rolled-
        out artifact in-process (each replica owns a private
        ``ModelStore``), then install it locally — the per-replica half
        of a canary deploy.
        """
        info = network_info(manifest.network)
        spec = PrecisionSpec.parse(manifest.precision)
        network = build_network(manifest.network, seed=self.seed)
        state = self.store.load_state(manifest.digest)
        load_network_state(network, state)
        digest = state_digest(network)
        qnet = QuantizedNetwork(network, spec)
        if not spec.is_float:
            qnet.calibrate(self.model_store.calibration_for(info.dataset))
        energy = self.model_store.energy_model.evaluate_cached(
            network, info.input_shape, spec
        )
        footprint = network_memory_footprint(network, info.input_shape, spec)
        return Servable(
            key=ModelKey(network=manifest.network, precision=manifest.precision),
            frozen=qnet.freeze(backend=self.model_store.backend),
            input_shape=info.input_shape,
            memory_kb=footprint.total_kb,
            energy_uj_per_image=energy.energy_uj,
            weights_digest=digest,
            registry_digest=manifest.digest,
            registry_version=version,
        )

    def rollout(self, channel: Channel) -> RolloutReport:
        """Deploy the channel's active artifact into the model store.

        The build (weight load, calibration, freeze) runs with no store
        lock held; only the final :meth:`ModelStore.install` swap is
        locked.  Retryable build failures back off and retry; a build
        that still fails propagates without touching the store — the
        previously installed servable keeps serving.
        """
        entry = channel.active()
        if entry is None:
            raise RegistryError(
                f"channel {channel.name!r} has nothing to roll out"
            )
        manifest = self.store.get(entry.digest)
        metrics = get_metrics()
        with get_tracer().span(
            "registry.rollout",
            channel=channel.name,
            version=entry.version,
            digest=manifest.short_digest(),
        ):
            build_start = time.perf_counter()
            try:
                servable = retry_call(
                    functools.partial(self.build_servable, manifest,
                                      entry.version),
                    policy=self.retry_policy,
                    retry_on=RETRYABLE_BUILD_ERRORS,
                    on_retry=self._note_build_retry,
                )
            except BaseException:
                metrics.counter("registry.rollout_failures").inc()
                raise
            build_ms = 1000.0 * (time.perf_counter() - build_start)
            swap_start = time.perf_counter()
            previous = self.model_store.install(servable)
            swap_ms = 1000.0 * (time.perf_counter() - swap_start)
        metrics.counter("registry.rollouts").inc()
        metrics.histogram("registry.swap_ms").observe(swap_ms)
        logger.info(
            "registry: rolled out %s v%d (%s) — build %.1f ms, swap %.2f ms",
            channel.name, entry.version, manifest.short_digest(),
            build_ms, swap_ms,
        )
        return RolloutReport(
            channel=channel.name,
            version=entry.version,
            digest=manifest.digest,
            previous_digest=None if previous is None else previous.registry_digest,
            swap_ms=swap_ms,
            build_ms=build_ms,
        )

    @staticmethod
    def _note_build_retry(attempt: int, error: BaseException) -> None:
        logger.warning(
            "registry: artifact build attempt %d failed (%s); retrying",
            attempt + 1, error,
        )
        get_metrics().counter("registry.build_retries").inc()

    # ------------------------------------------------------------------
    def deploy(
        self,
        channel: Channel,
        ref: str,
        *,
        policy: Optional[PromotionPolicy] = None,
        note: str = "",
        force: bool = False,
    ) -> RolloutReport:
        """Promote ``ref`` onto the channel, then roll it out.

        If the rollout build faults after retries, the channel pointer
        is restored to the previously active version (auto-rollback) so
        the channel still describes what is actually serving, and a
        :class:`~repro.errors.RegistryError` chaining the build failure
        is raised.  A rejected promotion raises before anything is
        touched.
        """
        previous = channel.active()
        entry = channel.promote(ref, policy=policy, note=note, force=force)
        try:
            return self.rollout(channel)
        except Exception as exc:
            if previous is not None and previous.version != entry.version:
                channel.rollback()
                restored = f"channel restored to v{previous.version}"
            else:
                restored = "nothing was previously deployed"
            get_metrics().counter("registry.auto_rollbacks").inc()
            raise RegistryError(
                f"rollout of {entry.digest[:12]} onto {channel.name!r} "
                f"failed; {restored}"
            ) from exc

    def rollback(self, channel: Channel, steps: int = 1) -> RolloutReport:
        """Move the channel back ``steps`` versions and roll that out."""
        channel.rollback(steps)
        report = self.rollout(channel)
        return RolloutReport(
            channel=report.channel,
            version=report.version,
            digest=report.digest,
            previous_digest=report.previous_digest,
            swap_ms=report.swap_ms,
            build_ms=report.build_ms,
            rolled_back=True,
        )
