"""Pareto-gated promotion rules.

The paper's deployment argument (Section V-B) is exactly a promotion
policy: a configuration earns its place only if no other configuration
beats it on both accuracy and energy.  :class:`PromotionPolicy` encodes
that as a gate between a candidate artifact and a channel's incumbent,
reusing the same :func:`repro.core.pareto.dominates` predicate that
draws Figure 4 — a candidate the incumbent dominates is rejected, plus
optional absolute constraints (an accuracy floor, a per-image energy
budget, a bounded accuracy drop versus the incumbent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.pareto import DesignPoint, dominates
from repro.errors import PromotionRejectedError
from repro.registry.store import ArtifactManifest

__all__ = ["PromotionPolicy", "design_point"]


def design_point(manifest: ArtifactManifest) -> DesignPoint:
    """Map an artifact onto the paper's accuracy/energy plane.

    Accuracy converts to percent to match the Figure 4 convention used
    everywhere :class:`~repro.core.pareto.DesignPoint` appears.
    """
    return DesignPoint(
        label=f"{manifest.network}@{manifest.precision}",
        accuracy=100.0 * manifest.accuracy,
        energy_uj=manifest.energy_uj_per_image,
        metadata={
            "digest": manifest.digest,
            "network": manifest.network,
            "precision": manifest.precision,
        },
    )


@dataclass(frozen=True)
class PromotionPolicy:
    """Configurable gate a candidate must pass to take over a channel.

    Args:
        require_non_dominated: reject candidates the incumbent Pareto-
            dominates (at least as accurate AND at least as cheap, and
            strictly better on one axis).  A candidate that merely
            trades accuracy for energy — a different point on the
            frontier — passes.
        min_accuracy: absolute floor, fraction in [0, 1].
        max_energy_uj: absolute per-image energy budget.
        max_accuracy_drop: largest tolerated accuracy regression versus
            the incumbent, as a fraction (``0.01`` = one point).
        require_metrics: reject candidates whose accuracy or energy was
            never measured (``nan``) whenever a rule would need them.
    """

    require_non_dominated: bool = True
    min_accuracy: Optional[float] = None
    max_energy_uj: Optional[float] = None
    max_accuracy_drop: Optional[float] = None
    require_metrics: bool = True

    def check(
        self,
        candidate: ArtifactManifest,
        incumbent: Optional[ArtifactManifest] = None,
    ) -> List[str]:
        """Every rule the candidate violates (empty = promotable)."""
        violations: List[str] = []
        acc_known = math.isfinite(candidate.accuracy)
        energy_known = math.isfinite(candidate.energy_uj_per_image)
        if self.require_metrics:
            if not acc_known:
                violations.append("candidate reports no measured accuracy")
            if not energy_known:
                violations.append("candidate reports no modeled energy")
        if self.min_accuracy is not None and acc_known:
            if candidate.accuracy < self.min_accuracy:
                violations.append(
                    f"accuracy {candidate.accuracy:.4f} below floor "
                    f"{self.min_accuracy:.4f}"
                )
        if self.max_energy_uj is not None and energy_known:
            if candidate.energy_uj_per_image > self.max_energy_uj:
                violations.append(
                    f"energy {candidate.energy_uj_per_image:.3f} uJ/image "
                    f"over budget {self.max_energy_uj:.3f}"
                )
        if incumbent is not None:
            incumbent_known = (
                math.isfinite(incumbent.accuracy)
                and math.isfinite(incumbent.energy_uj_per_image)
            )
            # An incumbent with unmeasured metrics cannot dominate; it
            # also can no longer be lifted onto the plane at all now
            # that DesignPoint rejects NaN coordinates.
            if (self.require_non_dominated and acc_known and energy_known
                    and incumbent_known):
                if dominates(design_point(incumbent), design_point(candidate)):
                    violations.append(
                        f"dominated by incumbent "
                        f"{incumbent.short_digest()} "
                        f"(acc {incumbent.accuracy:.4f} vs "
                        f"{candidate.accuracy:.4f}, energy "
                        f"{incumbent.energy_uj_per_image:.3f} vs "
                        f"{candidate.energy_uj_per_image:.3f} uJ)"
                    )
            if (self.max_accuracy_drop is not None and acc_known
                    and math.isfinite(incumbent.accuracy)):
                drop = incumbent.accuracy - candidate.accuracy
                if drop > self.max_accuracy_drop:
                    violations.append(
                        f"accuracy drop {drop:.4f} exceeds allowed "
                        f"{self.max_accuracy_drop:.4f}"
                    )
        return violations

    def reject(
        self,
        channel: str,
        candidate: ArtifactManifest,
        violations: List[str],
    ) -> None:
        """Raise the typed rejection listing every violated rule."""
        detail = "; ".join(violations)
        raise PromotionRejectedError(
            f"artifact {candidate.short_digest()} rejected for channel "
            f"{channel!r}: {detail}"
        )
