"""Versioned model-artifact registry with Pareto-gated deployment.

The sweep machinery answers *which* (network, precision) points are
worth deploying; this subpackage owns what happens next.  Trained
weights become content-addressed *artifacts* — SHA-256 over network,
precision and exact weight bytes — stored on disk with a manifest
carrying the measured accuracy, the modeled accelerator energy/area/
memory, and the sweep-cache entry they came from.  Named *channels*
(staging, prod) hold an ordered promotion history over those digests;
a :class:`PromotionPolicy` gates each promotion with the paper's own
Section V-B criterion (a candidate the incumbent Pareto-dominates on
the accuracy/energy plane is rejected) plus optional accuracy-floor /
energy-budget constraints.  The :class:`Deployer` rolls a channel's
active artifact into the live serving engine with zero downtime — the
replacement builds in the background and swaps into the
:class:`repro.serve.ModelStore` under one lock while in-flight batches
drain on the old weights — and restores the channel pointer when a
build faults.

Typical lifecycle::

    store = registry.ArtifactStore("models/")
    manifest = store.publish(state, network="lenet_small",
                             precision="fixed8", accuracy=0.94, ...)
    prod = registry.Channel(store, "prod")
    prod.promote(manifest.digest, policy=registry.PromotionPolicy())
    registry.Deployer(store, model_store).rollout(prod)
    ...
    prod.rollback()          # pointer back; Deployer.rollback redeploys

Fleet canary rollouts (``registry.CanaryController``) extend the same
contract to multi-process serving: a candidate deploys to a fraction of
a :class:`repro.serve.FleetServer`'s replicas, live error-rate and p99
deltas against the control replicas decide the verdict, and the channel
history only ever records candidates that survived their canary.

The same flow is scriptable via ``python -m repro registry
publish|list|promote|rollback|serve`` (see ``docs/registry.md``).
"""

from repro.registry.store import ArtifactManifest, ArtifactStore, artifact_digest
from repro.registry.channels import Channel, ChannelVersion
from repro.registry.policy import PromotionPolicy, design_point
from repro.registry.deployer import Deployer, RolloutReport
from repro.registry.canary import (
    CanaryController,
    CanaryDecision,
    CanaryPolicy,
    CanaryReport,
)
from repro.registry.publish import promote_frontier, publish_with_modeled_costs

__all__ = [
    "ArtifactManifest",
    "ArtifactStore",
    "artifact_digest",
    "Channel",
    "ChannelVersion",
    "PromotionPolicy",
    "design_point",
    "Deployer",
    "RolloutReport",
    "CanaryController",
    "CanaryDecision",
    "CanaryPolicy",
    "CanaryReport",
    "publish_with_modeled_costs",
    "promote_frontier",
]
