"""Publishing helpers: trained state + modeled hardware costs in one call.

Everything that turns a trained model into a registry artifact needs
the same three measurements from :mod:`repro.hw` — per-image energy,
accelerator area at the artifact's precision, and the Section V-B
weight+buffer memory footprint.  :func:`publish_with_modeled_costs`
computes them from the state being published so the CLI (``repro sweep
--publish`` / ``repro registry publish``) and the Figure 4 experiment
driver cannot drift apart on how manifests are filled in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pareto import DesignPoint
from repro.core.precision import PrecisionSpec
from repro.errors import ConfigurationError, PromotionRejectedError
from repro.hw.accelerator import Accelerator
from repro.hw.energy import EnergyModel
from repro.hw.memory_footprint import network_memory_footprint
from repro.nn.serialization import load_network_state
from repro.registry.channels import Channel, ChannelVersion
from repro.registry.policy import PromotionPolicy
from repro.registry.store import ArtifactManifest, ArtifactStore
from repro.zoo.registry import build_network, network_info

__all__ = ["publish_with_modeled_costs", "promote_frontier"]


def publish_with_modeled_costs(
    store: ArtifactStore,
    state: Dict[str, np.ndarray],
    network: str,
    precision: str,
    *,
    accuracy: float = float("nan"),
    loss: float = float("nan"),
    n_samples: int = 0,
    split: str = "test",
    energy_model: Optional[EnergyModel] = None,
    sweep_cache_key: Optional[str] = None,
    created_by: str = "",
    extra: Optional[Dict[str, str]] = None,
) -> ArtifactManifest:
    """Publish ``state`` with energy/area/memory filled in from ``repro.hw``.

    The measured ``accuracy`` (and optionally ``loss``/``n_samples``)
    comes from the caller — it depends on how the model was evaluated —
    while the modeled costs are recomputed here from the exact weights
    being stored, so a manifest's hardware numbers always describe the
    artifact itself rather than whatever network produced the metrics.
    """
    info = network_info(network)
    spec = PrecisionSpec.parse(precision)
    instance = build_network(network, seed=0)
    load_network_state(instance, state)
    model = energy_model or EnergyModel()
    energy = model.evaluate_cached(instance, info.input_shape, spec)
    footprint = network_memory_footprint(instance, info.input_shape, spec)
    try:
        area_mm2 = Accelerator.for_precision(spec.key).area_mm2
    except ConfigurationError:
        area_mm2 = float("nan")  # novel spec with no named accelerator
    return store.publish(
        state,
        network=network,
        precision=spec.key,
        dataset=info.dataset,
        split=split,
        accuracy=accuracy,
        loss=loss,
        n_samples=n_samples,
        energy_uj_per_image=energy.energy_uj,
        area_mm2=area_mm2,
        memory_kb=footprint.total_kb,
        sweep_cache_key=sweep_cache_key,
        created_by=created_by,
        extra=extra,
    )


def promote_frontier(
    channel: Channel,
    frontier: Sequence[DesignPoint],
    manifests: Dict[str, ArtifactManifest],
    policy: Optional[PromotionPolicy] = None,
    note: str = "frontier",
) -> Tuple[List[Tuple[str, ChannelVersion]], List[Tuple[str, str]]]:
    """Promote a Pareto frontier through ``channel``, most expensive first.

    The shared promotion loop behind ``fig4 --registry`` and the search:
    frontier points walk the channel from the highest-energy point down,
    so the channel ends on the lowest-energy point the ``policy`` gate
    accepts.  ``manifests`` maps a point's label to its published
    manifest; points without one are skipped.  Gate rejections are
    collected, not raised.

    Returns ``(promoted, rejected)`` — ``promoted`` pairs each label
    with its :class:`~repro.registry.channels.ChannelVersion`,
    ``rejected`` pairs labels with the gate's reason.
    """
    policy = policy or PromotionPolicy()
    promoted: List[Tuple[str, ChannelVersion]] = []
    rejected: List[Tuple[str, str]] = []
    for point in sorted(frontier, key=lambda p: -p.energy_uj):
        manifest = manifests.get(point.label)
        if manifest is None:
            continue
        try:
            entry = channel.promote(
                manifest.digest,
                policy=policy,
                note=f"{note}: {point.label}",
            )
        except PromotionRejectedError as exc:
            rejected.append((point.label, str(exc)))
            continue
        promoted.append((point.label, entry))
    return promoted, rejected
