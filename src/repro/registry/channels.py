"""Named deployment channels: ordered version history over artifacts.

A :class:`Channel` (``"staging"``, ``"prod"``) is an append-only list
of promoted artifact digests plus a pointer to the active one.
``promote`` appends a new version (gated by a
:class:`~repro.registry.policy.PromotionPolicy` when one is supplied),
``rollback`` moves the pointer to an earlier version without erasing
history, and ``pin`` freezes the pointer so neither works until the
channel is unpinned.  State persists as one JSON file per channel under
the store root, written atomically, so a crashed promote can never
leave a channel half-updated.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import RegistryError
from repro.ioutil import atomic_write
from repro.obs.metrics import get_metrics
from repro.registry.policy import PromotionPolicy
from repro.registry.store import ArtifactManifest, ArtifactStore

__all__ = ["Channel", "ChannelVersion"]

_CHANNEL_SCHEMA = 1


@dataclass(frozen=True)
class ChannelVersion:
    """One promotion event in a channel's history."""

    version: int
    digest: str
    promoted_unix: float
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "digest": self.digest,
            "promoted_unix": self.promoted_unix,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ChannelVersion":
        try:
            return cls(
                version=int(payload["version"]),
                digest=str(payload["digest"]),
                promoted_unix=float(payload["promoted_unix"]),
                note=str(payload.get("note", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"channel version entry invalid: {exc}") from exc


class Channel:
    """One named promotion lane over an :class:`ArtifactStore`.

    Args:
        store: the artifact store whose digests this channel points at.
        name: channel name; doubles as the state filename
            (``<root>/channels/<name>.json``).

    Existing state is loaded on construction; a channel that was never
    promoted to starts empty.  A state file that exists but cannot be
    parsed raises :class:`~repro.errors.RegistryError` — channels are
    tiny and hand-recoverable, and silently resetting one would forget
    which model production is meant to run.
    """

    def __init__(self, store: ArtifactStore, name: str):
        if not name or "/" in name or name.startswith("."):
            raise RegistryError(f"invalid channel name {name!r}")
        self.store = store
        self.name = name
        self.versions: List[ChannelVersion] = []
        self.active_version: Optional[int] = None
        self.pinned = False
        self._load()

    # -- persistence -----------------------------------------------------
    @property
    def path(self) -> str:
        return self.store.channel_path(self.name)

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            raise RegistryError(
                f"channel file {self.path!r} is corrupt: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise RegistryError(f"channel file {self.path!r} is not a mapping")
        self.versions = [
            ChannelVersion.from_dict(entry)
            for entry in payload.get("versions", [])
        ]
        active = payload.get("active")
        self.active_version = None if active is None else int(active)
        self.pinned = bool(payload.get("pinned", False))

    def _save(self) -> None:
        payload = json.dumps(
            {
                "schema": _CHANNEL_SCHEMA,
                "name": self.name,
                "active": self.active_version,
                "pinned": self.pinned,
                "versions": [v.to_dict() for v in self.versions],
            },
            indent=2,
            sort_keys=True,
        )
        atomic_write(self.path, payload.encode("utf-8"))

    # -- queries ---------------------------------------------------------
    def history(self) -> List[ChannelVersion]:
        """All promotions, oldest first."""
        return list(self.versions)

    def version(self, number: int) -> ChannelVersion:
        for entry in self.versions:
            if entry.version == number:
                return entry
        raise RegistryError(
            f"channel {self.name!r} has no version {number}"
        )

    def active(self) -> Optional[ChannelVersion]:
        """The currently deployed version, or ``None`` when empty."""
        if self.active_version is None:
            return None
        return self.version(self.active_version)

    def active_manifest(self) -> ArtifactManifest:
        """Manifest behind the active version (raises when empty)."""
        entry = self.active()
        if entry is None:
            raise RegistryError(f"channel {self.name!r} has no active version")
        return self.store.get(entry.digest)

    # -- mutations -------------------------------------------------------
    def _check_unpinned(self, operation: str) -> None:
        if self.pinned:
            raise RegistryError(
                f"channel {self.name!r} is pinned; unpin before {operation}"
            )

    def promote(
        self,
        ref: str,
        *,
        policy: Optional[PromotionPolicy] = None,
        note: str = "",
        force: bool = False,
    ) -> ChannelVersion:
        """Append a new active version pointing at ``ref``.

        With a ``policy``, the candidate manifest is checked against
        the active incumbent first and a failing candidate raises
        :class:`~repro.errors.PromotionRejectedError` (``force=True``
        records the promotion anyway, for break-glass deploys).
        Promoting the already-active digest is a no-op returning the
        active entry.
        """
        self._check_unpinned("promoting")
        manifest = self.store.get(ref)
        current = self.active()
        if current is not None and current.digest == manifest.digest:
            return current
        if policy is not None:
            incumbent = None if current is None else self.store.get(current.digest)
            violations = policy.check(manifest, incumbent)
            if violations and not force:
                get_metrics().counter("registry.promotions_rejected").inc()
                policy.reject(self.name, manifest, violations)
        next_version = 1 + max((v.version for v in self.versions), default=0)
        entry = ChannelVersion(
            version=next_version,
            digest=manifest.digest,
            promoted_unix=time.time(),
            note=note,
        )
        self.versions.append(entry)
        self.active_version = entry.version
        self._save()
        get_metrics().counter("registry.promotions").inc()
        return entry

    def rollback(self, steps: int = 1) -> ChannelVersion:
        """Move the active pointer ``steps`` promotions earlier.

        History is kept intact — a later promote appends after the full
        history, and rolling "forward" is just promoting the newer
        digest again.  Rolling back past the first version raises
        :class:`~repro.errors.RegistryError`.
        """
        self._check_unpinned("rolling back")
        if steps < 1:
            raise RegistryError("rollback steps must be >= 1")
        current = self.active()
        if current is None:
            raise RegistryError(
                f"channel {self.name!r} has no active version to roll back"
            )
        index = next(
            i for i, entry in enumerate(self.versions)
            if entry.version == current.version
        )
        if index - steps < 0:
            raise RegistryError(
                f"channel {self.name!r} has only {index} earlier "
                f"version(s); cannot roll back {steps}"
            )
        target = self.versions[index - steps]
        self.active_version = target.version
        self._save()
        get_metrics().counter("registry.rollbacks").inc()
        return target

    def pin(self) -> None:
        """Freeze the active version against promote/rollback."""
        self.pinned = True
        self._save()

    def unpin(self) -> None:
        self.pinned = False
        self._save()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        active = self.active_version if self.active_version is not None else "-"
        pin = ", pinned" if self.pinned else ""
        return (
            f"Channel({self.name!r}, {len(self.versions)} versions, "
            f"active={active}{pin})"
        )
