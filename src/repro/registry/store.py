"""Content-addressed, on-disk store of trained model artifacts.

An *artifact* is one trained set of weights plus the manifest that
makes it deployable without re-deriving anything: the precision spec it
was trained for, the dataset/split it was measured on, the measured
accuracy, the modeled accelerator energy/area/memory cost
(``repro.hw``), and the sweep-cache entry it came from.  Artifacts are
addressed by a SHA-256 digest over their identity (network, precision,
exact weight bytes), so publishing the same trained model twice is
idempotent and two registries that hold the same digest hold the same
model, bit for bit.

On-disk layout (everything written via
:func:`repro.ioutil.atomic_write`, so a crashed publish never leaves a
half-written artifact visible)::

    <root>/artifacts/<digest[:2]>/<digest>/manifest.json
    <root>/artifacts/<digest[:2]>/<digest>/weights.npz
    <root>/channels/<name>.json          (see repro.registry.channels)

A manifest that has been damaged on disk is rebuilt from the weight
archive when possible (:meth:`ArtifactStore.recover_manifest`): the
identity fields are recomputed from the surviving bytes and the
measured metrics — which cannot be recovered — come back as ``nan``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.precision import PrecisionSpec
from repro.errors import RegistryError, SerializationError
from repro.ioutil import atomic_write
from repro.nn.network import Sequential
from repro.nn.serialization import (
    load_network_state,
    network_state,
    read_state_archive,
    state_dict_digest,
)
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.resilience.faults import get_injector
from repro.zoo.registry import build_network

__all__ = ["ArtifactManifest", "ArtifactStore", "artifact_digest"]

#: Manifest schema version; bump when the layout changes incompatibly.
MANIFEST_SCHEMA = 1

_MANIFEST_NAME = "manifest.json"
_WEIGHTS_NAME = "weights.npz"


def artifact_digest(network: str, precision: str, weights_digest: str) -> str:
    """Content address of one artifact.

    Covers exactly the identity: which architecture, at which precision
    spec, with which exact weight bytes.  Metrics, timestamps and
    provenance are *not* part of the address — re-measuring a model
    does not mint a new artifact.
    """
    digest = hashlib.sha256()
    for part in (f"repro-artifact-v{MANIFEST_SCHEMA}", network,
                 precision, weights_digest):
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class ArtifactManifest:
    """Everything needed to deploy one trained model without retraining.

    Attributes:
        digest: content address (see :func:`artifact_digest`).
        network: zoo architecture name (``"lenet_small"``).
        precision: canonical precision key (``"fixed8"``).
        weights_digest: SHA-256 over the stored parameter arrays
            (:func:`repro.nn.serialization.state_dict_digest`); checked
            on every load so silent weight corruption is caught.
        dataset / split: where the accuracy below was measured.
        accuracy: measured fraction correct in [0, 1] (``nan`` unknown).
        loss: measured dataset loss (``nan`` when not recorded).
        n_samples: evaluation sample count behind ``accuracy``.
        energy_uj_per_image: modeled accelerator energy
            (:class:`repro.hw.energy.EnergyModel`).
        area_mm2: modeled accelerator area at this precision.
        memory_kb: paper-style Section V-B weight+buffer footprint.
        sweep_cache_key: the :class:`repro.parallel.SweepCache` entry
            this artifact was published from, when it came from a sweep.
        created_unix / created_by: provenance.
        extra: free-form string extras (git revision, experiment id).
    """

    digest: str
    network: str
    precision: str
    weights_digest: str
    dataset: str = ""
    split: str = ""
    accuracy: float = float("nan")
    loss: float = float("nan")
    n_samples: int = 0
    energy_uj_per_image: float = float("nan")
    area_mm2: float = float("nan")
    memory_kb: float = float("nan")
    sweep_cache_key: Optional[str] = None
    created_unix: float = 0.0
    created_by: str = ""
    schema: int = MANIFEST_SCHEMA
    extra: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ArtifactManifest":
        if not isinstance(payload, dict):
            raise RegistryError("manifest payload is not a mapping")
        missing = [key for key in
                   ("digest", "network", "precision", "weights_digest")
                   if key not in payload]
        if missing:
            raise RegistryError(f"manifest missing required keys {missing}")
        known = {f: payload[f] for f in cls.__dataclass_fields__
                 if f in payload}
        try:
            return cls(**known)
        except (TypeError, ValueError) as exc:
            raise RegistryError(f"manifest fields invalid: {exc}") from exc

    def short_digest(self) -> str:
        return self.digest[:12]


class ArtifactStore:
    """Content-addressed artifact persistence under one root directory.

    All writes are atomic (temp file + rename), publishes of an
    already-stored digest are idempotent, and every weight load is
    verified against the manifest's ``weights_digest`` so a corrupted
    archive raises :class:`~repro.errors.RegistryError` instead of
    serving wrong numbers.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(os.path.join(self.root, "artifacts"), exist_ok=True)
        os.makedirs(os.path.join(self.root, "channels"), exist_ok=True)

    # -- paths -----------------------------------------------------------
    def artifact_dir(self, digest: str) -> str:
        return os.path.join(self.root, "artifacts", digest[:2], digest)

    def manifest_path(self, digest: str) -> str:
        return os.path.join(self.artifact_dir(digest), _MANIFEST_NAME)

    def weights_path(self, digest: str) -> str:
        return os.path.join(self.artifact_dir(digest), _WEIGHTS_NAME)

    def channel_path(self, name: str) -> str:
        return os.path.join(self.root, "channels", f"{name}.json")

    # -- publishing ------------------------------------------------------
    def publish(
        self,
        state: Dict[str, np.ndarray],
        *,
        network: str,
        precision: str,
        dataset: str = "",
        split: str = "",
        accuracy: float = float("nan"),
        loss: float = float("nan"),
        n_samples: int = 0,
        energy_uj_per_image: float = float("nan"),
        area_mm2: float = float("nan"),
        memory_kb: float = float("nan"),
        sweep_cache_key: Optional[str] = None,
        created_by: str = "",
        extra: Optional[Dict[str, str]] = None,
    ) -> ArtifactManifest:
        """Persist one trained state dict plus its manifest.

        ``precision`` is canonicalized through
        :meth:`repro.core.PrecisionSpec.parse`, so ``"fixed:8:8"`` and
        ``"fixed8"`` publish to the same address.  Republishing an
        existing digest rewrites the manifest (metrics may have been
        re-measured) but not the weight archive.
        """
        precision_key = PrecisionSpec.parse(precision).key
        weights_digest = state_dict_digest(state)
        digest = artifact_digest(network, precision_key, weights_digest)
        manifest = ArtifactManifest(
            digest=digest,
            network=network,
            precision=precision_key,
            weights_digest=weights_digest,
            dataset=dataset,
            split=split,
            accuracy=float(accuracy),
            loss=float(loss),
            n_samples=int(n_samples),
            energy_uj_per_image=float(energy_uj_per_image),
            area_mm2=float(area_mm2),
            memory_kb=float(memory_kb),
            sweep_cache_key=sweep_cache_key,
            created_unix=time.time(),
            created_by=created_by,
            extra=dict(extra or {}),
        )
        with get_tracer().span("registry.publish", digest=digest[:12],
                               network=network, precision=precision_key):
            fresh = not os.path.exists(self.weights_path(digest))
            if fresh:
                atomic_write(
                    self.weights_path(digest),
                    lambda handle: np.savez_compressed(handle, **state),
                )
            self._write_manifest(manifest)
        metrics = get_metrics()
        metrics.counter("registry.publishes").inc()
        if not fresh:
            metrics.counter("registry.dedup_publishes").inc()
        return manifest

    def publish_network(self, network_obj: Sequential, **kwargs) -> ArtifactManifest:
        """Publish a live network's parameters (convenience wrapper)."""
        return self.publish(network_state(network_obj), **kwargs)

    def _write_manifest(self, manifest: ArtifactManifest) -> None:
        payload = json.dumps(manifest.to_dict(), indent=2, sort_keys=True,
                             allow_nan=True)
        atomic_write(self.manifest_path(manifest.digest),
                     payload.encode("utf-8"))

    # -- lookup ----------------------------------------------------------
    def exists(self, digest: str) -> bool:
        return os.path.exists(self.manifest_path(digest))

    def digests(self) -> List[str]:
        """Every stored digest (including ones with damaged manifests)."""
        base = os.path.join(self.root, "artifacts")
        found: List[str] = []
        for shard in sorted(os.listdir(base)):
            shard_dir = os.path.join(base, shard)
            if os.path.isdir(shard_dir):
                found.extend(sorted(os.listdir(shard_dir)))
        return found

    def resolve(self, ref: str) -> str:
        """Expand a digest prefix to the unique full digest.

        Unknown prefixes and ambiguous ones (two stored digests share
        the prefix) both raise :class:`~repro.errors.RegistryError`.
        """
        if not ref:
            raise RegistryError("empty artifact reference")
        matches = [d for d in self.digests() if d.startswith(ref)]
        if not matches:
            raise RegistryError(f"no artifact matches {ref!r}")
        if len(matches) > 1:
            raise RegistryError(
                f"ambiguous reference {ref!r}: matches {len(matches)} artifacts"
            )
        return matches[0]

    def get(self, ref: str) -> ArtifactManifest:
        """Load the manifest for a digest (or unique prefix).

        A manifest that exists but cannot be parsed is rebuilt from the
        weight archive (:meth:`recover_manifest`) — measured metrics are
        lost but the artifact stays addressable and deployable.
        """
        digest = self.resolve(ref)
        path = self.manifest_path(digest)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = ArtifactManifest.from_dict(json.load(handle))
        except FileNotFoundError:
            return self.recover_manifest(digest)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError,
                RegistryError):
            get_metrics().counter("registry.corrupt_manifests").inc()
            return self.recover_manifest(digest)
        if manifest.digest != digest:
            get_metrics().counter("registry.corrupt_manifests").inc()
            return self.recover_manifest(digest)
        return manifest

    def recover_manifest(self, digest: str) -> ArtifactManifest:
        """Rebuild a damaged manifest from the surviving weight archive.

        Identity fields are recomputed from the artifact's directory
        name and weight bytes; measured metrics come back ``nan``.  The
        rebuilt manifest is written back so the next read is clean.  If
        the weights are unreadable too the artifact is genuinely lost
        and :class:`~repro.errors.RegistryError` is raised.
        """
        try:
            state = read_state_archive(self.weights_path(digest))
        except (FileNotFoundError, SerializationError) as exc:
            raise RegistryError(
                f"artifact {digest[:12]} unrecoverable: manifest damaged "
                f"and weights unreadable ({exc})"
            ) from exc
        weights_digest = state_dict_digest(state)
        manifest = ArtifactManifest(
            digest=digest,
            network="unknown",
            precision="unknown",
            weights_digest=weights_digest,
            created_unix=time.time(),
            created_by="recover_manifest",
            extra={"recovered": "true"},
        )
        # The digest encodes (network, precision, weights): if exactly
        # one (network, precision) pair reproduces it, identity is fully
        # recovered, not just the weights.
        for name, spec in _identity_candidates():
            if artifact_digest(name, spec, weights_digest) == digest:
                manifest = ArtifactManifest(
                    digest=digest, network=name, precision=spec,
                    weights_digest=weights_digest,
                    created_unix=manifest.created_unix,
                    created_by="recover_manifest",
                    extra={"recovered": "true"},
                )
                break
        self._write_manifest(manifest)
        get_metrics().counter("registry.recovered_manifests").inc()
        return manifest

    def list_artifacts(self) -> List[ArtifactManifest]:
        """All manifests, oldest first (damaged ones auto-recovered)."""
        manifests = [self.get(digest) for digest in self.digests()]
        return sorted(manifests, key=lambda m: (m.created_unix, m.digest))

    def __len__(self) -> int:
        return len(self.digests())

    # -- loading weights -------------------------------------------------
    def load_state(self, ref: str) -> Dict[str, np.ndarray]:
        """Read and verify one artifact's weight arrays.

        Fires the ``registry.load`` fault site (chaos runs exercise the
        deployer's retry/rollback path here) and checks the decoded
        arrays against the manifest's ``weights_digest`` — a mismatch
        means the archive bytes were damaged after publish and raises
        :class:`~repro.errors.RegistryError`.
        """
        manifest = self.get(ref)
        get_injector().fire("registry.load")
        try:
            state = read_state_archive(self.weights_path(manifest.digest))
        except SerializationError as exc:
            raise RegistryError(
                f"artifact {manifest.short_digest()} weights unreadable: {exc}"
            ) from exc
        actual = state_dict_digest(state)
        if actual != manifest.weights_digest:
            raise RegistryError(
                f"artifact {manifest.short_digest()} weight digest mismatch: "
                f"manifest says {manifest.weights_digest[:12]}, "
                f"archive decodes to {actual[:12]}"
            )
        return state

    def load_network(self, ref: str, seed: int = 0) -> Sequential:
        """Rebuild the artifact's architecture with its stored weights."""
        manifest = self.get(ref)
        network = build_network(manifest.network, seed=seed)
        load_network_state(network, self.load_state(manifest.digest))
        return network

    def verify(self, ref: str) -> bool:
        """True when the stored weights still match their manifest."""
        try:
            self.load_state(ref)
            return True
        except (RegistryError, SerializationError, FileNotFoundError):
            return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArtifactStore({self.root!r}, {len(self)} artifacts)"


def _identity_candidates():
    """(network, precision-key) pairs to probe during manifest recovery."""
    from repro.core.precision import PAPER_PRECISIONS
    from repro.zoo.registry import NETWORK_BUILDERS

    for name in NETWORK_BUILDERS:
        for spec in PAPER_PRECISIONS:
            yield name, spec.key


def is_finite_metric(value: float) -> bool:
    """True for a real recorded measurement (``nan`` means unmeasured)."""
    return value is not None and math.isfinite(value)
