"""Budgeted mixed-precision & width search over the sweep machinery.

:class:`PrecisionSearch` explores the (width multiplier x per-layer
precision) plane of one task under an optional per-image energy budget:

1. generation 0 evaluates the fixed paper grid
   (:meth:`SearchSpace.anchors`) plus random samples — the grid doubles
   as the baseline frontier the search is judged against;
2. every generation's Pareto frontier
   (:func:`repro.core.pareto.pareto_frontier`) selects survivors,
   which breed the next generation through local mutations
   (:meth:`SearchSpace.mutate`);
3. candidates train through the ordinary
   :class:`~repro.core.sweep.PrecisionSweep` protocol, dispatched by
   :func:`repro.parallel.run_sweep` — so worker processes and the
   on-disk :class:`~repro.parallel.SweepCache` come for free.  The
   cache is salted with the space fingerprint, which is what makes an
   interrupted search resumable (``--resume``) with bitwise-identical
   results at any worker count;
4. survivors' trained weights publish through
   :func:`repro.registry.publish_with_modeled_costs` and promote
   through a channel behind
   :class:`~repro.registry.PromotionPolicy` — the budget becomes the
   gate's ``max_energy_uj``.

Every random draw derives from ``(seed, "search", ...)`` streams via
:func:`repro.parallel.seeding.generator_for`; nothing depends on wall
clock, worker count or completion order.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.core.pareto import DesignPoint, dominates, pareto_frontier
from repro.core.sweep import PrecisionResult, PrecisionSweep, SweepConfig
from repro.data import load_dataset
from repro.errors import ConfigError
from repro.hw.energy import EnergyModel
from repro.ioutil import atomic_write
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.parallel.cache import SweepCache
from repro.parallel.executor import _point_keys, resolve_cache
from repro.parallel.seeding import generator_for
from repro.registry import (
    ArtifactStore,
    Channel,
    PromotionPolicy,
    promote_frontier,
    publish_with_modeled_costs,
)
from repro.search.space import Candidate, SearchSpace
from repro.zoo import build_network, network_info

__all__ = [
    "SearchConfig",
    "EvaluatedCandidate",
    "SearchResult",
    "PrecisionSearch",
]

logger = logging.getLogger(__name__)

#: Resume-state schema; bump when the state payload layout changes.
STATE_SCHEMA = 1

CacheLike = Union[None, bool, str, SweepCache]


@dataclass
class SearchConfig:
    """Budgets and knobs for one :class:`PrecisionSearch` run.

    Args:
        space: the axes being explored (also the cache salt).
        generations: evolutionary rounds after generation 0.
        population: new candidates bred (or sampled) per generation.
        survivors: frontier points kept as parents each round.
        energy_budget_uj: per-image cap; feasible points drive the
            frontier and the promotion gate (None = unconstrained).
        seed: root seed for sampling/mutation streams (training seeds
            live in ``sweep.seed``).
        workers: worker processes handed to the sweep executor.
        sweep: training budget per candidate.
        n_train / n_test / dataset_seed: dataset sizing (one split is
            drawn for the whole search; it is part of every cache key).
        sim_check: cross-check frontier energies against the
            cycle-level simulator (:mod:`repro.hw.sim`); uniform specs
            only — the simulator prices one datapath width at a time.
    """

    space: SearchSpace
    generations: int = 3
    population: int = 6
    survivors: int = 4
    energy_budget_uj: Optional[float] = None
    seed: int = 0
    workers: int = 1
    sweep: SweepConfig = field(default_factory=SweepConfig)
    n_train: int = 1500
    n_test: int = 400
    dataset_seed: int = 0
    sim_check: bool = False

    def __post_init__(self) -> None:
        if self.generations < 0:
            raise ConfigError("generations", "must be >= 0")
        if self.population < 1:
            raise ConfigError("population", "must be >= 1")
        if self.survivors < 1:
            raise ConfigError("survivors", "must be >= 1")
        if self.energy_budget_uj is not None and self.energy_budget_uj <= 0:
            raise ConfigError("energy_budget_uj", "must be > 0")


@dataclass
class EvaluatedCandidate:
    """One trained + priced search point."""

    candidate: Candidate
    result: PrecisionResult
    energy_uj: float
    generation: int
    cache_key: Optional[str] = None

    @property
    def converged(self) -> bool:
        return self.result.converged

    def design_point(self) -> DesignPoint:
        return DesignPoint(
            label=self.candidate.key,
            accuracy=self.result.accuracy_percent,
            energy_uj=self.energy_uj,
            metadata={
                "network": self.candidate.network,
                "base": self.candidate.base,
                "width": f"{self.candidate.width:g}",
                "precision": self.candidate.spec_key,
                "generation": str(self.generation),
            },
        )


@dataclass
class SearchResult:
    """Everything a search run found."""

    evaluated: List[EvaluatedCandidate]
    frontier: List[DesignPoint]
    grid_frontier: List[DesignPoint]
    dominating: List[DesignPoint]
    generations_run: int
    cache_hits: int = 0
    cache_misses: int = 0
    state_path: Optional[str] = None
    sim_gaps_pct: Dict[str, float] = field(default_factory=dict)

    @property
    def dominates_fixed_grid(self) -> bool:
        """Did the search beat the fixed paper grid somewhere?"""
        return bool(self.dominating)

    def by_label(self, label: str) -> Optional[EvaluatedCandidate]:
        for entry in self.evaluated:
            if entry.candidate.key == label:
                return entry
        return None


class PrecisionSearch:
    """Generation loop + publishing for one :class:`SearchConfig`.

    Args:
        config: search budgets and the space definition.
        cache: like :meth:`PrecisionSweep.run`'s ``cache`` argument;
            the resolved cache is re-salted with the space fingerprint
            so entries can never leak between different spaces.  The
            default ``None`` disables caching (and ``resume``).
        energy_model: shared analytical model (one instance memoizes
            per-width schedules across the whole search).
    """

    def __init__(
        self,
        config: SearchConfig,
        cache: CacheLike = None,
        energy_model: Optional[EnergyModel] = None,
    ):
        self.config = config
        self.space = config.space
        resolved = resolve_cache(cache)
        self.cache: Optional[SweepCache] = None
        if resolved is not None:
            self.cache = SweepCache(resolved.root, salt=self.space.fingerprint())
        self.energy_model = energy_model or EnergyModel()
        info = network_info(self.space.task)
        self._input_shape = info.input_shape
        self.split = load_dataset(
            info.dataset,
            n_train=config.n_train,
            n_test=config.n_test,
            seed=config.dataset_seed,
        )
        template = build_network(self.space.task, seed=config.sweep.seed)
        self.n_layers = len(
            [l for l in template.layers
             if getattr(l, "weight_parameters", None) and l.weight_parameters()]
        )
        self._sweeps: Dict[str, PrecisionSweep] = {}
        self._networks: Dict[str, object] = {}

    # -- plumbing ------------------------------------------------------
    def _sweep(self, network: str) -> PrecisionSweep:
        """One keep-states sweep per distinct (possibly scaled) network."""
        if network not in self._sweeps:
            self._sweeps[network] = PrecisionSweep(
                functools.partial(
                    build_network, network, seed=self.config.sweep.seed
                ),
                self.split,
                config=self.config.sweep,
                keep_states=True,
            )
        return self._sweeps[network]

    def _network(self, name: str):
        if name not in self._networks:
            self._networks[name] = build_network(
                name, seed=self.config.sweep.seed
            )
        return self._networks[name]

    def _energy(self, candidate: Candidate) -> float:
        report = self.energy_model.evaluate_cached(
            self._network(candidate.network),
            self._input_shape,
            candidate.spec(),
        )
        return report.energy_uj

    def _rng(self, *stream: object):
        return generator_for(self.config.seed, "search", *stream)

    # -- evaluation ----------------------------------------------------
    def _evaluate(
        self, candidates: List[Candidate], generation: int
    ) -> List[EvaluatedCandidate]:
        """Train + price a batch, grouped by network for sweep reuse."""
        by_network: Dict[str, List[Candidate]] = {}
        for candidate in candidates:
            by_network.setdefault(candidate.network, []).append(candidate)
        evaluated: List[EvaluatedCandidate] = []
        metrics = get_metrics()
        for network in sorted(by_network):
            group = by_network[network]
            sweep = self._sweep(network)
            specs = [candidate.spec() for candidate in group]
            hits_before = self.cache.hits if self.cache else 0
            results = sweep.run(
                specs, workers=self.config.workers, cache=self.cache
            )
            if self.cache:
                metrics.counter("search.cache_hits").inc(
                    self.cache.hits - hits_before
                )
            keys: Dict[str, str] = {}
            if self.cache is not None:
                keys = _point_keys(sweep, specs, self.cache)
            by_key = {result.spec.key: result for result in results}
            for candidate in group:
                result = by_key[candidate.spec().key]
                evaluated.append(
                    EvaluatedCandidate(
                        candidate=candidate,
                        result=result,
                        energy_uj=self._energy(candidate),
                        generation=generation,
                        cache_key=keys.get(candidate.spec().key),
                    )
                )
        metrics.counter("search.evaluated").inc(len(evaluated))
        return evaluated

    def _feasible(
        self, pool: Dict[str, EvaluatedCandidate]
    ) -> List[DesignPoint]:
        """Converged points under the budget (all converged if none fit)."""
        converged = [e for e in pool.values() if e.converged]
        budget = self.config.energy_budget_uj
        if budget is not None:
            feasible = [e for e in converged if e.energy_uj <= budget]
            if feasible:
                converged = feasible
        return [e.design_point() for e in converged]

    def _select_survivors(self, frontier: List[DesignPoint]) -> List[DesignPoint]:
        """Up to ``survivors`` frontier points, evenly spaced along it."""
        k = self.config.survivors
        if len(frontier) <= k:
            return list(frontier)
        if k == 1:
            return [frontier[0]]
        indices = sorted(
            {round(i * (len(frontier) - 1) / (k - 1)) for i in range(k)}
        )
        return [frontier[i] for i in indices]

    def _breed(
        self,
        survivors: List[DesignPoint],
        pool: Dict[str, EvaluatedCandidate],
        generation: int,
    ) -> List[Candidate]:
        """Population of new, unique candidates for ``generation``."""
        children: List[Candidate] = []
        seen = set(pool)
        for i in range(self.config.population):
            child: Optional[Candidate] = None
            for attempt in range(8):
                rng = self._rng("breed", generation, i, attempt)
                if survivors:
                    parent_label = survivors[
                        int(rng.integers(len(survivors)))
                    ].label
                    parent = pool[parent_label].candidate
                    child = self.space.mutate(parent, rng, self.n_layers)
                else:
                    child = None
                if child is None:
                    child = self.space.sample(rng, self.n_layers)
                if child.key not in seen:
                    break
                child = None
            if child is not None:
                seen.add(child.key)
                children.append(child)
        return children

    # -- resume state --------------------------------------------------
    def state_path(self) -> Optional[str]:
        if self.cache is None:
            return None
        return os.path.join(
            self.cache.root, f"search-{self.space.fingerprint()[:12]}.json"
        )

    def _save_state(self, generation: int, pool_size: int) -> None:
        path = self.state_path()
        if path is None:
            return
        payload = {
            "schema": STATE_SCHEMA,
            "fingerprint": self.space.fingerprint(),
            "task": self.space.task,
            "seed": self.config.seed,
            "generations_done": generation,
            "evaluated": pool_size,
        }
        atomic_write(path, json.dumps(payload, indent=1).encode("utf-8"))

    def _check_resume(self) -> None:
        """Validate any prior state file against this run's identity.

        The actual resume mechanism is the salted cache — replaying
        the deterministic loop turns finished points into cache hits —
        so all the state file must do is refuse to resume a *different*
        search into this cache namespace.
        """
        path = self.state_path()
        if path is None:
            raise ConfigError(
                "resume", "resuming requires a cache (pass cache=...)"
            )
        if not os.path.exists(path):
            logger.info("search resume: no prior state at %s; fresh run", path)
            return
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        if state.get("fingerprint") != self.space.fingerprint():
            raise ConfigError(
                "resume",
                f"state file {path} was written by a different search "
                "space (fingerprint mismatch)",
            )
        if state.get("seed") != self.config.seed:
            raise ConfigError(
                "resume",
                f"state file {path} used seed {state.get('seed')}, "
                f"this run uses {self.config.seed}",
            )
        logger.info(
            "search resume: replaying %s generation(s) from cache",
            state.get("generations_done", 0),
        )

    # -- the loop ------------------------------------------------------
    def run(self, resume: bool = False) -> SearchResult:
        """Execute the full search; see the module docstring."""
        if resume:
            self._check_resume()
        metrics = get_metrics()
        tracer = get_tracer()
        pool: Dict[str, EvaluatedCandidate] = {}
        with tracer.span(
            "search.run",
            task=self.space.task,
            generations=self.config.generations,
            workers=self.config.workers,
        ):
            # generation 0: the fixed grid + uniform random samples
            seeds = list(self.space.anchors())
            seen = {candidate.key for candidate in seeds}
            for i in range(self.config.population):
                for attempt in range(8):
                    candidate = self.space.sample(
                        self._rng("seed", i, attempt), self.n_layers
                    )
                    if candidate.key not in seen:
                        seen.add(candidate.key)
                        seeds.append(candidate)
                        break
            anchor_labels = {c.key for c in self.space.anchors()}
            generations_run = 0
            with tracer.span("search.generation", generation=0,
                             population=len(seeds)):
                metrics.counter("search.generation").inc()
                for entry in self._evaluate(seeds, generation=0):
                    pool[entry.candidate.key] = entry
            self._save_state(0, len(pool))

            for generation in range(1, self.config.generations + 1):
                frontier = pareto_frontier(self._feasible(pool))
                survivors = self._select_survivors(frontier)
                children = self._breed(survivors, pool, generation)
                if not children:
                    logger.info(
                        "search: generation %d bred no new candidates; "
                        "stopping early", generation,
                    )
                    break
                with tracer.span("search.generation", generation=generation,
                                 population=len(children)):
                    metrics.counter("search.generation").inc()
                    for entry in self._evaluate(children, generation):
                        pool[entry.candidate.key] = entry
                generations_run = generation
                self._save_state(generation, len(pool))

        frontier = pareto_frontier(self._feasible(pool))
        grid_points = [
            entry.design_point()
            for entry in pool.values()
            if entry.candidate.key in anchor_labels and entry.converged
        ]
        grid_frontier = pareto_frontier(grid_points)
        dominating = [
            point for point in frontier
            if point.label not in anchor_labels
            and any(dominates(point, anchor) for anchor in grid_frontier)
        ]
        result = SearchResult(
            evaluated=sorted(
                pool.values(),
                key=lambda e: (e.generation, e.candidate.key),
            ),
            frontier=frontier,
            grid_frontier=grid_frontier,
            dominating=dominating,
            generations_run=generations_run,
            cache_hits=self.cache.hits if self.cache else 0,
            cache_misses=self.cache.misses if self.cache else 0,
            state_path=self.state_path(),
        )
        if self.config.sim_check:
            result.sim_gaps_pct = self._sim_check(result)
        return result

    def _sim_check(self, result: SearchResult) -> Dict[str, float]:
        """Cycle-level cross-check of the frontier's analytical energies."""
        gaps: Dict[str, float] = {}
        for point in result.frontier:
            entry = result.by_label(point.label)
            if entry is None:
                continue
            spec = entry.candidate.spec()
            if getattr(spec, "weight_bits_per_layer", None):
                continue  # simulator prices one datapath width at a time
            report = self.energy_model.simulate(
                self._network(entry.candidate.network),
                self._input_shape,
                spec,
            )
            gaps[point.label] = report.energy_gap_pct
        return gaps

    # -- publishing ----------------------------------------------------
    def publish(
        self,
        result: SearchResult,
        root: str,
        channel_name: Optional[str] = None,
    ) -> Dict[str, object]:
        """Publish the frontier and promote it behind the Pareto gate.

        Every frontier point whose trained weights the search retained
        becomes an artifact (manifest carries width/generation and the
        salted sweep cache key for provenance); the frontier then walks
        the channel expensive-first through
        :func:`repro.registry.promote_frontier` with the energy budget
        as the gate's absolute ``max_energy_uj``.
        """
        store = ArtifactStore(root)
        channel = Channel(store, channel_name or f"search-{self.space.task}")
        manifests: Dict[str, object] = {}
        for point in result.frontier:
            entry = result.by_label(point.label)
            if entry is None:
                continue
            sweep = self._sweeps.get(entry.candidate.network)
            if sweep is None:
                continue
            state = sweep.point_states.get(entry.candidate.spec_key)
            if state is None:
                continue
            manifests[point.label] = publish_with_modeled_costs(
                store,
                state,
                entry.candidate.network,
                entry.candidate.spec_key,
                accuracy=entry.result.accuracy,
                n_samples=len(self.split.test.labels),
                energy_model=self.energy_model,
                sweep_cache_key=entry.cache_key,
                created_by="search",
                extra={
                    "search_base": entry.candidate.base,
                    "search_width": f"{entry.candidate.width:g}",
                    "search_generation": str(entry.generation),
                    "search_fingerprint": self.space.fingerprint(),
                },
            )
        policy = PromotionPolicy(max_energy_uj=self.config.energy_budget_uj)
        promoted, rejected = promote_frontier(
            channel, result.frontier, manifests,
            policy=policy, note=f"search {self.space.task}",
        )
        return {
            "store": store,
            "channel": channel,
            "artifacts": manifests,
            "promoted": promoted,
            "rejected": rejected,
        }
