"""The search space: width multipliers x (per-layer) precision specs.

A :class:`SearchSpace` pins every axis the explorer may move along —
the task architecture, the admissible width multipliers, the weight
bit-width menu, the activation width and whether per-layer assignments
are allowed.  Its :meth:`~SearchSpace.fingerprint` is mixed into every
sweep-cache key (``SweepCache(salt=...)``), so a resumed search can
only ever read evaluations produced by an identical space definition.

Candidates, sampling and mutation are all deterministic functions of
the space plus an explicit :class:`numpy.random.Generator` — the engine
derives those generators from the root seed alone
(:func:`repro.parallel.seeding.generator_for`), which is what makes a
search bitwise-reproducible at any worker count.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.precision import (
    PAPER_PRECISIONS,
    PrecisionSpec,
    layered_spec,
)
from repro.errors import ConfigError
from repro.zoo.scale import scaled_name

__all__ = ["Candidate", "SearchSpace"]


@dataclass(frozen=True)
class Candidate:
    """One point of the search space: (architecture width, precision).

    ``base`` is the task's registered network name; ``width`` a
    multiplier from the space's menu; ``spec_key`` any key
    :meth:`~repro.core.precision.PrecisionSpec.parse` accepts
    (uniform or per-layer).
    """

    base: str
    width: float
    spec_key: str

    @property
    def network(self) -> str:
        """Resolvable network name (``base`` itself at width 1.0)."""
        if self.width == 1.0:
            return self.base
        return scaled_name(self.base, self.width)

    @property
    def key(self) -> str:
        """Stable identity used for dedup and result bookkeeping."""
        return f"{self.network}|{self.spec_key}"

    def spec(self) -> PrecisionSpec:
        return PrecisionSpec.parse(self.spec_key)


@dataclass(frozen=True)
class SearchSpace:
    """Axes of the mixed-precision/width search.

    Attributes:
        task: registered network name whose architecture is scaled.
        width_choices: admissible width multipliers (must include the
            values mutation steps between; 1.0 anchors the fixed grid).
        weight_bit_choices: admissible weight bit-widths, ascending.
        input_bits: activation/feature-map width shared by all
            generated specs (the paper fixes activations per table).
        kind: representation family of generated specs (``"fixed"`` or
            ``"pow2"``).
        per_layer: allow per-layer weight-width assignments
            (:class:`~repro.core.precision.LayeredPrecisionSpec`).
    """

    task: str
    width_choices: Tuple[float, ...] = (0.5, 0.75, 1.0, 1.25, 1.5)
    weight_bit_choices: Tuple[int, ...] = (2, 4, 6, 8)
    input_bits: int = 8
    kind: str = "fixed"
    per_layer: bool = True

    def __post_init__(self) -> None:
        if not self.width_choices:
            raise ConfigError("width_choices", "need at least one width")
        if any(not w > 0 for w in self.width_choices):
            raise ConfigError("width_choices", "widths must be > 0")
        if 1.0 not in self.width_choices:
            raise ConfigError(
                "width_choices",
                "width 1.0 must be included (it anchors the fixed grid)",
            )
        if not self.weight_bit_choices:
            raise ConfigError("weight_bit_choices", "need at least one width")
        if any(bits < 1 for bits in self.weight_bit_choices):
            raise ConfigError("weight_bit_choices", "bit widths must be >= 1")
        if self.input_bits < 1:
            raise ConfigError("input_bits", "bit widths must be >= 1")
        if self.kind not in ("fixed", "pow2"):
            raise ConfigError(
                "kind", f"searchable kinds are 'fixed'/'pow2', got {self.kind!r}"
            )
        # canonicalize order so equal spaces fingerprint equally
        object.__setattr__(
            self, "width_choices", tuple(sorted(set(self.width_choices)))
        )
        object.__setattr__(
            self, "weight_bit_choices",
            tuple(sorted(set(int(b) for b in self.weight_bit_choices))),
        )

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over the full space definition (the cache salt)."""
        payload = json.dumps(
            dataclasses.asdict(self), sort_keys=True, default=str
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def _uniform_key(self, bits: int) -> str:
        return PrecisionSpec.parse(f"{self.kind}:{bits}:{self.input_bits}").key

    def _candidate_from_bits(self, width: float, bits: List[int]) -> Candidate:
        """Collapse all-equal per-layer widths back to a uniform spec."""
        if len(set(bits)) == 1:
            return Candidate(self.task, width, self._uniform_key(bits[0]))
        return Candidate(
            self.task, width,
            layered_spec(self.kind, bits, self.input_bits).key,
        )

    def anchors(self) -> List[Candidate]:
        """The fixed grid: every paper precision at width 1.0.

        Always part of generation 0 — they are both the baseline
        frontier the search must beat and legitimate search members.
        """
        return [
            Candidate(self.task, 1.0, spec.key) for spec in PAPER_PRECISIONS
        ]

    def sample(self, rng: np.random.Generator, n_layers: int) -> Candidate:
        """Draw one candidate uniformly from the space."""
        width = float(self.width_choices[rng.integers(len(self.width_choices))])
        if self.per_layer and n_layers > 1 and rng.random() < 0.5:
            bits = [
                int(self.weight_bit_choices[
                    rng.integers(len(self.weight_bit_choices))
                ])
                for _ in range(n_layers)
            ]
        else:
            bits = [int(self.weight_bit_choices[
                rng.integers(len(self.weight_bit_choices))
            ])] * n_layers
        return self._candidate_from_bits(width, bits)

    def mutate(
        self,
        candidate: Candidate,
        rng: np.random.Generator,
        n_layers: int,
    ) -> Optional[Candidate]:
        """One local move: step the width, all widths, or one layer.

        Anchors outside the space's own menus (e.g. the float32 or
        pow2 grid points when ``kind == "fixed"``) cannot be stepped
        locally; callers fall back to :meth:`sample` on ``None``.
        """
        spec = candidate.spec()
        if spec.kind.value != self.kind:
            return None
        layered = getattr(spec, "weight_bits_per_layer", None)
        bits = list(layered) if layered else [spec.weight_bits] * n_layers
        if len(bits) != n_layers:
            return None
        if any(b not in self.weight_bit_choices for b in bits):
            return None
        if candidate.width not in self.width_choices:
            return None

        ops = 3 if (self.per_layer and n_layers > 1) else 2
        op = int(rng.integers(ops))
        step = -1 if rng.random() < 0.5 else 1
        if op == 0:
            index = self.width_choices.index(candidate.width)
            index = min(max(index + step, 0), len(self.width_choices) - 1)
            return self._candidate_from_bits(
                float(self.width_choices[index]), bits
            )
        if op == 1:
            indices = [self.weight_bit_choices.index(b) for b in bits]
            moved = [
                min(max(i + step, 0), len(self.weight_bit_choices) - 1)
                for i in indices
            ]
            bits = [int(self.weight_bit_choices[i]) for i in moved]
            return self._candidate_from_bits(candidate.width, bits)
        layer = int(rng.integers(n_layers))
        index = self.weight_bit_choices.index(bits[layer])
        index = min(max(index + step, 0), len(self.weight_bit_choices) - 1)
        bits[layer] = int(self.weight_bit_choices[index])
        return self._candidate_from_bits(candidate.width, bits)
