"""Automated mixed-precision & width search (``repro search``).

Explores per-layer precision assignments
(:class:`~repro.core.precision.LayeredPrecisionSpec`) crossed with
width-scaled architectures (:mod:`repro.zoo.scale`) under an energy
budget, pruning each generation with the Pareto frontier and promoting
survivors into the model registry.  See ``docs/search.md``.
"""

from repro.search.engine import (
    EvaluatedCandidate,
    PrecisionSearch,
    SearchConfig,
    SearchResult,
)
from repro.search.space import Candidate, SearchSpace

__all__ = [
    "Candidate",
    "EvaluatedCandidate",
    "PrecisionSearch",
    "SearchConfig",
    "SearchResult",
    "SearchSpace",
]
