"""ASCII table / chart rendering for experiment output."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width ASCII table."""
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rows:
        lines.append(
            " | ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_bar_chart(
    series: Dict[str, Dict[str, float]],
    value_label: str,
    width: int = 40,
) -> str:
    """Stacked horizontal bars: ``{bar_label: {segment: value}}``.

    Each bar shows its total and the per-segment values, scaled so the
    largest total spans ``width`` characters.
    """
    glyphs = "#=+."
    totals = {label: sum(parts.values()) for label, parts in series.items()}
    peak = max(totals.values()) if totals else 1.0
    label_width = max(len(label) for label in series) if series else 0
    lines = [f"{value_label} (largest = {peak:.2f})"]
    for label, parts in series.items():
        bar = ""
        for i, (segment, value) in enumerate(parts.items()):
            chars = int(round(width * value / peak)) if peak else 0
            bar += glyphs[i % len(glyphs)] * chars
        lines.append(f"{label.ljust(label_width)} |{bar} {totals[label]:.2f}")
    if series:
        first = next(iter(series.values()))
        legend = "  ".join(
            f"{glyphs[i % len(glyphs)]}={segment}" for i, segment in enumerate(first)
        )
        lines.append(f"legend: {legend}")
    return "\n".join(lines)


def format_scatter(
    points: Sequence[Dict[str, object]],
    x_key: str,
    y_key: str,
    label_key: str,
    marker_key: str = "",
    width: int = 72,
    height: int = 20,
    log_x: bool = True,
) -> str:
    """Render labelled points on a character grid (Figure 4 style)."""
    import math

    if not points:
        return "(no points)"
    xs = [float(p[x_key]) for p in points]
    ys = [float(p[y_key]) for p in points]
    if log_x:
        xs = [math.log10(max(x, 1e-12)) for x in xs]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, point in enumerate(points):
        col = int((xs[index] - x_min) / x_span * (width - 1))
        row = int((y_max - ys[index]) / y_span * (height - 1))
        marker = str(point.get(marker_key, "*"))[:1] if marker_key else "*"
        grid[row][col] = marker
        legend.append(f"  {marker} {point[label_key]}: "
                      f"({float(point[x_key]):.1f}, {float(point[y_key]):.2f})")
    axis = "log10(x)" if log_x else "x"
    lines = [f"y: {y_min:.1f}..{y_max:.1f}   {axis}: {x_min:.2f}..{x_max:.2f}"]
    lines.extend("".join(row) for row in grid)
    lines.extend(legend)
    return "\n".join(lines)
