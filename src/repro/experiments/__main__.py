"""Command-line experiment runner.

Usage::

    python -m repro.experiments table3
    python -m repro.experiments fig3
    python -m repro.experiments memory
    python -m repro.experiments table4          # trains (minutes)
    python -m repro.experiments table4 --workers 4   # parallel + cached
    python -m repro.experiments table5 --full   # paper budgets (hours)
    python -m repro.experiments fig4
    python -m repro.experiments fig4 --registry models/   # + publish frontier
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import backends
from repro.experiments import fig3, fig4, memory, table3, table4, table5
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SweepRunner
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

HARDWARE_ONLY = {
    "table3": lambda runner: table3.format_results(table3.run()),
    "fig3": lambda runner: fig3.format_results(fig3.run()),
    "memory": lambda runner: memory.format_results(memory.run()),
}
TRAINED = {
    "table4": lambda runner: table4.format_results(table4.run(runner=runner)),
    "table5": lambda runner: table5.format_results(table5.run(runner=runner)),
    "fig4": lambda runner: fig4.format_results(fig4.run(runner=runner)),
}
ALL = {**HARDWARE_ONLY, **TRAINED}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=sorted(ALL) + ["all"])
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's exact architectures and long training budgets",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes per accuracy sweep (results are bitwise "
             "identical to --workers 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk sweep result cache",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="retrain every point, overwriting cached results",
    )
    parser.add_argument(
        "--cache-dir", default="", metavar="PATH",
        help="sweep cache directory (default: $REPRO_SWEEP_CACHE or "
             "~/.cache/repro-sweeps)",
    )
    parser.add_argument(
        "--registry", default="", metavar="ROOT",
        help="fig4 only: publish every trained design point into the "
             "model registry at ROOT and promote the Pareto frontier "
             "through the 'fig4' channel",
    )
    parser.add_argument(
        "--backend", default="", metavar="NAME",
        help="compute backend for quantized inference (reference|fused); "
             "exported via REPRO_BACKEND so sweep workers inherit it",
    )
    args = parser.parse_args(argv)

    if args.backend:
        backends.set_default(args.backend)
        os.environ[backends.ENV_VAR] = args.backend

    config = ExperimentConfig.full() if args.full else ExperimentConfig.from_environment()
    cache = False if args.no_cache else (args.cache_dir or True)
    if args.registry:
        # Publishing needs the trained weights in memory, which the
        # on-disk result cache does not carry — retrain and keep them.
        cache = False
    runner = SweepRunner(
        config, workers=args.workers, cache=cache, refresh=args.refresh,
        keep_states=bool(args.registry),
    )

    names = sorted(ALL) if args.experiment == "all" else [args.experiment]
    metrics = get_metrics()
    for name in names:
        if name in TRAINED:
            print(f"[{name}] training sweeps ({config.mode} mode)...",
                  file=sys.stderr)
        started = time.perf_counter()
        with get_tracer().span("experiment", table=name):
            if name == "fig4" and args.registry:
                result = fig4.run(runner=runner)
                output = fig4.format_results(result)
                published = fig4.publish_registry(
                    result, runner, args.registry
                )
                output += "\n\n" + fig4.format_registry(published)
            else:
                output = ALL[name](runner)
        elapsed = time.perf_counter() - started
        metrics.gauge(f"experiments.{name}.elapsed_s").set(elapsed)
        metrics.histogram("experiments.table_s").observe(elapsed)
        print(output)
        print()
        print(f"[{name}] done in {elapsed:.1f} s", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
