"""Section V-B memory analysis — parameter footprint per precision.

The paper: "network parameters require approximately 1650KB, and
2150KB, and 350KB of memory for LeNet, CONVnet, and ALEX" (and 1250KB
/ 9400KB for ALEX+ / ALEX++), with "the memory footprint of each
network reduc[ing] from 2x to 32x for different bit precisions".
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.precision import PAPER_PRECISIONS
from repro.experiments.formatting import format_table
from repro.hw.memory_footprint import network_memory_footprint
from repro.zoo.registry import build_network, network_info

#: Paper parameter-memory figures at full precision (KB).
PAPER_PARAMETER_KB = {
    "lenet": 1650.0,
    "convnet": 2150.0,
    "alex": 350.0,
    "alex+": 1250.0,
    "alex++": 9400.0,
}

NETWORKS = ["lenet", "convnet", "alex", "alex+", "alex++"]


def run() -> List[Dict[str, object]]:
    """One record per network with per-precision parameter memory."""
    records: List[Dict[str, object]] = []
    for name in NETWORKS:
        info = network_info(name)
        network = build_network(name)
        footprints = {
            spec.key: network_memory_footprint(network, info.input_shape, spec)
            for spec in PAPER_PRECISIONS
        }
        baseline = footprints["float32"]
        records.append(
            {
                "network": name,
                "parameter_count": baseline.parameter_count,
                "paper_kb": PAPER_PARAMETER_KB[name],
                "footprints": footprints,
                "reductions": {
                    key: fp.reduction_vs(baseline) for key, fp in footprints.items()
                },
            }
        )
    return records


def format_results(records: List[Dict[str, object]]) -> str:
    headers = ["network", "params", "float32 KB", "paper KB"] + [
        spec.key for spec in PAPER_PRECISIONS if not spec.is_float
    ]
    rows = []
    for record in records:
        footprints = record["footprints"]
        row = [
            record["network"],
            str(record["parameter_count"]),
            f"{footprints['float32'].parameter_kb:.0f}",
            f"{record['paper_kb']:.0f}",
        ]
        for spec in PAPER_PRECISIONS:
            if spec.is_float:
                continue
            row.append(f"{footprints[spec.key].parameter_kb:.0f} KB "
                       f"({record['reductions'][spec.key]:.0f}x)")
        rows.append(row)
    return format_table(
        headers, rows,
        title="Section V-B: parameter memory per precision (KB, reduction vs float32)",
    )
