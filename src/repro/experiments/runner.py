"""Shared sweep execution with in-process caching.

Table IV, Table V and Figure 4 all need (network, precision) accuracy
sweeps plus hardware energy numbers; :class:`SweepRunner` trains each
sweep once per process and serves every driver from the cache.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.precision import PAPER_PRECISIONS, PrecisionSpec
from repro.core.sweep import PrecisionResult, PrecisionSweep
from repro.data.registry import load_dataset
from repro.experiments.config import ExperimentConfig
from repro.hw.energy import EnergyModel, EnergyReport
from repro.obs.tracer import get_tracer
from repro.zoo.registry import build_network, network_info

#: paper dataset -> paper network name(s)
TASK_NETWORKS = {
    "digits": ["lenet"],
    "svhn": ["convnet"],
    "cifar": ["alex", "alex+", "alex++"],
}


@dataclass
class EvaluatedPoint:
    """Accuracy + hardware energy for one (network, precision) pair."""

    network: str            # paper architecture name
    trained_network: str    # network actually trained (proxy in quick mode)
    spec: PrecisionSpec
    accuracy: float         # test accuracy in [0, 1]
    converged: bool
    energy_uj: float        # per-image energy on the paper architecture
    energy_saving_pct: float  # vs. the float32 baseline network

    @property
    def accuracy_percent(self) -> float:
        return 100.0 * self.accuracy


class SweepRunner:
    """Caches datasets, trained sweeps and energy reports per process.

    Beyond the in-process memoization, the runner can parallelize
    accuracy sweeps over worker processes and resume them from the
    on-disk result cache:

    Args:
        config: experiment budgets (quick proxy vs. paper-fidelity).
        workers: worker processes per network sweep (``1`` = the
            legacy sequential path; results are bitwise identical
            either way).
        cache: on-disk sweep cache — ``None`` disables, ``True`` uses
            the default directory, a string names one, or pass a
            :class:`repro.parallel.SweepCache`.
        refresh: ignore cached results, retrain, and overwrite them.
    """

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        *,
        workers: int = 1,
        cache: object = None,
        refresh: bool = False,
        keep_states: bool = False,
    ):
        self.config = config or ExperimentConfig.from_environment()
        self.workers = max(1, int(workers))
        self.cache = cache
        self.refresh = refresh
        self.keep_states = keep_states
        self.energy_model = EnergyModel()
        self._splits: Dict[str, object] = {}
        self._sweeps: Dict[str, PrecisionSweep] = {}
        self._results: Dict[tuple, PrecisionResult] = {}
        self._energy: Dict[tuple, EnergyReport] = {}
        self._energy_networks: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def split_for(self, dataset: str):
        if dataset not in self._splits:
            self._splits[dataset] = load_dataset(
                dataset,
                n_train=self.config.n_train,
                n_test=self.config.n_test,
                seed=self.config.dataset_seed,
            )
        return self._splits[dataset]

    def _sweep_for(self, trained_name: str, dataset: str) -> PrecisionSweep:
        if trained_name not in self._sweeps:
            self._sweeps[trained_name] = PrecisionSweep(
                # functools.partial (not a lambda) so the builder
                # pickles into worker processes.
                builder=functools.partial(
                    build_network, trained_name, self.config.sweep.seed
                ),
                split=self.split_for(dataset),
                config=self.config.sweep,
                keep_states=self.keep_states,
            )
        return self._sweeps[trained_name]

    def trained_state(self, paper_network: str, spec: PrecisionSpec):
        """Trained parameter arrays for one evaluated point, or ``None``.

        Only available when the runner was built with
        ``keep_states=True`` and the point actually trained (registry
        publishing from the Figure 4 driver); cached sweep results that
        were restored without their weights return ``None``.
        """
        trained = self.config.accuracy_network(paper_network)
        sweep = self._sweeps.get(trained)
        if sweep is None:
            return None
        return sweep.point_states.get(spec.key)

    def prefetch(
        self, paper_network: str, specs: Sequence[PrecisionSpec]
    ) -> None:
        """Train (or load from cache) several points in one parallel batch.

        Populates the in-process result memo so the subsequent
        per-point :meth:`accuracy_result` calls are pure lookups.
        """
        trained = self.config.accuracy_network(paper_network)
        wanted = [
            spec for spec in specs if (trained, spec.key) not in self._results
        ]
        if not wanted:
            return
        dataset = network_info(paper_network).dataset
        sweep = self._sweep_for(trained, dataset)
        with get_tracer().span(
            "runner.prefetch", network=trained, points=len(wanted)
        ):
            results = sweep.run(
                wanted,
                workers=self.workers,
                cache=self.cache,
                refresh=self.refresh,
            )
        for spec, result in zip(wanted, results):
            self._results[(trained, spec.key)] = result

    def accuracy_result(
        self, paper_network: str, spec: PrecisionSpec
    ) -> PrecisionResult:
        """Trained accuracy for one point (cached)."""
        trained = self.config.accuracy_network(paper_network)
        key = (trained, spec.key)
        if key not in self._results:
            dataset = network_info(paper_network).dataset
            sweep = self._sweep_for(trained, dataset)
            with get_tracer().span(
                "runner.accuracy", network=trained, spec=spec.key
            ):
                if self.cache or self.refresh:
                    self._results[key] = sweep.run(
                        [spec], cache=self.cache, refresh=self.refresh
                    )[0]
                else:
                    self._results[key] = sweep.run_precision(spec)
        return self._results[key]

    def energy_report(self, paper_network: str, spec: PrecisionSpec) -> EnergyReport:
        """Per-image energy of the *paper* architecture (cached).

        The energy model only reads layer shapes, so one built network
        per architecture serves every precision spec.
        """
        key = (paper_network, spec.key)
        if key not in self._energy:
            info = network_info(paper_network)
            if paper_network not in self._energy_networks:
                self._energy_networks[paper_network] = build_network(paper_network)
            self._energy[key] = self.energy_model.evaluate(
                self._energy_networks[paper_network], info.input_shape, spec
            )
        return self._energy[key]

    # ------------------------------------------------------------------
    def evaluate_point(
        self,
        paper_network: str,
        spec: PrecisionSpec,
        energy_baseline_network: Optional[str] = None,
    ) -> EvaluatedPoint:
        """Combine accuracy and energy for one design point.

        ``energy_baseline_network`` names the float32 reference for the
        savings column; Table V references everything to plain ALEX.
        """
        result = self.accuracy_result(paper_network, spec)
        energy = self.energy_report(paper_network, spec)
        baseline_name = energy_baseline_network or paper_network
        baseline = self.energy_report(baseline_name, PAPER_PRECISIONS[0])
        return EvaluatedPoint(
            network=paper_network,
            trained_network=self.config.accuracy_network(paper_network),
            spec=spec,
            accuracy=result.accuracy,
            converged=result.converged,
            energy_uj=energy.energy_uj,
            energy_saving_pct=energy.savings_vs(baseline),
        )

    def evaluate_network(
        self,
        paper_network: str,
        precisions: Optional[Sequence[PrecisionSpec]] = None,
        energy_baseline_network: Optional[str] = None,
    ) -> List[EvaluatedPoint]:
        specs = list(precisions) if precisions is not None else list(PAPER_PRECISIONS)
        if self.workers > 1 or self.cache:
            self.prefetch(paper_network, specs)
        return [
            self.evaluate_point(paper_network, spec, energy_baseline_network)
            for spec in specs
        ]
