"""Table V — CIFAR-role performance for ALEX, ALEX+ and ALEX++.

The paper's headline result: a portion of the energy saved by low
precision can be spent on a larger network, recovering (or exceeding)
full-precision accuracy while still saving energy.  Energy savings are
all referenced to the plain-ALEX float32 implementation; rows that use
*more* energy than that baseline are printed as "Nx More", as in the
paper.

Paper values (accuracy %, energy uJ, saving % vs ALEX float32):

    Floating-Point (32,32)    81.22   335.68    0
    Fixed-Point (32,32)       79.71   293.90   12.45
    Fixed-Point (16,16)       79.77   136.61   59.30
    Fixed-Point+ (16,16)      81.86   491.32   1.5x More
    Fixed-Point++ (16,16)     82.26   628.17   1.9x More
    Fixed-Point (8,8)         77.99    49.22   85.34
    Fixed-Point+ (8,8)        78.71   177.02   47.27
    Fixed-Point++ (8,8)       75.03   226.32   32.59
    Powers of Two (6,16)      77.03    46.77   86.07
    Powers of Two+ (6,16)     77.34   168.21   49.89
    Powers of Two++ (6,16)    81.26   215.05   35.93
    Binary Net (1,16)         74.84    19.79   94.10
    Binary Net+ (1,16)        77.91    71.18   78.80
    Binary Net++ (1,16)       80.52    91.00   72.89

(Fixed-point (4,4) failed to converge on all three networks and
fixed-point (32,32) is only reported for plain ALEX, as in the paper.)
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.precision import get_precision
from repro.experiments.config import ExperimentConfig
from repro.experiments.formatting import format_table
from repro.experiments.runner import EvaluatedPoint, SweepRunner

#: (precision key, network) rows in the paper's Table V order.
TABLE5_ROWS = [
    ("float32", "alex"),
    ("fixed32", "alex"),
    ("fixed16", "alex"),
    ("fixed16", "alex+"),
    ("fixed16", "alex++"),
    ("fixed8", "alex"),
    ("fixed8", "alex+"),
    ("fixed8", "alex++"),
    ("pow2", "alex"),
    ("pow2", "alex+"),
    ("pow2", "alex++"),
    ("binary", "alex"),
    ("binary", "alex+"),
    ("binary", "alex++"),
]

#: Paper Table V accuracies, for EXPERIMENTS.md comparisons.
PAPER_TABLE5_ACCURACY = {
    ("float32", "alex"): 81.22,
    ("fixed32", "alex"): 79.71,
    ("fixed16", "alex"): 79.77,
    ("fixed16", "alex+"): 81.86,
    ("fixed16", "alex++"): 82.26,
    ("fixed8", "alex"): 77.99,
    ("fixed8", "alex+"): 78.71,
    ("fixed8", "alex++"): 75.03,
    ("pow2", "alex"): 77.03,
    ("pow2", "alex+"): 77.34,
    ("pow2", "alex++"): 81.26,
    ("binary", "alex"): 74.84,
    ("binary", "alex+"): 77.91,
    ("binary", "alex++"): 80.52,
}


def variant_label(spec_label: str, network: str) -> str:
    """Paper row label: the +/++ suffix goes on the precision name."""
    suffix = network[len("alex"):]
    name, _, bits = spec_label.partition(" ")
    if " " in spec_label:
        head, bits = spec_label.rsplit(" ", 1)
        return f"{head}{suffix} {bits}"
    return f"{spec_label}{suffix}"


def run(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> List[EvaluatedPoint]:
    """Evaluate every Table V row (energy referenced to ALEX float32)."""
    runner = runner or SweepRunner(config)
    return [
        runner.evaluate_point(network, get_precision(key),
                              energy_baseline_network="alex")
        for key, network in TABLE5_ROWS
    ]


def format_results(points: List[EvaluatedPoint]) -> str:
    rows = []
    for point in points:
        label = variant_label(point.spec.label, point.network)
        if not point.converged:
            rows.append([label, "NA", "NA", "NA"])
            continue
        if point.energy_saving_pct < 0:
            saving = f"{1.0 - point.energy_saving_pct / 100.0:.1f}x More"
        else:
            saving = f"{point.energy_saving_pct:.2f}"
        rows.append(
            [
                label,
                f"{point.accuracy_percent:.2f}",
                f"{point.energy_uj:.2f}",
                saving,
            ]
        )
    return format_table(
        ["Precision (w,in)", "Acc %", "Energy uJ", "Energy Sav %"],
        rows,
        title=(
            "Table V: cifar-role performance for ALEX / ALEX+ / ALEX++ "
            "(energy savings vs ALEX float32)"
        ),
    )
