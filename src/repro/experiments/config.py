"""Shared experiment configuration.

``ExperimentConfig.quick()`` (the default, and what the benchmark
harness uses) trains the reduced proxy networks on small synthetic
datasets — the full study completes in minutes.  ``full()`` uses the
paper's exact architectures and larger datasets; set ``REPRO_FULL=1``
in the environment to make the benchmarks pick it up.

Hardware metrics (Table III, Figure 3, memory, and all energy columns)
always use the paper's exact architectures and the calibrated 65 nm
model; quick mode only reduces the *training* cost of the accuracy
columns.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.sweep import SweepConfig


@dataclass
class ExperimentConfig:
    """Budgets and dataset sizes for the accuracy experiments."""

    mode: str = "quick"                     # "quick" | "full"
    n_train: int = 1500
    n_test: int = 400
    dataset_seed: int = 0
    sweep: SweepConfig = field(default_factory=SweepConfig)

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        return cls()

    @classmethod
    def full(cls) -> "ExperimentConfig":
        return cls(
            mode="full",
            n_train=6000,
            n_test=1500,
            sweep=SweepConfig.paper(),
        )

    @classmethod
    def from_environment(cls) -> "ExperimentConfig":
        """``full()`` when REPRO_FULL=1 is set, else ``quick()``."""
        if os.environ.get("REPRO_FULL", "") == "1":
            return cls.full()
        return cls.quick()

    def accuracy_network(self, paper_name: str) -> str:
        """Network actually trained for accuracy columns in this mode."""
        if self.mode == "full":
            return paper_name
        return {
            "lenet": "lenet_small",
            "convnet": "convnet_small",
            "alex": "alex_small",
            "alex+": "alex_small+",
            "alex++": "alex_small++",
        }.get(paper_name, paper_name)
