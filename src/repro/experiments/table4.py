"""Table IV — accuracy, per-image energy and energy savings on the
MNIST-role and SVHN-role tasks.

Paper values for reference (LeNet / MNIST and ConvNet / SVHN):

    =====================  ======  ======  =====  ======  ======  =====
                            MNIST                  SVHN
    precision (w,in)       acc %   uJ      sav%   acc %   uJ      sav%
    =====================  ======  ======  =====  ======  ======  =====
    Floating-Point (32,32)  99.20   60.74   0     86.77   754.18   0
    Fixed-Point (32,32)     99.22   52.93  12.86  86.78   663.01  12.09
    Fixed-Point (16,16)     99.21   24.60  59.50  86.77   314.05  58.36
    Fixed-Point (8,8)       99.22    8.86  85.41  84.03   120.14  84.07
    Fixed-Point (4,4)       95.76    4.31  92.90  NA      NA      NA
    Powers of Two (6,16)    99.14    8.42  86.13  84.85   114.70  84.79
    Binary Net (1,16)       99.40    3.56  94.13  19.57    52.11  93.09
    =====================  ======  ======  =====  ======  ======  =====

The reproduction trains on the synthetic digit/svhn tasks (see
DESIGN.md substitutions): absolute accuracies differ but the shape —
no loss on the easy task down to 8 bits, visible degradation and
low-precision failures on the harder task, energy savings tracking
Table III — is preserved.  Non-convergent rows are reported as NA.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.precision import PAPER_PRECISIONS
from repro.experiments.config import ExperimentConfig
from repro.experiments.formatting import format_table
from repro.experiments.runner import EvaluatedPoint, SweepRunner

#: Paper Table IV accuracy values, for EXPERIMENTS.md comparisons.
PAPER_TABLE4 = {
    "digits": {
        "float32": 99.20, "fixed32": 99.22, "fixed16": 99.21,
        "fixed8": 99.22, "fixed4": 95.76, "pow2": 99.14, "binary": 99.40,
    },
    "svhn": {
        "float32": 86.77, "fixed32": 86.78, "fixed16": 86.77,
        "fixed8": 84.03, "fixed4": None, "pow2": 84.85, "binary": 19.57,
    },
}

TASKS = [("digits", "lenet"), ("svhn", "convnet")]


def run(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, List[EvaluatedPoint]]:
    """Sweep both tasks; returns dataset -> evaluated precision points."""
    runner = runner or SweepRunner(config)
    return {
        dataset: runner.evaluate_network(network)
        for dataset, network in TASKS
    }


def format_results(results: Dict[str, List[EvaluatedPoint]]) -> str:
    """Paper-style two-task table with NA rows for non-convergence."""
    rows = []
    digits = {p.spec.key: p for p in results["digits"]}
    svhn = {p.spec.key: p for p in results["svhn"]}
    for spec in PAPER_PRECISIONS:
        cells = [spec.label]
        for task in (digits, svhn):
            point = task[spec.key]
            if point.converged:
                cells.extend(
                    [
                        f"{point.accuracy_percent:.2f}",
                        f"{point.energy_uj:.2f}",
                        f"{point.energy_saving_pct:.2f}",
                    ]
                )
            else:
                cells.extend(["NA", "NA", "NA"])
        rows.append(cells)
    return format_table(
        [
            "Precision (w,in)",
            "digits Acc%", "digits uJ", "digits Sav%",
            "svhn Acc%", "svhn uJ", "svhn Sav%",
        ],
        rows,
        title=(
            "Table IV: accuracy, per-image energy and energy savings "
            "(digits=MNIST role, svhn=SVHN role)"
        ),
    )
