"""Figure 4 — Pareto frontier of the CIFAR-role design points.

Plots every Table V configuration on the accuracy-vs-energy plane
(log-scale energy) and extracts the Pareto frontier.  The paper's
argument: enlarged low-precision networks (e.g. Powers of Two++) can
dominate the full-precision baseline on *both* axes.

Beyond the table, :func:`publish_registry` turns the figure into a
deployment: every converged point whose trained weights were retained
becomes a registry artifact, and the frontier is promoted through a
channel so the winning operating points are servable rather than just
plotted (``python -m repro.experiments fig4 --registry models/``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.pareto import DesignPoint, pareto_frontier
from repro.core.precision import PrecisionSpec
from repro.experiments import table5
from repro.experiments.config import ExperimentConfig
from repro.experiments.formatting import format_scatter
from repro.experiments.runner import EvaluatedPoint, SweepRunner
from repro.registry import (
    ArtifactStore,
    Channel,
    PromotionPolicy,
    promote_frontier,
    publish_with_modeled_costs,
)


def design_points(points: List[EvaluatedPoint]) -> List[DesignPoint]:
    """Convert converged Table V rows into Pareto design points."""
    return [
        DesignPoint(
            label=table5.variant_label(p.spec.label, p.network),
            accuracy=p.accuracy_percent,
            energy_uj=p.energy_uj,
            metadata={"network": p.network, "precision": p.spec.key},
        )
        for p in points
        if p.converged
    ]


def run(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """Returns ``{"points": [...], "frontier": [...], "dominates_baseline": [...]}``."""
    evaluated = table5.run(config=config, runner=runner)
    points = design_points(evaluated)
    frontier = pareto_frontier(points)
    baseline = next(
        (p for p in points if p.metadata["precision"] == "float32"
         and p.metadata["network"] == "alex"),
        None,
    )
    dominating = []
    if baseline is not None:
        dominating = [
            p for p in points
            if p.accuracy >= baseline.accuracy and p.energy_uj < baseline.energy_uj
        ]
    return {
        "points": points,
        "frontier": frontier,
        "baseline": baseline,
        "dominates_baseline": dominating,
    }


def publish_registry(
    result: Dict[str, object],
    runner: SweepRunner,
    root: str,
    channel_name: str = "fig4",
) -> Dict[str, object]:
    """Persist the figure's design points as deployable artifacts.

    Every converged point whose trained weights the runner retained
    (``SweepRunner(keep_states=True)``) is published into an
    :class:`~repro.registry.ArtifactStore` under ``root``; the Pareto
    frontier is then promoted through ``channel_name`` from the most
    expensive point down, so the channel ends on the lowest-energy
    frontier point.  Each promotion passes the default
    :class:`~repro.registry.PromotionPolicy` gate — frontier points are
    mutual trades on the figure's plane, though in quick/proxy mode the
    gate judges the *trained* network's modeled energy, which can
    disagree with the paper-architecture energies plotted in the figure
    (those are kept in ``extra``); gated-out points are returned under
    ``"rejected"`` rather than raised.
    """
    store = ArtifactStore(root)
    points: List[DesignPoint] = result["points"]  # type: ignore[assignment]
    manifests: Dict[str, object] = {}
    for point in points:
        paper_network = point.metadata["network"]
        spec = PrecisionSpec.parse(point.metadata["precision"])
        state = runner.trained_state(paper_network, spec)
        if state is None:
            continue
        manifests[point.label] = publish_with_modeled_costs(
            store,
            state,
            runner.config.accuracy_network(paper_network),
            spec.key,
            accuracy=point.accuracy / 100.0,
            energy_model=runner.energy_model,
            created_by="experiments.fig4",
            extra={
                "paper_network": paper_network,
                "paper_energy_uj": f"{point.energy_uj:.6g}",
            },
        )
    channel = Channel(store, channel_name)
    frontier: List[DesignPoint] = result["frontier"]  # type: ignore[assignment]
    promoted, rejected = promote_frontier(
        channel, frontier, manifests,
        policy=PromotionPolicy(), note="fig4 frontier",
    )
    return {
        "store": store,
        "artifacts": manifests,
        "channel": channel,
        "promoted": promoted,
        "rejected": rejected,
    }


def format_registry(published: Dict[str, object]) -> str:
    store: ArtifactStore = published["store"]  # type: ignore[assignment]
    channel: Channel = published["channel"]  # type: ignore[assignment]
    lines = [
        f"Registry: {len(published['artifacts'])} artifact(s) "
        f"published to {store.root}",
    ]
    for label, entry in published["promoted"]:  # type: ignore[union-attr]
        lines.append(
            f"  {channel.name} v{entry.version}: {label} "
            f"({entry.digest[:12]})"
        )
    for label, reason in published["rejected"]:  # type: ignore[union-attr]
        lines.append(f"  gate rejected {label}: {reason}")
    active = channel.active()
    if active is not None:
        lines.append(
            f"  active: v{active.version} ({active.digest[:12]})"
        )
    return "\n".join(lines)


def format_results(result: Dict[str, object]) -> str:
    points: List[DesignPoint] = result["points"]  # type: ignore[assignment]
    frontier: List[DesignPoint] = result["frontier"]  # type: ignore[assignment]
    frontier_labels = {p.label for p in frontier}
    scatter_points = []
    for point in points:
        if point.metadata["precision"] == "float32":
            marker = "B"       # baseline, black in the paper
        elif point.metadata["network"] == "alex":
            marker = "o"       # small network, blue in the paper
        else:
            marker = "+" if point.metadata["network"] == "alex+" else "x"
        scatter_points.append(
            {
                "label": point.label + (" [frontier]" if point.label in frontier_labels else ""),
                "energy": point.energy_uj,
                "accuracy": point.accuracy,
                "marker": marker,
            }
        )
    chart = format_scatter(
        scatter_points, x_key="energy", y_key="accuracy",
        label_key="label", marker_key="marker", log_x=True,
    )
    dominating: List[DesignPoint] = result["dominates_baseline"]  # type: ignore[assignment]
    lines = [
        "Figure 4: accuracy vs energy (log-x), cifar-role design points",
        chart,
        "",
        "Pareto frontier: " + ", ".join(p.label for p in frontier),
    ]
    if dominating:
        lines.append(
            "Points dominating the float32 ALEX baseline: "
            + ", ".join(p.label for p in dominating)
        )
    return "\n".join(lines)
