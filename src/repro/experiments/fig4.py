"""Figure 4 — Pareto frontier of the CIFAR-role design points.

Plots every Table V configuration on the accuracy-vs-energy plane
(log-scale energy) and extracts the Pareto frontier.  The paper's
argument: enlarged low-precision networks (e.g. Powers of Two++) can
dominate the full-precision baseline on *both* axes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.pareto import DesignPoint, pareto_frontier
from repro.experiments import table5
from repro.experiments.config import ExperimentConfig
from repro.experiments.formatting import format_scatter
from repro.experiments.runner import EvaluatedPoint, SweepRunner


def design_points(points: List[EvaluatedPoint]) -> List[DesignPoint]:
    """Convert converged Table V rows into Pareto design points."""
    return [
        DesignPoint(
            label=table5.variant_label(p.spec.label, p.network),
            accuracy=p.accuracy_percent,
            energy_uj=p.energy_uj,
            metadata={"network": p.network, "precision": p.spec.key},
        )
        for p in points
        if p.converged
    ]


def run(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """Returns ``{"points": [...], "frontier": [...], "dominates_baseline": [...]}``."""
    evaluated = table5.run(config=config, runner=runner)
    points = design_points(evaluated)
    frontier = pareto_frontier(points)
    baseline = next(
        (p for p in points if p.metadata["precision"] == "float32"
         and p.metadata["network"] == "alex"),
        None,
    )
    dominating = []
    if baseline is not None:
        dominating = [
            p for p in points
            if p.accuracy >= baseline.accuracy and p.energy_uj < baseline.energy_uj
        ]
    return {
        "points": points,
        "frontier": frontier,
        "baseline": baseline,
        "dominates_baseline": dominating,
    }


def format_results(result: Dict[str, object]) -> str:
    points: List[DesignPoint] = result["points"]  # type: ignore[assignment]
    frontier: List[DesignPoint] = result["frontier"]  # type: ignore[assignment]
    frontier_labels = {p.label for p in frontier}
    scatter_points = []
    for point in points:
        if point.metadata["precision"] == "float32":
            marker = "B"       # baseline, black in the paper
        elif point.metadata["network"] == "alex":
            marker = "o"       # small network, blue in the paper
        else:
            marker = "+" if point.metadata["network"] == "alex+" else "x"
        scatter_points.append(
            {
                "label": point.label + (" [frontier]" if point.label in frontier_labels else ""),
                "energy": point.energy_uj,
                "accuracy": point.accuracy,
                "marker": marker,
            }
        )
    chart = format_scatter(
        scatter_points, x_key="energy", y_key="accuracy",
        label_key="label", marker_key="marker", log_x=True,
    )
    dominating: List[DesignPoint] = result["dominates_baseline"]  # type: ignore[assignment]
    lines = [
        "Figure 4: accuracy vs energy (log-x), cifar-role design points",
        chart,
        "",
        "Pareto frontier: " + ", ".join(p.label for p in frontier),
    ]
    if dominating:
        lines.append(
            "Points dominating the float32 ALEX baseline: "
            + ", ".join(p.label for p in dominating)
        )
    return "\n".join(lines)
