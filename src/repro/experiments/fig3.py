"""Figure 3 — breakdown of design area and power per precision.

The paper's stacked bars split each design into Memory, Registers,
Combinational and Buf/Inv, and the surrounding text asserts that
buffers consume 75-93 % of total power and 76-96 % of total area.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.precision import PAPER_PRECISIONS
from repro.experiments.formatting import format_bar_chart
from repro.hw.accelerator import Accelerator, AcceleratorConfig
from repro.hw.report import BREAKDOWN_CATEGORIES, area_power_breakdown

#: The paper's claimed buffer-share windows (power, area), Section V-B.
PAPER_POWER_WINDOW = (0.75, 0.93)
PAPER_AREA_WINDOW = (0.76, 0.96)


def run(config: AcceleratorConfig = AcceleratorConfig()) -> List[Dict[str, object]]:
    """One record per precision with the four-category breakdown."""
    records: List[Dict[str, object]] = []
    for spec in PAPER_PRECISIONS:
        accelerator = Accelerator(spec, config=config)
        breakdown = area_power_breakdown(accelerator)
        fractions = accelerator.memory_fraction()
        records.append(
            {
                "precision": spec.label,
                "key": spec.key,
                "breakdown": breakdown,
                "memory_area_fraction": fractions["area"],
                "memory_power_fraction": fractions["power"],
            }
        )
    return records


def format_results(records: List[Dict[str, object]]) -> str:
    """Two stacked-bar charts (area, power) like the paper's Figure 3."""
    area_series = {
        str(rec["precision"]): {
            category: rec["breakdown"][category]["area_mm2"]
            for category in BREAKDOWN_CATEGORIES
        }
        for rec in records
    }
    power_series = {
        str(rec["precision"]): {
            category: rec["breakdown"][category]["power_mw"]
            for category in BREAKDOWN_CATEGORIES
        }
        for rec in records
    }
    fraction_lines = [
        f"  {rec['precision']}: buffers = {rec['memory_area_fraction']:.1%} of area, "
        f"{rec['memory_power_fraction']:.1%} of power"
        for rec in records
    ]
    return "\n\n".join(
        [
            "Figure 3: breakdown of design area and power per precision",
            format_bar_chart(area_series, "Design Area (mm^2)"),
            format_bar_chart(power_series, "Power Consumption (mW)"),
            "Buffer share (paper: 76-96% of area, 75-93% of power):",
            "\n".join(fraction_lines),
        ]
    )
