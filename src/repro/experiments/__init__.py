"""Experiment drivers: one module per table / figure of the paper.

===============  =====================================================
module           reproduces
===============  =====================================================
``table3``       Table III — accelerator design metrics per precision
``fig3``         Figure 3 — area & power breakdown stacks
``table4``       Table IV — MNIST/SVHN accuracy + energy per precision
``table5``       Table V — CIFAR-10 ALEX / ALEX+ / ALEX++ sweep
``fig4``         Figure 4 — accuracy-vs-energy Pareto frontier
``memory``       Section V-B parameter-memory analysis
===============  =====================================================

Each driver exposes ``run(config) -> result`` returning structured
rows plus a ``format_*`` helper producing the paper-style ASCII table.
The shared :class:`~repro.experiments.config.ExperimentConfig` selects
quick (proxy networks, small synthetic datasets — minutes) or full
(paper architectures — hours) budgets; the hardware-only experiments
(table3 / fig3 / memory) are exact in both modes.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SweepRunner, TASK_NETWORKS
from repro.experiments import fig3, fig4, memory, table3, table4, table5

__all__ = [
    "ExperimentConfig",
    "SweepRunner",
    "TASK_NETWORKS",
    "table3",
    "table4",
    "table5",
    "fig3",
    "fig4",
    "memory",
]
