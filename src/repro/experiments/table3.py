"""Table III — design metrics of the evaluated precisions.

Paper values (65 nm, 250 MHz synthesis):

    ====================  =====  =======  ========  =========
    precision (w, in)     area   power    area sav  power sav
    ====================  =====  =======  ========  =========
    Floating-Point (32,32) 16.74 1379.60      0          0
    Fixed-Point (32,32)    14.13 1213.40   15.56      12.05
    Fixed-Point (16,16)     6.88  574.75   58.92      58.34
    Fixed-Point (8,8)       3.36  219.87   79.94      84.06
    Fixed-Point (4,4)       1.66  111.17   90.07      91.94
    Powers of Two (6,16)    3.05  209.91   81.78      84.78
    Binary Net (1,16)       1.21   95.36   92.73      93.08
    ====================  =====  =======  ========  =========

(The paper's saving columns are printed swapped relative to their
headers — its "Area Saving" column tracks power and vice versa; we
report savings computed consistently from the paper's own area/power
columns.)
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.formatting import format_table
from repro.hw.accelerator import AcceleratorConfig
from repro.hw.report import design_metrics_table

#: Paper's Table III (area mm^2, power mW), keyed by precision key.
PAPER_TABLE3 = {
    "float32": (16.74, 1379.60),
    "fixed32": (14.13, 1213.40),
    "fixed16": (6.88, 574.75),
    "fixed8": (3.36, 219.87),
    "fixed4": (1.66, 111.17),
    "pow2": (3.05, 209.91),
    "binary": (1.21, 95.36),
}


def run(config: AcceleratorConfig = AcceleratorConfig()) -> List[Dict[str, float]]:
    """Model rows with paper reference values attached."""
    rows = design_metrics_table(config=config)
    for row in rows:
        paper_area, paper_power = PAPER_TABLE3[row["key"]]
        row["paper_area_mm2"] = paper_area
        row["paper_power_mw"] = paper_power
        row["area_error_pct"] = 100.0 * (row["area_mm2"] / paper_area - 1.0)
        row["power_error_pct"] = 100.0 * (row["power_mw"] / paper_power - 1.0)
    return rows


def format_results(rows: List[Dict[str, float]]) -> str:
    """Paper-style ASCII rendering of Table III with model-vs-paper."""
    table_rows = [
        [
            row["precision"],
            f"{row['area_mm2']:.2f}",
            f"{row['paper_area_mm2']:.2f}",
            f"{row['power_mw']:.2f}",
            f"{row['paper_power_mw']:.2f}",
            f"{row['area_saving_pct']:.2f}",
            f"{row['power_saving_pct']:.2f}",
        ]
        for row in rows
    ]
    return format_table(
        [
            "Precision (w,in)",
            "Area mm2",
            "paper",
            "Power mW",
            "paper",
            "Area Sav %",
            "Power Sav %",
        ],
        table_rows,
        title="Table III: design metrics per precision (model vs paper)",
    )
