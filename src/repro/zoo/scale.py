"""Width-scaled variants of the registered architectures.

The paper's Table II networks (ALEX+, ALEX++) spend the energy saved by
low precision on *wider* layers — but those widths are hand-specified.
The search (:mod:`repro.search`) explores width multipliers
continuously; this module synthesizes the scaled architectures on
demand:

* ``build_scaled("lenet", 1.5, seed)`` rebuilds LeNet with every hidden
  channel/feature count multiplied by 1.5 (the classifier head keeps
  its class count);
* scaled networks are addressable by name — ``"lenet@x1.5"`` — through
  :func:`repro.zoo.registry.network_info`, so sweep worker processes,
  the registry deployer and the serving store resolve them exactly like
  hand-written architectures.

``build_scaled`` is a module-level function and scaled builders are
``functools.partial`` bindings of it, so they pickle across process
boundaries (a requirement of the parallel sweep executor).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

import numpy as np

from repro import nn
from repro.errors import ConfigurationError

__all__ = ["build_scaled", "parse_scaled_name", "scaled_name"]

#: name pattern of a scaled variant: ``<base>@x<width>``
_SCALED_RE = re.compile(r"^(?P<base>[^@]+)@x(?P<width>\d+(?:\.\d+)?)$")


def scaled_name(base: str, width: float) -> str:
    """Canonical name of a scaled variant, e.g. ``"lenet@x1.5"``.

    ``width`` must round-trip through ``%g`` (the search restricts
    itself to such widths); ``scaled_name(base, 1.0)`` is still the
    ``@x1`` form — callers that mean the unscaled network should use
    its plain name.
    """
    return f"{base}@x{width:g}"


def parse_scaled_name(name: str) -> Optional[Tuple[str, float]]:
    """``(base, width)`` when ``name`` is a scaled-variant name, else None."""
    match = _SCALED_RE.match(name)
    if not match:
        return None
    return match.group("base"), float(match.group("width"))


def _scaled(count: int, width: float) -> int:
    """Channel/feature count scaled by ``width`` (never below 1)."""
    return max(1, int(round(count * width)))


def build_scaled(base: str, width: float, seed: int = 0) -> nn.Sequential:
    """Rebuild architecture ``base`` with every hidden width scaled.

    Conv channel counts and hidden Dense widths multiply by ``width``
    (rounded, floored at 1); the final Dense keeps its output count (the
    classifier).  Inter-layer shapes are re-derived with each layer's
    ``output_shape``, so Flatten -> Dense fan-ins stay consistent at any
    multiplier.  Weight init uses one shared generator seeded by
    ``seed``, drawn in layer order — the same convention as the
    hand-written builders.
    """
    from repro.zoo.registry import NETWORK_BUILDERS

    if base not in NETWORK_BUILDERS:
        raise ConfigurationError(
            f"cannot scale unknown network {base!r}; "
            f"choose from {sorted(NETWORK_BUILDERS)}"
        )
    if not width > 0:
        raise ConfigurationError(f"width multiplier must be > 0, got {width!r}")
    info = NETWORK_BUILDERS[base]
    template = info.builder(0)

    last_dense = max(
        (i for i, layer in enumerate(template.layers)
         if isinstance(layer, nn.Dense)),
        default=None,
    )
    rng = np.random.default_rng(seed)
    shape: tuple = tuple(info.input_shape)
    channels = shape[0]
    layers: List[nn.Module] = []
    for i, layer in enumerate(template.layers):
        if isinstance(layer, nn.Conv2D):
            out_channels = _scaled(layer.out_channels, width)
            scaled = nn.Conv2D(
                channels, out_channels,
                kernel_size=layer.kernel_size, stride=layer.stride,
                padding=layer.padding, use_bias=layer.use_bias,
                name=layer.name, rng=rng,
            )
            channels = out_channels
        elif isinstance(layer, nn.Dense):
            out_features = (
                layer.out_features if i == last_dense
                else _scaled(layer.out_features, width)
            )
            scaled = nn.Dense(
                shape[0], out_features,
                use_bias=layer.use_bias, name=layer.name, rng=rng,
            )
        elif isinstance(layer, (nn.MaxPool2D, nn.AvgPool2D)):
            scaled = type(layer)(
                layer.kernel_size, stride=layer.stride,
                padding=layer.padding, ceil_mode=layer.ceil_mode,
                name=layer.name,
            )
        elif isinstance(layer, nn.Flatten):
            scaled = nn.Flatten(name=layer.name)
        elif isinstance(layer, nn.ReLU):
            scaled = nn.ReLU(name=layer.name)
        else:
            raise ConfigurationError(
                f"cannot scale layer {layer.name!r} of type "
                f"{type(layer).__name__}"
            )
        shape = scaled.output_shape(shape)
        layers.append(scaled)
    return nn.Sequential(layers, name=scaled_name(base, width))
