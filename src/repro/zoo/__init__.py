"""Benchmark network architectures from Tables I and II of the paper.

===========  ==========  =========================================
network      dataset     description
===========  ==========  =========================================
``lenet``    digits      LeNet (Table I, MNIST column)
``convnet``  svhn        ConvNet (Table I, SVHN column)
``alex``     cifar       ALEX (Table I, CIFAR-10 column)
``alex+``    cifar       ALEX+ — channels doubled (Table II)
``alex++``   cifar       ALEX++ — VGG-style doubling (Table II)
===========  ==========  =========================================

``*_small`` variants are reduced proxies for fast tests/benchmarks;
they keep the same topology pattern at a fraction of the channels.
"""

from repro.zoo.lenet import build_lenet, build_lenet_small
from repro.zoo.convnet_svhn import build_convnet, build_convnet_small
from repro.zoo.alex import build_alex, build_alex_plus, build_alex_plus_plus, build_alex_small
from repro.zoo.alex_small_variants import (
    build_alex_small_plus,
    build_alex_small_plus_plus,
)
from repro.zoo.registry import (
    NETWORK_BUILDERS,
    NetworkInfo,
    build_network,
    network_info,
)

__all__ = [
    "build_lenet",
    "build_lenet_small",
    "build_convnet",
    "build_convnet_small",
    "build_alex",
    "build_alex_plus",
    "build_alex_plus_plus",
    "build_alex_small",
    "build_alex_small_plus",
    "build_alex_small_plus_plus",
    "NETWORK_BUILDERS",
    "NetworkInfo",
    "build_network",
    "network_info",
]
