"""ConvNet for SVHN (Table I, SVHN column; Sermanet et al. style).

    32x32x3 -> conv 5x5x16 -> maxpool 2x2 -> conv 7x7x512 -> maxpool 2x2
            -> innerproduct 20 -> innerproduct 10

Full-precision parameter memory is ~2247 KB, matching the ~2150 KB the
paper reports for CONVnet in Section V-B.
"""

from __future__ import annotations

import numpy as np

from repro import nn


def build_convnet(seed: int = 0) -> nn.Sequential:
    """The paper's SVHN ConvNet for 3x32x32 inputs, 10 classes."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(3, 16, kernel_size=5, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(2, name="pool1"),
            nn.Conv2D(16, 512, kernel_size=7, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.MaxPool2D(2, name="pool2"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 512, 20, name="ip1", rng=rng),
            nn.ReLU(name="relu3"),
            nn.Dense(20, 10, name="ip2", rng=rng),
        ],
        name="convnet",
    )


def build_convnet_small(seed: int = 0) -> nn.Sequential:
    """Reduced ConvNet proxy (same topology, far fewer channels)."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(3, 8, kernel_size=5, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(2, name="pool1"),
            nn.Conv2D(8, 32, kernel_size=7, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.MaxPool2D(2, name="pool2"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 32, 20, name="ip1", rng=rng),
            nn.ReLU(name="relu3"),
            nn.Dense(20, 10, name="ip2", rng=rng),
        ],
        name="convnet_small",
    )
