"""LeNet (Table I, MNIST column).

    28x28x1 -> conv 5x5x20 -> maxpool 2x2 -> conv 5x5x50 -> maxpool 2x2
            -> innerproduct 500 -> innerproduct 10

Full-precision parameter memory is ~1683 KB, matching the ~1650 KB the
paper reports for LeNet in Section V-B.
"""

from __future__ import annotations

import numpy as np

from repro import nn


def build_lenet(seed: int = 0) -> nn.Sequential:
    """The paper's LeNet for 1x28x28 inputs, 10 classes."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(1, 20, kernel_size=5, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(2, name="pool1"),
            nn.Conv2D(20, 50, kernel_size=5, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.MaxPool2D(2, name="pool2"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 50, 500, name="ip1", rng=rng),
            nn.ReLU(name="relu3"),
            nn.Dense(500, 10, name="ip2", rng=rng),
        ],
        name="lenet",
    )


def build_lenet_small(seed: int = 0) -> nn.Sequential:
    """Reduced LeNet proxy (same topology, ~10x fewer channels) for
    fast tests and quick benchmark runs."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(1, 6, kernel_size=5, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(2, name="pool1"),
            nn.Conv2D(6, 12, kernel_size=5, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.MaxPool2D(2, name="pool2"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 12, 64, name="ip1", rng=rng),
            nn.ReLU(name="relu3"),
            nn.Dense(64, 10, name="ip2", rng=rng),
        ],
        name="lenet_small",
    )
