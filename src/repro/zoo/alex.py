"""ALEX, ALEX+ and ALEX++ for CIFAR-10 (Tables I and II).

ALEX (Krizhevsky's cifar10_quick-style network, Table I):

    32x32x3 -> conv 5x5x32 -> maxpool 3x3/2 -> conv 5x5x32 -> avgpool 3x3/2
            -> conv 5x5x64 -> avgpool 3x3/2 -> innerproduct 10

ALEX+ (Table II): every convolutional channel count doubled.
ALEX++ (Table II): VGG-style — 3x3 kernels, channels double whenever
the feature map halves, with a 512-wide inner product head.

Full-precision parameter memory: ~350 KB (ALEX), ~1300 KB (ALEX+),
~9662 KB (ALEX++), matching the paper's ~350 / ~1250 / ~9400 KB.

Pooling uses Caffe ceil-mode semantics, which is required for these
shapes to line up (32 -> 16 -> 8 -> 4 through three 3x3/2 pools).
"""

from __future__ import annotations

import numpy as np

from repro import nn


def build_alex(seed: int = 0) -> nn.Sequential:
    """The paper's ALEX baseline for 3x32x32 inputs, 10 classes."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(3, 32, kernel_size=5, padding=2, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(3, stride=2, name="pool1"),
            nn.Conv2D(32, 32, kernel_size=5, padding=2, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.AvgPool2D(3, stride=2, name="pool2"),
            nn.Conv2D(32, 64, kernel_size=5, padding=2, name="conv3", rng=rng),
            nn.ReLU(name="relu3"),
            nn.AvgPool2D(3, stride=2, name="pool3"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 64, 10, name="ip1", rng=rng),
        ],
        name="alex",
    )


def build_alex_plus(seed: int = 0) -> nn.Sequential:
    """ALEX+ — the number of channels in each conv layer is doubled."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(3, 64, kernel_size=5, padding=2, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(3, stride=2, name="pool1"),
            nn.Conv2D(64, 64, kernel_size=5, padding=2, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.AvgPool2D(3, stride=2, name="pool2"),
            nn.Conv2D(64, 128, kernel_size=5, padding=2, name="conv3", rng=rng),
            nn.ReLU(name="relu3"),
            nn.AvgPool2D(3, stride=2, name="pool3"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 128, 10, name="ip1", rng=rng),
        ],
        name="alex+",
    )


def build_alex_plus_plus(seed: int = 0) -> nn.Sequential:
    """ALEX++ — channels double when the feature size halves (VGG rule)."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(3, 64, kernel_size=3, padding=1, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(2, name="pool1"),
            nn.Conv2D(64, 128, kernel_size=3, padding=1, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.MaxPool2D(2, name="pool2"),
            nn.Conv2D(128, 256, kernel_size=3, padding=1, name="conv3", rng=rng),
            nn.ReLU(name="relu3"),
            nn.MaxPool2D(2, name="pool3"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 256, 512, name="ip1", rng=rng),
            nn.ReLU(name="relu4"),
            nn.Dense(512, 10, name="ip2", rng=rng),
        ],
        name="alex++",
    )


def build_alex_small(seed: int = 0) -> nn.Sequential:
    """Reduced ALEX proxy for fast tests and quick benchmark runs."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(3, 8, kernel_size=5, padding=2, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(3, stride=2, name="pool1"),
            nn.Conv2D(8, 8, kernel_size=5, padding=2, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.AvgPool2D(3, stride=2, name="pool2"),
            nn.Conv2D(8, 16, kernel_size=5, padding=2, name="conv3", rng=rng),
            nn.ReLU(name="relu3"),
            nn.AvgPool2D(3, stride=2, name="pool3"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 16, 10, name="ip1", rng=rng),
        ],
        name="alex_small",
    )
