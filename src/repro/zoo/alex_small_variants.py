"""Reduced ALEX+ / ALEX++ proxies for quick benchmark runs.

They preserve the paper's scaling relationships (ALEX+ doubles every
conv channel count; ALEX++ applies the VGG doubling rule with a wide
inner-product head) at a fraction of the compute, so the Table V /
Figure 4 *shape* — larger low-precision nets recovering accuracy — can
be demonstrated in minutes on a laptop.
"""

from __future__ import annotations

import numpy as np

from repro import nn


def build_alex_small_plus(seed: int = 0) -> nn.Sequential:
    """ALEX+ proxy: the small-ALEX channel counts doubled."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(3, 16, kernel_size=5, padding=2, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(3, stride=2, name="pool1"),
            nn.Conv2D(16, 16, kernel_size=5, padding=2, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.AvgPool2D(3, stride=2, name="pool2"),
            nn.Conv2D(16, 32, kernel_size=5, padding=2, name="conv3", rng=rng),
            nn.ReLU(name="relu3"),
            nn.AvgPool2D(3, stride=2, name="pool3"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 32, 10, name="ip1", rng=rng),
        ],
        name="alex_small+",
    )


def build_alex_small_plus_plus(seed: int = 0) -> nn.Sequential:
    """ALEX++ proxy: 3x3 kernels, VGG doubling, small dense head."""
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        [
            nn.Conv2D(3, 16, kernel_size=3, padding=1, name="conv1", rng=rng),
            nn.ReLU(name="relu1"),
            nn.MaxPool2D(2, name="pool1"),
            nn.Conv2D(16, 32, kernel_size=3, padding=1, name="conv2", rng=rng),
            nn.ReLU(name="relu2"),
            nn.MaxPool2D(2, name="pool2"),
            nn.Conv2D(32, 64, kernel_size=3, padding=1, name="conv3", rng=rng),
            nn.ReLU(name="relu3"),
            nn.MaxPool2D(2, name="pool3"),
            nn.Flatten(name="flatten"),
            nn.Dense(4 * 4 * 64, 128, name="ip1", rng=rng),
            nn.ReLU(name="relu4"),
            nn.Dense(128, 10, name="ip2", rng=rng),
        ],
        name="alex_small++",
    )
