"""Network registry: name -> builder, input shape, paired dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.nn.network import Sequential
from repro.zoo.alex import (
    build_alex,
    build_alex_plus,
    build_alex_plus_plus,
    build_alex_small,
)
from repro.zoo.alex_small_variants import (
    build_alex_small_plus,
    build_alex_small_plus_plus,
)
from repro.zoo.convnet_svhn import build_convnet, build_convnet_small
from repro.zoo.lenet import build_lenet, build_lenet_small


@dataclass(frozen=True)
class NetworkInfo:
    """Registry record for one architecture."""

    name: str
    builder: Callable[[int], Sequential]
    input_shape: Tuple[int, int, int]
    dataset: str
    table: str  # which paper table defines it


NETWORK_BUILDERS: Dict[str, NetworkInfo] = {
    info.name: info
    for info in [
        NetworkInfo("lenet", build_lenet, (1, 28, 28), "digits", "Table I"),
        NetworkInfo("lenet_small", build_lenet_small, (1, 28, 28), "digits", "proxy"),
        NetworkInfo("convnet", build_convnet, (3, 32, 32), "svhn", "Table I"),
        NetworkInfo("convnet_small", build_convnet_small, (3, 32, 32), "svhn", "proxy"),
        NetworkInfo("alex", build_alex, (3, 32, 32), "cifar", "Table I"),
        NetworkInfo("alex_small", build_alex_small, (3, 32, 32), "cifar", "proxy"),
        NetworkInfo("alex+", build_alex_plus, (3, 32, 32), "cifar", "Table II"),
        NetworkInfo("alex++", build_alex_plus_plus, (3, 32, 32), "cifar", "Table II"),
        NetworkInfo(
            "alex_small+", build_alex_small_plus, (3, 32, 32), "cifar", "proxy"
        ),
        NetworkInfo(
            "alex_small++", build_alex_small_plus_plus, (3, 32, 32), "cifar", "proxy"
        ),
    ]
}


#: synthesized records for width-scaled variants (see repro.zoo.scale),
#: memoized so repeated lookups return the identical NetworkInfo
_SCALED_INFOS: Dict[str, NetworkInfo] = {}


def network_info(name: str) -> NetworkInfo:
    """Look up a registered architecture.

    Width-scaled names (``"lenet@x1.5"``) resolve to a synthesized
    record whose builder is a picklable binding of
    :func:`repro.zoo.scale.build_scaled`, so scaled networks behave
    like registered ones everywhere a name crosses a process or
    registry boundary.
    """
    try:
        return NETWORK_BUILDERS[name]
    except KeyError:
        pass
    if name not in _SCALED_INFOS:
        from functools import partial

        from repro.zoo.scale import parse_scaled_name

        parsed = parse_scaled_name(name)
        if parsed is None or parsed[0] not in NETWORK_BUILDERS:
            raise ConfigurationError(
                f"unknown network {name!r}; choose from "
                f"{sorted(NETWORK_BUILDERS)} or a scaled variant "
                f"'<base>@x<width>'"
            )
        base, width = parsed
        from repro.zoo.scale import build_scaled

        base_info = NETWORK_BUILDERS[base]
        _SCALED_INFOS[name] = NetworkInfo(
            name=name,
            builder=partial(build_scaled, base, width),
            input_shape=base_info.input_shape,
            dataset=base_info.dataset,
            table="scaled",
        )
    return _SCALED_INFOS[name]


def build_network(name: str, seed: int = 0) -> Sequential:
    """Instantiate a registered architecture with a deterministic seed."""
    return network_info(name).builder(seed)
