"""Network registry: name -> builder, input shape, paired dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.nn.network import Sequential
from repro.zoo.alex import (
    build_alex,
    build_alex_plus,
    build_alex_plus_plus,
    build_alex_small,
)
from repro.zoo.alex_small_variants import (
    build_alex_small_plus,
    build_alex_small_plus_plus,
)
from repro.zoo.convnet_svhn import build_convnet, build_convnet_small
from repro.zoo.lenet import build_lenet, build_lenet_small


@dataclass(frozen=True)
class NetworkInfo:
    """Registry record for one architecture."""

    name: str
    builder: Callable[[int], Sequential]
    input_shape: Tuple[int, int, int]
    dataset: str
    table: str  # which paper table defines it


NETWORK_BUILDERS: Dict[str, NetworkInfo] = {
    info.name: info
    for info in [
        NetworkInfo("lenet", build_lenet, (1, 28, 28), "digits", "Table I"),
        NetworkInfo("lenet_small", build_lenet_small, (1, 28, 28), "digits", "proxy"),
        NetworkInfo("convnet", build_convnet, (3, 32, 32), "svhn", "Table I"),
        NetworkInfo("convnet_small", build_convnet_small, (3, 32, 32), "svhn", "proxy"),
        NetworkInfo("alex", build_alex, (3, 32, 32), "cifar", "Table I"),
        NetworkInfo("alex_small", build_alex_small, (3, 32, 32), "cifar", "proxy"),
        NetworkInfo("alex+", build_alex_plus, (3, 32, 32), "cifar", "Table II"),
        NetworkInfo("alex++", build_alex_plus_plus, (3, 32, 32), "cifar", "Table II"),
        NetworkInfo(
            "alex_small+", build_alex_small_plus, (3, 32, 32), "cifar", "proxy"
        ),
        NetworkInfo(
            "alex_small++", build_alex_small_plus_plus, (3, 32, 32), "cifar", "proxy"
        ),
    ]
}


def network_info(name: str) -> NetworkInfo:
    """Look up a registered architecture."""
    try:
        return NETWORK_BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown network {name!r}; choose from {sorted(NETWORK_BUILDERS)}"
        ) from None


def build_network(name: str, seed: int = 0) -> Sequential:
    """Instantiate a registered architecture with a deterministic seed."""
    return network_info(name).builder(seed)
