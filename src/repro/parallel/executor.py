"""Process-parallel sweep execution with cache-aware scheduling.

:func:`run_sweep` is the single entry point behind
``PrecisionSweep.run(workers=..., cache=...)``.  Scheduling:

1. every requested point is first resolved against the on-disk
   :class:`~repro.parallel.cache.SweepCache` (unless disabled or
   ``refresh`` is set);
2. if any point misses, the float baseline is obtained — from the
   sweep instance if already trained, else from the cache's stored
   weights, else by training it once in the parent process — and
   cached;
3. remaining misses are dispatched to a
   :class:`concurrent.futures.ProcessPoolExecutor`, each as a
   pickle-able :class:`~repro.parallel.tasks.SweepPointTask` carrying
   the baseline weights, and results stream back in completion order
   while the parent writes them to the cache.

Determinism contract: with the same ``SweepConfig.seed`` the results
are bitwise identical no matter how many workers run the sweep,
because every point derives its RNG stream from the root seed and its
spec key alone (:mod:`repro.parallel.seeding`) and warm-starts from
the exact same baseline weights.

Builders that cannot be pickled (e.g. lambdas) degrade gracefully:
the sweep falls back to in-process execution with a warning rather
than failing.
"""

from __future__ import annotations

import dataclasses
import pickle
import random
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Union

from repro.core.precision import PrecisionSpec
from repro.core.sweep import PrecisionResult, PrecisionSweep
from repro.errors import FaultInjectedError, TrainingError
from repro.nn.serialization import network_state, state_digest
from repro.obs.hooks import ProgressNarrator
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer
from repro.parallel.cache import (
    SweepCache,
    config_fingerprint,
    split_fingerprint,
)
from repro.parallel.tasks import PointOutcome, SweepPointTask, run_sweep_point
from repro.resilience.faults import get_injector
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = ["run_sweep", "resolve_cache", "DEFAULT_POINT_RETRY"]

#: Backoff applied to sweep points that die transiently — an injected
#: ``parallel.point`` fault or a worker process crashing out from under
#: its :class:`ProcessPoolExecutor` (``BrokenProcessPool``).
DEFAULT_POINT_RETRY = RetryPolicy(
    max_attempts=3, base_delay_s=0.05, max_delay_s=1.0
)

CacheLike = Union[None, bool, str, SweepCache]


def resolve_cache(cache: CacheLike) -> Optional[SweepCache]:
    """Normalize the ``cache`` argument accepted by the public surfaces.

    ``None``/``False`` -> disabled, ``True`` -> default directory,
    ``str`` -> that directory, :class:`SweepCache` -> itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SweepCache()
    if isinstance(cache, SweepCache):
        return cache
    if isinstance(cache, str):
        return SweepCache(cache)
    raise TypeError(
        f"cache must be None, bool, str or SweepCache, got {type(cache)!r}"
    )


def _point_keys(
    sweep: PrecisionSweep, specs: Sequence[PrecisionSpec], cache: SweepCache
) -> Dict[str, str]:
    """spec key -> cache key for every requested spec plus ``float32``."""
    init_digest = state_digest(sweep.builder())
    split_fp = split_fingerprint(sweep.split)
    config_fp = config_fingerprint(sweep.config)
    wanted = {spec.key for spec in specs} | {"float32"}
    return {
        spec_key: cache.point_key(init_digest, spec_key, split_fp, config_fp)
        for spec_key in wanted
    }


def _ensure_baseline(
    sweep: PrecisionSweep,
    cache: Optional[SweepCache],
    keys: Dict[str, str],
    cached_float: Optional[PrecisionResult],
    refresh: bool,
    float_checked: bool,
) -> PrecisionResult:
    """Make sure the sweep holds a trained float baseline; cache it.

    ``cached_float`` is the float32 result if an earlier cache lookup
    already found it (``float_checked`` marks that the lookup
    happened).  When the float point was not itself requested, its
    entry is looked up here so a resumed sweep still warm-starts from
    stored weights instead of retraining the baseline.
    """
    if sweep.float_network is not None:
        baseline = sweep.train_float_baseline()
    else:
        if (
            cache is not None
            and cached_float is None
            and not refresh
            and not float_checked
        ):
            cached_float = cache.get(keys["float32"])
        state = None
        if cache is not None and cached_float is not None:
            state = cache.get_state(keys["float32"])
        if state is not None:
            sweep.seed_baseline(state, cached_float)
            baseline = cached_float
        else:
            # Either no cache, a genuine miss, or the result JSON
            # survived while the weights .npz did not: (re)train.
            # Training is deterministic in the root seed, so the
            # retrained weights match whatever the result recorded.
            with get_tracer().span("parallel.baseline"):
                baseline = sweep.train_float_baseline()
    if cache is not None:
        cache.put(keys["float32"], baseline)
        cache.put_state(keys["float32"], network_state(sweep.float_network))
    return baseline


def run_sweep(
    sweep: PrecisionSweep,
    precisions: Optional[Sequence[Union[PrecisionSpec, str]]] = None,
    *,
    workers: int = 1,
    cache: CacheLike = None,
    refresh: bool = False,
    progress: bool = False,
    retry: Optional[RetryPolicy] = None,
) -> List[PrecisionResult]:
    """Run ``sweep`` over ``precisions`` with caching and N processes.

    See :meth:`repro.core.sweep.PrecisionSweep.run` for the argument
    contract; this function is its implementation for any combination
    of ``workers``/``cache``/``refresh``.

    ``retry`` (default :data:`DEFAULT_POINT_RETRY`) governs recovery
    from transient point failures: a worker process dying mid-point
    (``BrokenProcessPool``) rebuilds the pool and resubmits only the
    unfinished points; an injected ``parallel.point`` fault re-runs the
    point in place.  Because every point derives its RNG stream from
    the root seed alone, a retried point is bitwise identical to an
    undisturbed one.
    """
    from repro.core.precision import PAPER_PRECISIONS

    specs = [
        PrecisionSpec.parse(spec)
        for spec in (precisions if precisions is not None else PAPER_PRECISIONS)
    ]
    store = resolve_cache(cache)
    workers = max(1, int(workers))
    metrics = get_metrics()
    tracer = get_tracer()
    metrics.gauge("parallel.workers").set(workers)
    narrator = ProgressNarrator(
        total=len(specs), label="sweep", enabled=progress, metrics=metrics
    )

    results: List[Optional[PrecisionResult]] = [None] * len(specs)
    keys: Dict[str, str] = {}
    cached_float: Optional[PrecisionResult] = None
    float_checked = False

    keep_states = getattr(sweep, "keep_states", False)

    # -- pass 1: resolve every point against the cache -----------------
    if store is not None:
        keys = _point_keys(sweep, specs, store)
        if not refresh:
            for index, spec in enumerate(specs):
                if spec.is_float:
                    float_checked = True
                result = store.get(keys[spec.key])
                if result is None:
                    metrics.counter("parallel.cache.misses").inc()
                    continue
                if keep_states:
                    # A publishing sweep needs the trained weights, not
                    # just the accuracy row; a result-only entry (from a
                    # pre-publish run) counts as a miss so the point is
                    # retrained — deterministically, so the weights match
                    # the cached accuracy.
                    state = store.get_state(keys[spec.key])
                    if state is None:
                        metrics.counter("parallel.cache.misses").inc()
                        continue
                    sweep.point_states[spec.key] = state
                metrics.counter("parallel.cache.hits").inc()
                with tracer.span("parallel.point", spec=spec.key, cached=True):
                    results[index] = result
                if spec.is_float:
                    cached_float = result
                narrator.point(spec.key, cached=True)

    misses = [i for i, result in enumerate(results) if result is None]
    if not misses:
        narrator.close(cache_hits=store.hits if store else 0)
        return [result for result in results if result is not None]

    # -- pass 2: baseline (needed by every miss, float or not) ---------
    baseline = _ensure_baseline(
        sweep, store, keys, cached_float, refresh, float_checked
    )
    for index in list(misses):
        if specs[index].is_float:
            results[index] = baseline
            narrator.point(specs[index].key, cached=False)
            misses.remove(index)

    # -- pass 3: dispatch the remaining misses -------------------------
    parallel = workers > 1 and len(misses) > 1
    if parallel:
        try:
            pickle.dumps(sweep.builder)
        except Exception:
            warnings.warn(
                "sweep builder is not picklable (use a module-level "
                "function or functools.partial); running sequentially",
                RuntimeWarning,
                stacklevel=2,
            )
            parallel = False

    baseline_state = (
        network_state(sweep.float_network) if misses else None
    )

    def record(index: int, outcome: PointOutcome) -> None:
        spec = specs[index]
        # Worker results arrive with a pickled copy of the spec; swap in
        # the parent's canonical instance so identity semantics match the
        # sequential path (spec is get_precision(key) for registry keys).
        results[index] = dataclasses.replace(outcome.result, spec=spec)
        metrics.counter("parallel.points").inc()
        metrics.histogram("parallel.point_s").observe(outcome.elapsed_s)
        with tracer.span(
            "parallel.point",
            spec=spec.key,
            cached=False,
            worker=outcome.worker,
            worker_s=outcome.elapsed_s,
        ):
            pass
        if store is not None:
            store.put(keys[spec.key], outcome.result)
        if keep_states:
            # In-process points already populated sweep.point_states;
            # worker outcomes ship theirs back explicitly.
            state = outcome.state or sweep.point_states.get(spec.key)
            if state is not None:
                sweep.point_states[spec.key] = state
                if store is not None:
                    store.put_state(keys[spec.key], state)
        narrator.point(spec.key, cached=False, seconds=outcome.elapsed_s)

    policy = retry or DEFAULT_POINT_RETRY
    backoff_rng = random.Random(0)

    def note_retry(attempt: int, error: BaseException) -> None:
        metrics.counter("parallel.retries").inc()
        warnings.warn(
            f"sweep point attempt {attempt + 1} failed transiently "
            f"({error}); retrying",
            RuntimeWarning,
            stacklevel=2,
        )

    if parallel:
        tasks = {
            index: SweepPointTask(
                builder=sweep.builder,
                split=sweep.split,
                config=sweep.config,
                spec=specs[index],
                baseline_state=baseline_state,
                baseline_result=baseline,
                keep_state=keep_states,
            )
            for index in misses
        }
        with tracer.span("parallel.dispatch", points=len(misses), workers=workers):
            _dispatch_with_retry(
                tasks, workers, record, policy, backoff_rng, metrics
            )
    else:
        for index in misses:

            def run_one(spec=specs[index]):
                get_injector().fire("parallel.point")
                started = time.perf_counter()
                result = sweep.run_precision(spec)
                return PointOutcome(
                    result=result,
                    worker=0,
                    elapsed_s=time.perf_counter() - started,
                )

            outcome = retry_call(
                run_one,
                policy=policy,
                retry_on=(FaultInjectedError,),
                rng=backoff_rng,
                on_retry=note_retry,
            )
            record(index, outcome)

    narrator.close(cache_hits=store.hits if store else 0)
    return [result for result in results if result is not None]


def _dispatch_with_retry(
    tasks: Dict[int, SweepPointTask],
    workers: int,
    record,
    policy: RetryPolicy,
    backoff_rng: random.Random,
    metrics,
) -> None:
    """Dispatch tasks to a process pool, surviving worker deaths.

    A :class:`BrokenProcessPool` poisons the whole executor, so the
    pool is torn down and rebuilt and only the still-unfinished points
    are resubmitted; each resubmission counts one attempt against every
    pending point.  An injected ``parallel.point`` fault (fired in the
    parent as each point completes) fails just that point, which stays
    pending for the next round.  Points exhaust after
    ``policy.max_attempts`` rounds.
    """
    pending = dict(tasks)
    attempts = {index: 0 for index in tasks}
    while pending:
        pool_broke = False
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {
                pool.submit(run_sweep_point, task): index
                for index, task in pending.items()
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    outcome = future.result()
                    get_injector().fire("parallel.point")
                except BrokenProcessPool:
                    pool_broke = True
                    break
                except FaultInjectedError as error:
                    attempts[index] += 1
                    if attempts[index] >= policy.max_attempts:
                        raise
                    metrics.counter("parallel.retries").inc()
                    warnings.warn(
                        f"sweep point {index} failed transiently ({error}); "
                        "will resubmit",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                record(index, outcome)
                pending.pop(index)
        if not pending:
            return
        if pool_broke:
            metrics.counter("parallel.pool_rebuilds").inc()
            for index in pending:
                attempts[index] += 1
            exhausted = sorted(
                index for index in pending
                if attempts[index] >= policy.max_attempts
            )
            if exhausted:
                raise TrainingError(
                    f"sweep points {exhausted} still failing after "
                    f"{policy.max_attempts} attempts: worker processes "
                    "keep dying (BrokenProcessPool)"
                )
            warnings.warn(
                f"worker process died; rebuilding pool and resubmitting "
                f"{len(pending)} unfinished point(s)",
                RuntimeWarning,
                stacklevel=2,
            )
        round_attempt = max(attempts[index] for index in pending) - 1
        time.sleep(policy.backoff_s(max(round_attempt, 0), backoff_rng))
