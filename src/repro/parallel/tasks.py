"""Pickle-able sweep-point tasks executed inside worker processes.

A :class:`SweepPointTask` carries everything a worker needs to rebuild
the sweep state locally: the network builder (any picklable
zero-argument callable — :func:`functools.partial` over a registry
builder is the idiomatic choice), the data split, the training config,
the precision spec, and (for non-float points) the trained float
baseline so workers warm-start instead of retraining it.

Workers return a plain :class:`PointOutcome` so the parent can tag
observability spans with the worker's process id and wall time without
the worker needing a configured tracer of its own.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.precision import PrecisionSpec
from repro.core.sweep import PrecisionResult, PrecisionSweep, SweepConfig
from repro.data.dataset import DataSplit
from repro.nn.network import Sequential

__all__ = ["SweepPointTask", "PointOutcome", "run_sweep_point"]


@dataclass
class SweepPointTask:
    """One (builder, split, config, spec) unit of work.

    ``baseline_state`` / ``baseline_result`` hold the trained float
    reference (parameter arrays + its result); when present the worker
    installs them via :meth:`PrecisionSweep.seed_baseline` and trains
    only the quantization-aware fine-tune for ``spec``.

    ``keep_state`` asks the worker to ship the point's trained
    parameter arrays back in :attr:`PointOutcome.state`, so the parent
    can cache them and publish registry artifacts without retraining.
    """

    builder: Callable[[], Sequential]
    split: DataSplit
    config: SweepConfig
    spec: PrecisionSpec
    baseline_state: Optional[Dict[str, np.ndarray]] = None
    baseline_result: Optional[PrecisionResult] = None
    keep_state: bool = False


@dataclass
class PointOutcome:
    """A worker's reply: the result plus provenance for observability."""

    result: PrecisionResult
    worker: int          # worker process id
    elapsed_s: float
    state: Optional[Dict[str, np.ndarray]] = None  # with keep_state only


def run_sweep_point(task: SweepPointTask) -> PointOutcome:
    """Rebuild sweep state locally and run one precision point.

    This is the worker entry point — a module-level function so it
    pickles by reference.  Determinism: the sweep re-derives the
    point's RNG stream from ``config.seed`` and the spec key (see
    :mod:`repro.parallel.seeding`), so the returned result is bitwise
    identical to what the sequential loop produces for the same task.
    """
    started = time.perf_counter()
    sweep = PrecisionSweep(
        task.builder, task.split, task.config, keep_states=task.keep_state
    )
    if task.baseline_state is not None and task.baseline_result is not None:
        sweep.seed_baseline(task.baseline_state, task.baseline_result)
    result = sweep.run_precision(task.spec)
    return PointOutcome(
        result=result,
        worker=os.getpid(),
        elapsed_s=time.perf_counter() - started,
        state=sweep.point_states.get(task.spec.key),
    )
