"""Deterministic per-task seed derivation.

Every sweep point gets its own :class:`numpy.random.Generator` whose
seed is a pure function of the sweep's root seed plus a role string and
the precision key — never of global numpy RNG state, process identity
or dispatch order.  That is what makes a K-worker parallel sweep
bitwise-identical to the sequential run: each worker derives exactly
the generator the sequential loop would have derived for that point.

The derivation hashes the components with SHA-256 rather than using
``numpy.random.SeedSequence`` arithmetic directly so that the mapping
is stable across numpy versions and trivially reproducible from any
language (the cache key recipe in :mod:`repro.parallel.cache` relies on
the same property).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "generator_for"]

#: Bump to rotate every derived stream (e.g. after a training-loop
#: change that invalidates old trajectories anyway).
SEED_SCHEMA = 1


def derive_seed(root_seed: int, *components: object) -> int:
    """A 64-bit seed derived from ``root_seed`` and string components.

    The same inputs always produce the same seed, distinct component
    tuples produce (overwhelmingly likely) distinct seeds, and the
    result never depends on global RNG state.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-seed-v{SEED_SCHEMA}".encode("ascii"))
    digest.update(str(int(root_seed)).encode("ascii"))
    for component in components:
        digest.update(b"\x00")
        digest.update(str(component).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little")


def generator_for(root_seed: int, *components: object) -> np.random.Generator:
    """A fresh :class:`numpy.random.Generator` for one derived stream."""
    return np.random.default_rng(derive_seed(root_seed, *components))
