"""Content-addressed on-disk cache of sweep-point results.

Every (network, data, precision, training-budget) point is addressed by
a SHA-256 digest over everything that determines its outcome:

* ``init_digest`` — :func:`repro.nn.serialization.state_digest` of the
  freshly built network's initial weights (covers architecture, layer
  names, shapes *and* the init seed),
* the precision spec key (``"fixed8"``, ``"fixed:4:8"``, ...),
* a fingerprint of the train/val/test split (shapes + exact bytes),
* the :class:`~repro.core.sweep.SweepConfig` hyperparameters,
* a code-version salt (package version + cache schema), so results
  trained by incompatible code never alias.

Entries are JSON files under ``~/.cache/repro-sweeps`` (override with
the ``REPRO_SWEEP_CACHE`` environment variable or the ``root``
argument), sharded by the first two hex digits of the key.  The float
baseline's trained weights are stored next to its result as an ``.npz``
so resumed or parallel sweeps warm-start without retraining.  Writes
are atomic (temp file + ``os.replace``); a corrupted or unreadable
entry is treated as a miss, removed, and re-trained — a warning is
logged, the sweep never fails because of a bad cache file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
from typing import Dict, Optional

import numpy as np

from repro.core.precision import PrecisionSpec
from repro.core.sweep import PrecisionResult, SweepConfig
from repro.data.dataset import DataSplit
from repro.errors import FaultInjectedError
from repro.ioutil import atomic_write
from repro.resilience.faults import get_injector
from repro.version import __version__

__all__ = [
    "SweepCache",
    "default_cache_dir",
    "split_fingerprint",
    "config_fingerprint",
    "result_to_payload",
    "payload_to_result",
]

logger = logging.getLogger(__name__)

#: Bump when the stored payload layout or training semantics change in
#: a way that makes old entries wrong (part of every cache key).
CACHE_SCHEMA = 1

_ENV_VAR = "REPRO_SWEEP_CACHE"


def default_cache_dir() -> str:
    """``$REPRO_SWEEP_CACHE`` or ``~/.cache/repro-sweeps``."""
    env = os.environ.get(_ENV_VAR, "").strip()
    if env:
        return os.path.expanduser(env)
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sweeps")


def split_fingerprint(split: DataSplit) -> str:
    """SHA-256 over the exact contents of all three split parts.

    Covers shapes, dtypes and raw bytes of images and labels, so any
    change to dataset size, seed, normalization or augmentation yields
    a different fingerprint (and therefore different cache keys).
    """
    digest = hashlib.sha256()
    for part_name in ("train", "val", "test"):
        part = getattr(split, part_name)
        for array in (part.images, part.labels):
            array = np.ascontiguousarray(array)
            digest.update(part_name.encode("ascii"))
            digest.update(str(array.dtype).encode("ascii"))
            digest.update(str(array.shape).encode("ascii"))
            digest.update(array.tobytes())
    return digest.hexdigest()


def config_fingerprint(config: SweepConfig) -> str:
    """SHA-256 over the sweep's training hyperparameters."""
    payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_to_payload(result: PrecisionResult) -> Dict[str, object]:
    """JSON-serializable form of a :class:`PrecisionResult`.

    Floats survive the round trip exactly (``json`` emits shortest
    round-trip reprs), which is what lets cached results stay bitwise
    identical to freshly trained ones.
    """
    return {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "spec": result.spec.key,
        "accuracy": float(result.accuracy),
        "converged": bool(result.converged),
        "history": {
            name: [float(v) for v in values]
            for name, values in result.history.items()
        },
    }


def payload_to_result(payload: Dict[str, object]) -> PrecisionResult:
    """Inverse of :func:`result_to_payload` (raises on malformed input)."""
    return PrecisionResult(
        spec=PrecisionSpec.parse(payload["spec"]),
        accuracy=float(payload["accuracy"]),
        converged=bool(payload["converged"]),
        history={
            str(name): [float(v) for v in values]
            for name, values in dict(payload["history"]).items()
        },
    )


class SweepCache:
    """Directory-backed result cache with hit/miss accounting.

    Args:
        root: cache directory; defaults to :func:`default_cache_dir`.
        salt: extra component mixed into every :meth:`point_key`.
            The search passes its search-space fingerprint here, so a
            resumed search only ever reads entries produced by an
            identical space definition — the property that makes
            ``--resume`` bitwise-reproducible at any worker count.
            The default empty salt leaves plain-sweep keys unchanged.

    The instance counts ``hits`` / ``misses`` for reporting; the
    executor additionally feeds the shared metrics registry.
    """

    def __init__(self, root: Optional[str] = None, salt: str = ""):
        self.root = os.path.abspath(os.path.expanduser(root or default_cache_dir()))
        self.salt = salt
        self.hits = 0
        self.misses = 0

    # -- keys ----------------------------------------------------------
    def point_key(
        self,
        init_digest: str,
        spec_key: str,
        split_fp: str,
        config_fp: str,
    ) -> str:
        """Content address of one sweep point (see module docstring)."""
        digest = hashlib.sha256()
        components = [
            f"repro-sweep-cache-v{CACHE_SCHEMA}",
            __version__,
            init_digest,
            spec_key,
            split_fp,
            config_fp,
        ]
        if self.salt:
            # appended (not inserted) so the empty-salt keys are byte-
            # identical to pre-salt caches
            components.append(f"salt:{self.salt}")
        for component in components:
            digest.update(str(component).encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def _path(self, key: str, suffix: str) -> str:
        return os.path.join(self.root, key[:2], key + suffix)

    # -- results -------------------------------------------------------
    def get(self, key: str) -> Optional[PrecisionResult]:
        """Cached result for ``key``, or None (corrupt entries -> miss).

        The ``cache.read`` fault-injection site lives here: an injected
        raise is treated as a transient miss (the entry survives on
        disk), an injected corruption flows through the normal
        corrupt-entry recovery below.
        """
        path = self._path(key, ".json")
        try:
            get_injector().fire("cache.read")
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            payload = get_injector().corrupt("cache.read", payload)
            if payload.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"schema {payload.get('schema')!r}")
            result = payload_to_result(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except FaultInjectedError:
            logger.warning(
                "sweep cache: injected fault reading %s; treating as a miss",
                path,
            )
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError) as exc:
            logger.warning(
                "sweep cache: dropping corrupt entry %s (%s); re-running point",
                path, exc,
            )
            self._remove(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: PrecisionResult) -> str:
        """Atomically store ``result``; returns the entry path."""
        path = self._path(key, ".json")
        payload = json.dumps(result_to_payload(result), indent=1, sort_keys=True)
        atomic_write(path, payload.encode("utf-8"))
        return path

    # -- weight states (float baseline warm-starts) --------------------
    def get_state(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Cached parameter arrays for ``key``, or None."""
        path = self._path(key, ".npz")
        try:
            with np.load(path) as archive:
                return {name: archive[name] for name in archive.files}
        except FileNotFoundError:
            return None
        except (ValueError, OSError, EOFError) as exc:
            logger.warning(
                "sweep cache: dropping corrupt weights %s (%s)", path, exc
            )
            self._remove(path)
            return None

    def put_state(self, key: str, state: Dict[str, np.ndarray]) -> str:
        """Atomically store a name -> array mapping as ``.npz``."""
        path = self._path(key, ".npz")
        atomic_write(path, lambda handle: np.savez_compressed(handle, **state))
        return path

    # -- maintenance ---------------------------------------------------
    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith((".json", ".npz")):
                    self._remove(os.path.join(dirpath, filename))
                    removed += 1
        return removed

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk (0.0 when unused)."""
        return self.hits / self.requests if self.requests else 0.0

    @staticmethod
    def _remove(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SweepCache({self.root!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )
