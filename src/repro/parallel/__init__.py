"""Process-parallel precision sweeps with a resumable result cache.

The paper's evaluation grid — every network x every precision point,
each trained quantization-aware — is embarrassingly parallel across
precision points.  This package makes that structure executable:

:mod:`repro.parallel.seeding`
    Deterministic per-point seed derivation from a single root seed,
    independent of global RNG state, process identity and dispatch
    order.  The foundation of the determinism contract: a K-worker run
    is bitwise identical to the sequential run.

:mod:`repro.parallel.cache`
    Content-addressed on-disk cache under ``~/.cache/repro-sweeps``
    (``$REPRO_SWEEP_CACHE`` overrides).  Keys digest the network's
    initial-weight state, the precision spec, the exact data split,
    the training hyperparameters and a code-version salt; interrupted
    or repeated sweeps resume instead of retraining.  Corrupt entries
    degrade to misses with a warning.

:mod:`repro.parallel.tasks`
    Pickle-able sweep-point task + the worker entry point that
    rebuilds sweep state locally and returns a ``PrecisionResult``.

:mod:`repro.parallel.executor`
    Cache-aware scheduling over a ``ProcessPoolExecutor``, wired
    through :mod:`repro.obs` (per-point spans tagged with worker ids,
    cache hit/miss counters, a progress narrator).

Typical use goes through the high-level surfaces rather than this
package directly::

    results = sweep.run(specs, workers=4, cache=True)   # library
    python -m repro sweep --workers 4                   # CLI
    python -m repro.experiments table4 --workers 4      # experiments
"""

from repro.parallel.cache import (
    SweepCache,
    config_fingerprint,
    default_cache_dir,
    split_fingerprint,
)
from repro.parallel.executor import resolve_cache, run_sweep
from repro.parallel.seeding import derive_seed, generator_for
from repro.parallel.tasks import PointOutcome, SweepPointTask, run_sweep_point

__all__ = [
    "SweepCache",
    "config_fingerprint",
    "default_cache_dir",
    "derive_seed",
    "generator_for",
    "resolve_cache",
    "run_sweep",
    "PointOutcome",
    "SweepPointTask",
    "run_sweep_point",
    "split_fingerprint",
]
