"""repro — reproduction of Hashemi et al., DATE 2017.

*Understanding the Impact of Precision Quantization on the Accuracy and
Energy of Neural Networks.*

The package is organized as one subpackage per subsystem:

``repro.nn``
    From-scratch numpy neural-network framework (layers, backprop,
    optimizers, training loop).  This is the substrate that replaces the
    paper's Caffe/Ristretto stack.

``repro.data``
    Synthetic dataset substrate standing in for MNIST / SVHN / CIFAR-10
    (no network access in this environment); same shapes and graded
    difficulty.

``repro.core``
    The paper's primary contribution: the precision/quantization library
    (fixed point, power-of-two, binary), range analysis, quantized
    inference emulation, quantization-aware training with shadow weights,
    precision sweeps, and Pareto-frontier analysis.

``repro.zoo``
    The benchmark network architectures of Tables I and II (LeNet,
    SVHN ConvNet, ALEX, ALEX+, ALEX++).

``repro.hw``
    Analytical model of the DianNao-style tile accelerator the paper
    synthesizes at 65 nm / 250 MHz: component library, SRAM buffers, NFU
    pipeline variants per precision, cycle-level scheduler, energy model
    and synthesis-style reports.

``repro.experiments``
    One driver per paper table/figure (Table III, IV, V, Figure 3, 4 and
    the memory-footprint analysis in Section V-B).

``repro.serve``
    Batched, multi-worker quantized-inference serving engine: dynamic
    micro-batching with backpressure, an LRU model store of calibrated
    frozen networks, and per-request modeled-energy accounting
    (``python -m repro serve-bench``).

``repro.obs``
    Observability: nested-span tracing, a process-wide metrics registry
    (counters / gauges / windowed histograms), per-layer FLOP and
    byte-traffic profiling, and JSONL / console sinks.  Wired through
    the trainer, precision sweeps, the serving engine and the
    experiment drivers (``python -m repro profile``).

``repro.parallel``
    Process-parallel precision sweeps: deterministic per-point seed
    derivation, a content-addressed on-disk result cache so sweeps
    resume instead of retraining, and a ``ProcessPoolExecutor``-backed
    executor whose results are bitwise identical to the sequential
    path (``python -m repro sweep --workers 4``).

``repro.resilience``
    Robustness layer shared by serving and sweeps: retry with
    exponential backoff + full jitter, seeded fault injection at named
    sites, and graceful precision-degradation under overload; combined
    with per-request deadlines in ``repro.serve``
    (``python -m repro serve-bench --chaos 0 --deadline-ms 500``).

``repro.kernels``
    Fused quantized-inference kernels: single-pass quantize /
    im2col-conv / matmul / pool / ReLU routines writing into
    preallocated per-layer workspaces reused across batches, bitwise-
    equal to the layer-by-layer reference path for every paper
    precision (``docs/kernels.md``).

``repro.backends``
    Pluggable compute-backend dispatch over those kernels: a uniform
    ``dense`` / ``conv`` / ``pool`` / ``act`` / ``run`` interface with
    ``reference`` and ``fused`` implementations, selectable per call
    (``QuantizedNetwork.infer(x, backend=...)``), per network, or
    process-wide (``REPRO_BACKEND`` / ``--backend``).

``repro.registry``
    Content-addressed model-artifact registry and deployment lifecycle:
    manifests with measured accuracy + modeled hw costs, named channels
    with promote/rollback/pin, Pareto-gated promotion policies reusing
    ``repro.core.pareto``, and a deployer that swaps artifacts into the
    live serving engine with zero downtime and automatic rollback
    (``python -m repro registry publish|list|promote|rollback|serve``).

``repro.search``
    Automated mixed-precision & width search: an evolutionary loop
    over per-layer weight precisions and width-scaled architectures,
    Pareto-pruned under an energy budget and promoted into the
    registry (``python -m repro search --energy-budget ...``).

``repro.control``
    Closed-loop SLO autotuner for the serving engine: windowed sensors
    over live serving stats, a hysteresis + AIMD feedback controller
    moving batch size, precision tier and admission rate to hold a
    latency SLO, and a scenario-driven load suite with pass/fail
    verdicts (``python -m repro serve-bench --autotune``,
    ``docs/control.md``).
"""

from repro import backends, kernels, obs, parallel, registry, resilience, serve
from repro.version import __version__

__all__ = ["__version__", "backends", "kernels", "obs", "parallel",
           "registry", "resilience", "serve"]
