"""Exception hierarchy shared across the package.

Keeping a small, explicit hierarchy lets callers distinguish user errors
(bad configuration) from internal invariant violations without matching
on message strings.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class ShapeError(ReproError):
    """Tensor shapes are incompatible with the requested operation."""


class QuantizationError(ReproError):
    """A quantizer was asked to do something outside its domain."""


class HardwareModelError(ReproError):
    """The hardware model was configured or queried inconsistently."""


class TrainingError(ReproError):
    """Training failed in a way that is not a normal non-convergence."""


class ServingError(ReproError):
    """The inference-serving engine was configured or used inconsistently."""


class ServerOverloadedError(ServingError):
    """The bounded request queue is full; the request was rejected.

    This is the serving layer's explicit backpressure signal: callers
    should slow down or retry later rather than queue unboundedly.
    """


class ServerClosedError(ServingError):
    """A request was submitted to a server that is draining or stopped."""
