"""Exception hierarchy shared across the package.

Keeping a small, explicit hierarchy lets callers distinguish user errors
(bad configuration) from internal invariant violations without matching
on message strings.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class ShapeError(ReproError):
    """Tensor shapes are incompatible with the requested operation."""


class QuantizationError(ReproError):
    """A quantizer was asked to do something outside its domain."""


class HardwareModelError(ReproError):
    """The hardware model was configured or queried inconsistently."""


class ConfigError(ConfigurationError, HardwareModelError):
    """A structured-configuration field holds an invalid value.

    Carries the offending field name so callers (and error messages)
    can point at exactly what to fix.  Inherits from both
    :class:`ConfigurationError` (it is a user input problem) and
    :class:`HardwareModelError` (today's raisers are the hardware
    configs), so existing ``except`` clauses keep working.
    """

    def __init__(self, field: str, message: str):
        self.field = field
        super().__init__(f"{field}: {message}")


class SchedulingError(HardwareModelError):
    """A network cannot be mapped onto the tile as asked.

    Raised by :class:`repro.hw.TileScheduler` for degenerate inputs —
    an empty network, a non-positive input shape, or a layer whose
    minimal tile working set exceeds a buffer's double-buffered bank —
    instead of silently producing a zero-cycle schedule.
    """


class SimulationError(HardwareModelError):
    """The cycle-level simulator hit an internal protocol violation.

    Examples: an event scheduled in the past, a buffer bank loaded
    while still in use, or the deterministic event budget exhausted.
    """


class TrainingError(ReproError):
    """Training failed in a way that is not a normal non-convergence."""


class SerializationError(ReproError):
    """A stored weight archive or manifest could not be decoded.

    Raised instead of the underlying numpy/zipfile/json exception when a
    checkpoint file is truncated, corrupt or structurally invalid, so
    callers can distinguish "bad bytes on disk" from a transient I/O
    failure (``OSError``) or an architecture mismatch
    (:class:`ShapeError`).
    """


class RegistryError(ReproError):
    """The model-artifact registry was asked something inconsistent.

    Covers unknown/ambiguous digests, corrupt manifests, channel
    operations with no version to act on, and artifacts whose stored
    weights no longer match their manifest digest.
    """


class PromotionRejectedError(RegistryError):
    """A candidate artifact failed the channel's promotion policy.

    Raised by :meth:`repro.registry.Channel.promote` when the
    :class:`repro.registry.PromotionPolicy` finds the candidate
    dominated by the incumbent or outside the configured
    accuracy-floor / energy-budget constraints.  The message lists
    every violated rule.
    """


class ServingError(ReproError):
    """The inference-serving engine was configured or used inconsistently."""


class ServerOverloadedError(ServingError):
    """The bounded request queue is full; the request was rejected.

    This is the serving layer's explicit backpressure signal: callers
    should slow down or retry later rather than queue unboundedly.
    """


class ServerClosedError(ServingError):
    """A request was submitted to a server that is draining or stopped."""


class DeadlineExceededError(ServingError):
    """A request's deadline expired before a worker started computing it.

    Raised through the request's future when the batcher evicts the
    request instead of spending compute on an answer nobody is waiting
    for anymore.
    """


class ResultTimeoutError(ServingError):
    """``ServeFuture.result(timeout=...)`` gave up waiting.

    Distinct from :class:`DeadlineExceededError`: the *server* never
    resolved the future within the caller's local wait budget, so the
    request may still complete later.  A load generator counts these as
    lost futures.
    """


class WorkerStallError(ServingError):
    """Worker threads survived the shutdown deadline and were leaked.

    ``InferenceServer.stop(timeout=...)`` raises this instead of
    reporting a clean stop when one or more workers are still alive
    after the shared join deadline.
    """


class ReplicaCrashError(ServingError):
    """A fleet replica died too many times while holding this request.

    The front-end resubmits in-flight batches of a crashed replica
    through the retry machinery; a request that exceeds the fleet's
    resubmission budget fails with this error instead of cycling
    forever between dying replicas.
    """


class FleetNotReadyError(ServingError):
    """The fleet's replicas never reached the ready state in time.

    Raised by ``FleetServer.start`` when a replica fails to build its
    model (the replica's init error is chained) or its ready message
    does not arrive within the startup deadline.
    """


class FaultInjectedError(ReproError):
    """An error raised on purpose by :class:`repro.resilience.FaultInjector`.

    Recovery paths treat it like the transient infrastructure failure it
    stands in for (a died worker, a flaky filesystem read, a wedged
    forward pass); it is never raised unless a test or a chaos run armed
    the injector.
    """
