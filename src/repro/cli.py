"""Command-line interface: ``python -m repro <command>``.

Commands:

``train``
    Train a registered network on a synthetic task (optionally with
    quantization-aware fine-tuning) and save the weights.
``evaluate``
    Load saved weights and report test accuracy at one or more
    precisions.
``hw-report``
    Print the synthesis-style accelerator report for a precision.
``energy``
    Per-image energy of a registered network across all precisions.
``export-rtl``
    Write the generated NFU Verilog for a precision.
``serve-bench``
    Closed-loop load test of the batched inference server: throughput,
    latency percentiles, batch-size histogram and modeled energy.
``profile``
    Per-layer profile of quantized inference: forward time, FLOPs,
    bytes moved through the accelerator buffers and weight
    quantization RMS error for one (network, precision) point.
    ``--sim`` appends the cycle-level simulated view (utilization,
    stall breakdown, energy).
``simulate``
    Event-driven cycle-level accelerator simulation (``repro.hw.sim``):
    cycles, utilization %, stall breakdown by cause, per-image energy,
    roofline point.  ``--validate`` cross-checks the simulator against
    the analytical Table-III model for every precision;
    ``--sweep-bandwidth`` tabulates utilization vs DMA bandwidth —
    the axis the analytical model cannot see.
``sweep``
    Train a precision sweep (float baseline + QAT fine-tune per
    point) with worker-process parallelism and the resumable on-disk
    result cache: ``repro sweep --workers 4`` regenerates a network's
    accuracy column and a re-run resumes from cache.  ``--publish``
    turns every converged point into a registry artifact.
``search``
    Automated mixed-precision & width search: evolve per-layer
    precision assignments crossed with width-scaled architectures
    under an energy budget, prune each generation with the Pareto
    frontier, and (``--registry``) publish + promote the surviving
    frontier through a channel — see ``docs/search.md``.
``registry``
    Model-artifact lifecycle (``repro registry publish|list|promote|
    rollback|serve``): publish trained weights as content-addressed
    artifacts, promote them through channels behind the Pareto gate,
    serve a channel live and roll it back — see ``docs/registry.md``.

Everything the CLI does is also available programmatically; the CLI
exists so the common workflows are one command.
"""

from __future__ import annotations

import argparse
import dataclasses
import functools
import json
import math
import os
import sys
import time
from typing import List, Optional

import numpy as np

from repro import backends, control, core, hw, nn, obs, registry, serve
from repro.core.precision import PAPER_PRECISIONS
from repro.resilience import chaos_preset, use_injector
from repro.core.sweep import PrecisionSweep, SweepConfig
from repro.data import load_dataset
from repro.errors import ConfigurationError, RegistryError
from repro.experiments.formatting import format_table
from repro.hw.nfu import NfuGeometry
from repro.parallel import SweepCache, default_cache_dir, run_sweep
from repro.zoo import NETWORK_BUILDERS, build_network, network_info


def _add_common_training_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--network", default="lenet_small",
                        choices=sorted(NETWORK_BUILDERS))
    parser.add_argument("--n-train", type=int, default=1500)
    parser.add_argument("--n-test", type=int, default=400)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--lr", type=float, default=0.02)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)


def cmd_train(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    split = load_dataset(info.dataset, n_train=args.n_train,
                         n_test=args.n_test, seed=args.seed)
    network = build_network(args.network, seed=args.seed)
    trainer = nn.Trainer(
        network,
        nn.SGD(network.parameters(), lr=args.lr, momentum=0.9, weight_decay=1e-4),
        batch_size=args.batch_size,
        rng=np.random.default_rng(args.seed),
        restore_best=True,
    )
    trainer.fit(
        split.train.images, split.train.labels,
        split.val.images, split.val.labels,
        epochs=args.epochs, verbose=True,
    )
    accuracy = trainer.evaluate(split.test.images, split.test.labels)["accuracy"]
    print(f"float32 test accuracy: {100 * accuracy:.2f}%")

    if args.precision != "float32":
        spec = core.get_precision(args.precision)
        qnet = core.QuantizedNetwork(network, spec)
        qnet.calibrate(split.train.images[:256])
        qat = core.QATTrainer(
            qnet,
            nn.SGD(network.parameters(), lr=args.lr / 4, momentum=0.9),
            batch_size=args.batch_size,
            rng=np.random.default_rng(args.seed + 1),
            restore_best=True,
        )
        qat.fit(
            split.train.images, split.train.labels,
            split.val.images, split.val.labels,
            epochs=max(args.epochs // 2, 1), verbose=True,
        )
        accuracy = qnet.evaluate(split.test.images, split.test.labels)
        print(f"{spec.label} test accuracy: {100 * accuracy:.2f}%")

    if args.output:
        nn.save_network_weights(network, args.output)
        print(f"weights saved to {args.output}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    split = load_dataset(info.dataset, n_train=args.n_train,
                         n_test=args.n_test, seed=args.seed)
    network = build_network(args.network, seed=args.seed)
    nn.load_network_weights(network, args.weights)
    rows = []
    for key in args.precisions:
        spec = core.get_precision(key)
        if spec.is_float:
            logits = network.predict(split.test.images)
            accuracy = nn.accuracy(logits, split.test.labels)
        else:
            qnet = core.QuantizedNetwork(network, spec)
            qnet.calibrate(split.train.images[:256])
            accuracy = qnet.evaluate(split.test.images, split.test.labels)
        rows.append([spec.label, f"{100 * accuracy:.2f}"])
    print(format_table(["Precision (w,in)", "Acc %"], rows,
                       title=f"{args.network} on {info.dataset}"))
    return 0


def cmd_hw_report(args: argparse.Namespace) -> int:
    accelerator = hw.Accelerator.for_precision(args.precision)
    print(hw.synthesis_report(accelerator))
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    network = build_network(args.network, seed=0)
    model = hw.EnergyModel()
    baseline = model.evaluate(network, info.input_shape, PAPER_PRECISIONS[0])
    rows = []
    for spec in PAPER_PRECISIONS:
        report = model.evaluate(network, info.input_shape, spec)
        rows.append([
            spec.label,
            f"{report.energy_uj:.2f}",
            f"{report.savings_vs(baseline):.2f}",
            f"{report.runtime_us:.1f}",
        ])
    print(format_table(
        ["Precision (w,in)", "Energy uJ", "Saving %", "Runtime us"],
        rows, title=f"Per-image inference energy: {args.network}",
    ))
    return 0


def cmd_export_rtl(args: argparse.Namespace) -> int:
    spec = core.get_precision(args.precision)
    geometry = NfuGeometry(neurons=args.neurons, synapses=args.synapses)
    source = hw.generate_nfu(spec, geometry)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(source)
        print(f"wrote {args.output} ({len(source.splitlines())} lines)")
    else:
        print(source)
    return 0


def _apply_backend(args: argparse.Namespace) -> str:
    """Honor a ``--backend`` flag for this process and its children.

    Installs the choice both as the process-wide default (used by every
    in-process ``infer``/``freeze``) and in the environment, so sweep
    worker processes spawned by a ``ProcessPoolExecutor`` inherit it.
    Returns the effective backend name.
    """
    name = getattr(args, "backend", None)
    if name:
        backends.set_default(name)
        os.environ[backends.ENV_VAR] = name
    return backends.get_default()


def cmd_serve_bench(args: argparse.Namespace) -> int:
    backend_name = _apply_backend(args)
    if args.canary and not args.registry:
        raise RegistryError("--canary needs --registry (artifacts to roll)")
    if args.canary and args.replicas < 2:
        raise RegistryError("--canary needs --replicas >= 2 (a control group)")
    if args.canary and args.routing == "hash":
        raise RegistryError(
            "--canary needs shared routing so both groups see traffic"
        )
    art_store = channel = None
    if args.registry:
        art_store = registry.ArtifactStore(args.registry)
        channel = registry.Channel(art_store, args.channel)
        manifest = channel.active_manifest()
        # the channel decides what is served; CLI network/precision
        # flags only apply to registry-less runs
        args.network = manifest.network
        args.precision = manifest.precision
    info = network_info(args.network)
    split = load_dataset(info.dataset, n_train=64, n_test=128, seed=args.seed)
    images = split.test.images
    store = serve.ModelStore(
        weight_paths={args.network: args.weights} if args.weights else None,
        calibration_images=args.calibration,
        seed=args.seed,
        backend=backend_name,
    )
    rollout = None
    if channel is not None and args.replicas == 0:
        deployer = registry.Deployer(art_store, store, seed=args.seed)
        rollout = deployer.rollout(channel)
    servable = store.warm(args.network, args.precision)  # build outside timing
    spec = core.get_precision(args.precision)

    degrade = None
    degrade_watermark = 0
    if args.degrade:
        degrade_watermark = args.degrade_watermark or max(args.queue_size // 2, 1)
        degrade = control.AutoTuner.latency_only(
            watermark=degrade_watermark,
            fallback={args.precision: args.degrade},
        )
        store.warm(args.network, args.degrade)  # fallback ready before load

    if args.autotune:
        if args.replicas > 0:
            raise ConfigurationError(
                "--autotune scenarios run the in-process engine; "
                "drop --replicas"
            )
        if args.degrade:
            raise ConfigurationError(
                "--autotune supersedes --degrade (the controller owns the "
                "precision knob); drop one of them"
            )
        if args.chaos is not None:
            raise ConfigurationError(
                "--autotune with faults is spelled --scenario chaos; "
                "drop --chaos"
            )
        return _serve_bench_scenario(
            args, backend_name, art_store, spec, store, images, servable,
        )

    if args.replicas > 0:
        return _serve_bench_fleet(
            args, backend_name, art_store, channel, images, servable,
            spec, degrade,
        )

    if not args.json:
        print(
            f"serving {args.network} at {spec.label}: "
            f"{servable.memory_kb:.0f} KB footprint, "
            f"{servable.energy_uj_per_image:.3f} uJ/image modeled, "
            f"{backend_name} backend"
        )
        if rollout is not None:
            print(f"registry rollout        : {args.channel} "
                  f"v{rollout.version} ({rollout.digest[:12]}), "
                  f"build {rollout.build_ms:.1f} ms, "
                  f"swap {rollout.swap_ms:.2f} ms")
        if degrade is not None:
            print(f"overload degradation    : -> {args.degrade} past queue "
                  f"depth {degrade_watermark}")
        if args.chaos is not None:
            print(f"chaos                   : fault injector armed, "
                  f"seed {args.chaos}")

    deadline_ms = args.deadline_ms if args.deadline_ms > 0 else None

    def run(max_batch: int) -> serve.LoadResult:
        server = serve.InferenceServer(
            store,
            workers=args.workers,
            max_batch_size=max_batch,
            max_delay_ms=args.max_delay_ms,
            max_queue_depth=args.queue_size,
            degrade=degrade,
        )
        with server:
            return serve.run_closed_loop(
                server,
                images,
                args.network,
                args.precision,
                n_requests=args.requests,
                concurrency=args.concurrency,
                deadline_ms=deadline_ms,
            )

    injector = chaos_preset(args.chaos) if args.chaos is not None else None
    if injector is not None:
        with use_injector(injector):
            result = run(args.max_batch)
    else:
        result = run(args.max_batch)
    baseline = None
    if not args.skip_baseline and args.max_batch > 1:
        baseline = run(1)

    # with chaos armed, typed failures are expected; what must never
    # happen is a submitted request whose future simply never resolves
    failed = result.lost > 0 or (
        args.chaos is None and result.client_errors > 0
    )

    if args.json:
        payload = {
            "network": args.network,
            "precision": spec.key,
            "backend": backend_name,
            "requests": args.requests,
            "concurrency": args.concurrency,
            "workers": args.workers,
            "max_batch": args.max_batch,
            "deadline_ms": deadline_ms,
            "chaos_seed": args.chaos,
            "memory_kb": float(servable.memory_kb),
            "energy_uj_per_image": float(servable.energy_uj_per_image),
            "report": dataclasses.asdict(result.report),
            "retries": result.retries,
            "client_errors": result.client_errors,
            "deadline_expired": result.deadline_expired,
            "lost": result.lost,
            "accounted": result.accounted,
            "submitted": result.submitted,
        }
        if rollout is not None:
            payload["registry"] = {
                "root": art_store.root,
                "channel": rollout.channel,
                "version": rollout.version,
                "digest": rollout.digest,
                "swap_ms": rollout.swap_ms,
                "build_ms": rollout.build_ms,
            }
        if injector is not None:
            payload["injected_faults"] = injector.counts()
        if baseline is not None:
            payload["baseline_report"] = dataclasses.asdict(baseline.report)
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0

    print()
    print(f"closed loop: {args.requests} requests, {args.concurrency} clients, "
          f"{args.workers} workers, max batch {args.max_batch}")
    print(result.report.format())
    if result.retries:
        print(f"backpressure retries    : {result.retries}")
    if result.client_errors:
        print(f"client errors           : {result.client_errors}")
    if result.deadline_expired:
        print(f"deadline expired        : {result.deadline_expired}")
    if result.lost:
        print(f"LOST futures            : {result.lost}")
    if injector is not None:
        fired = ", ".join(
            f"{site}:{count}" for site, count in sorted(injector.counts().items())
        ) or "(none)"
        print(f"injected faults         : {fired}")
        print(f"accounted               : {result.accounted}/{result.submitted} "
              "(result | deadline | typed error)")

    if baseline is not None:
        speedup = (
            result.report.throughput_ips / baseline.report.throughput_ips
            if baseline.report.throughput_ips > 0 else float("inf")
        )
        print()
        print(f"batch=1 reference       : "
              f"{baseline.report.throughput_ips:.1f} img/s, "
              f"p95 {baseline.report.latency_ms_p95:.2f} ms")
        print(f"dynamic batching speedup: {speedup:.2f}x img/s vs max-batch=1")
    return 0 if result.client_errors == 0 else 1


def _serve_bench_scenario(
    args: argparse.Namespace,
    backend_name: str,
    art_store,
    spec,
    store,
    images,
    servable,
) -> int:
    """The ``serve-bench --autotune`` path: scenario-driven A/B between
    the closed-loop controller and a static tier-0 server."""
    scenario = control.get_scenario(args.scenario)
    if args.scenario_time_scale != 1.0:
        scenario = scenario.scaled(args.scenario_time_scale)

    if args.tiers:
        keys = [key.strip() for key in args.tiers.split(",") if key.strip()]
        ladder = control.TierLadder.from_precisions(keys)
    elif art_store is not None:
        ladder = control.TierLadder.from_registry(art_store, args.network)
    else:
        ladder = control.TierLadder.from_precisions(
            control.default_tier_keys(args.precision)
        )
    if ladder[0].precision != args.precision:
        raise ConfigurationError(
            f"tier 0 ({ladder[0].precision!r}) must be the served "
            f"precision ({args.precision!r})"
        )
    # warm every tier and fill modeled energies before any timing starts
    ladder = ladder.priced(store, args.network)

    def factory() -> serve.InferenceServer:
        return serve.InferenceServer(
            store,
            workers=args.workers,
            max_batch_size=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            max_queue_depth=args.queue_size,
        )

    slo_ms = args.slo_ms
    if slo_ms <= 0:
        probe = factory().start()
        try:
            slo_ms = control.calibrate_slo(
                probe, images, args.network, args.precision
            )
        finally:
            probe.stop()

    policy = control.SLOPolicy(
        latency_slo_ms=slo_ms,
        accuracy_floor=args.accuracy_floor if args.accuracy_floor > 0 else None,
    )
    knobs = control.KnobConfig(
        max_batch=args.max_batch,
        preferred_batch=min(8, args.max_batch),
    )
    runner = control.ScenarioRunner(
        factory, images, args.network, args.precision,
        policy=policy, ladder=ladder, knobs=knobs,
        interval_s=args.control_interval_ms / 1e3,
    )
    if not args.json:
        print(
            f"serving {args.network} at {spec.label} under the "
            f"{scenario.name} scenario ({scenario.total_duration_s:.1f} s "
            f"per arm, {backend_name} backend)"
        )
        print(f"SLO                     : p99 <= {slo_ms:.2f} ms"
              + ("  (calibrated)" if args.slo_ms <= 0 else ""))
        print(f"tier ladder             : {' > '.join(ladder.precisions)}")

    result = runner.judge(
        scenario, slo_ms, attainment_target=args.attainment
    )
    scenario_verdict, autotuned, static = result

    if args.json:
        payload = {
            "network": args.network,
            "precision": spec.key,
            "backend": backend_name,
            "concurrency_profile": [
                {"phase": p.name, "duration_s": p.duration_s,
                 "concurrency": p.concurrency}
                for p in scenario.phases
            ],
            "workers": args.workers,
            "max_batch": args.max_batch,
            "memory_kb": float(servable.memory_kb),
            "report": dataclasses.asdict(autotuned.report),
            "control": {
                "scenario": scenario.name,
                "slo_ms": slo_ms,
                "slo_calibrated": args.slo_ms <= 0,
                "attainment_target": args.attainment,
                "attainment": autotuned.attainment,
                "baseline_attainment": static.attainment,
                "windows": len(autotuned.loop.history),
                "p99_ms": autotuned.p99_ms,
                "baseline_p99_ms": static.p99_ms,
                "energy_uj_per_request": autotuned.energy_uj_per_request,
                "baseline_energy_uj_per_request":
                    static.energy_uj_per_request,
                "energy_saved_pct": scenario_verdict.energy_saved_pct,
                "accuracy_loss_bound": scenario_verdict.accuracy_loss_bound,
                "accuracy_floor": scenario_verdict.accuracy_floor,
                "tiers": ladder.precisions,
                "lost": autotuned.lost,
                "passed": scenario_verdict.passed,
                "actions": [
                    action.format() for action in
                    (autotuned.tuner.actions if autotuned.tuner else [])
                ],
                "knob_trajectory": autotuned.loop.knob_trajectory(),
            },
        }
        print(json.dumps(payload, indent=2))
        return 0 if scenario_verdict.passed else 1

    print()
    print(scenario_verdict.format())
    actions = autotuned.tuner.actions if autotuned.tuner else []
    if actions:
        print("controller actions      :")
        for action in actions:
            print(f"  {action.format()}")
    else:
        print("controller actions      : (none — the SLO held unaided)")
    return 0 if scenario_verdict.passed else 1


def _serve_bench_fleet(
    args: argparse.Namespace,
    backend_name: str,
    art_store,
    channel,
    images,
    servable,
    spec,
    degrade,
) -> int:
    """The ``serve-bench --replicas N`` path: multi-process fleet serving,
    optionally with a registry canary rollout riding the traffic."""
    deadline_ms = args.deadline_ms if args.deadline_ms > 0 else None
    warm = [(args.network, args.precision)]
    if args.degrade:
        warm.append((args.network, args.degrade))
    startup_artifact = None
    if channel is not None:
        entry = channel.active()
        startup_artifact = (
            art_store.root, channel.name, entry.digest, entry.version
        )
    crash_after = None
    if args.crash_after > 0:
        # deterministic chaos: the last replica dies once, mid-run
        crash_after = (args.replicas - 1, args.crash_after)
    config = serve.FleetConfig(
        replicas=args.replicas,
        ring_slots=args.ring_slots,
        max_batch_size=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_queue_depth=args.queue_size,
        routing=args.routing,
        seed=args.seed,
        backend=backend_name,
        calibration_images=args.calibration,
        weight_paths={args.network: args.weights} if args.weights else {},
        warm=warm,
        startup_artifact=startup_artifact,
        chaos_seed=args.chaos,
        crash_replica_after=crash_after,
    )
    if not args.json:
        print(
            f"serving {args.network} at {spec.label} on {args.replicas} "
            f"replica processes ({args.routing} routing, "
            f"{args.ring_slots} ring slots, {backend_name} backend)"
        )
        if startup_artifact is not None:
            print(f"registry artifact       : {args.channel} "
                  f"v{startup_artifact[3]} ({startup_artifact[2][:12]})")
        if args.chaos is not None:
            print(f"chaos                   : per-replica injectors armed, "
                  f"seed {args.chaos}")
        if crash_after is not None:
            print(f"deterministic crash     : replica {crash_after[0]} "
                  f"after {crash_after[1]} batches")

    fleet = serve.FleetServer(config, degrade=degrade)
    canary_report = None
    fleet.start(install_signal_handler=True)
    try:
        controller = None
        if args.canary:
            policy = registry.CanaryPolicy(
                fraction=args.canary_fraction,
                min_requests=args.canary_min_requests,
            )
            controller = registry.CanaryController(
                fleet, art_store, channel, policy
            )
            indices = controller.begin(
                args.canary, sabotage=args.sabotage_canary
            )
            if not args.json:
                sabotaged = " (sabotaged)" if args.sabotage_canary else ""
                print(f"canary                  : "
                      f"{args.canary[:12]} on replicas "
                      f"{list(indices)}{sabotaged}")
        result = serve.run_closed_loop(
            fleet, images, args.network, args.precision,
            n_requests=args.requests, concurrency=args.concurrency,
            deadline_ms=deadline_ms,
        )
        if controller is not None:
            decision = controller.decide()
            rounds = 0
            while decision.verdict == "wait" and rounds < 5:
                # uneven work stealing can starve one group early on;
                # keep the traffic flowing until both groups have data
                serve.run_closed_loop(
                    fleet, images, args.network, args.precision,
                    n_requests=max(args.requests // 2, 32),
                    concurrency=args.concurrency,
                    deadline_ms=deadline_ms,
                )
                decision = controller.decide()
                rounds += 1
            canary_report = controller.finish(decision)
    finally:
        fleet.stop()
    freport = fleet.fleet_report()

    # Chaos and sabotage make typed per-request failures expected; a
    # lost future never is.  A requested deterministic crash must also
    # prove the rejoin actually happened.
    failed = result.lost > 0
    if args.chaos is None and not args.sabotage_canary:
        failed = failed or result.client_errors > 0
    if crash_after is not None and freport.restarts < 1:
        failed = True
    if args.expect and (
        canary_report is None or canary_report.outcome != args.expect
    ):
        failed = True

    if args.json:
        payload = {
            "network": args.network,
            "precision": spec.key,
            "backend": backend_name,
            "requests": args.requests,
            "concurrency": args.concurrency,
            "replicas": args.replicas,
            "routing": args.routing,
            "ring_slots": args.ring_slots,
            "max_batch": args.max_batch,
            "deadline_ms": deadline_ms,
            "chaos_seed": args.chaos,
            "crash_after": args.crash_after or None,
            "memory_kb": float(servable.memory_kb),
            "energy_uj_per_image": float(servable.energy_uj_per_image),
            "report": dataclasses.asdict(result.report),
            "replica_compute": dataclasses.asdict(freport.replica_compute),
            "fleet": {
                "restarts": freport.restarts,
                "resubmissions": freport.resubmissions,
                "replicas": {
                    str(i): dataclasses.asdict(status)
                    for i, status in freport.replicas.items()
                },
            },
            "retries": result.retries,
            "client_errors": result.client_errors,
            "deadline_expired": result.deadline_expired,
            "lost": result.lost,
            "accounted": result.accounted,
            "submitted": result.submitted,
        }
        if canary_report is not None:
            payload["canary"] = {
                "outcome": canary_report.outcome,
                "digest": canary_report.digest,
                "version": canary_report.version,
                "replicas": list(canary_report.canary_indices),
                "decision": dataclasses.asdict(canary_report.decision),
            }
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0

    print()
    print(f"closed loop: {args.requests} requests, {args.concurrency} "
          f"clients, {args.replicas} replicas, max batch {args.max_batch}")
    print(freport.format())
    if result.retries:
        print(f"backpressure retries    : {result.retries}")
    if result.client_errors:
        print(f"client errors           : {result.client_errors}")
    if result.deadline_expired:
        print(f"deadline expired        : {result.deadline_expired}")
    if result.lost:
        print(f"LOST futures            : {result.lost}")
    if canary_report is not None:
        decision = canary_report.decision
        print(f"canary outcome          : {canary_report.outcome} "
              f"({decision.reason})")
        print(f"canary traffic          : canary "
              f"{decision.canary_requests} req "
              f"(err {decision.canary_error_rate:.1%}, "
              f"p99 {decision.canary_p99_ms:.2f} ms) vs control "
              f"{decision.control_requests} req "
              f"(err {decision.control_error_rate:.1%}, "
              f"p99 {decision.control_p99_ms:.2f} ms)")
    return 1 if failed else 0


def cmd_profile(args: argparse.Namespace) -> int:
    backend_name = _apply_backend(args)
    info = network_info(args.network)
    spec = core.PrecisionSpec.parse(args.precision)
    limit = max(args.limit, 1)
    # the loader carves ~10% (>=1 per class) of the test pool into the
    # validation set, so over-request to keep `limit` test images
    split = load_dataset(info.dataset, n_train=max(limit, 64),
                         n_test=max(2 * limit, 40), seed=args.seed)
    images = split.test.images[:limit]

    network = build_network(args.network, seed=args.seed)
    if args.weights:
        nn.load_network_weights(network, args.weights)
    qnet = core.QuantizedNetwork(network, spec)
    qnet.calibrate(split.train.images[: args.calibration])
    # RMS error must be measured while full-precision weights are
    # resident, i.e. before the profiled (swapped) forward pass.
    quant_errors = qnet.weight_quantization_errors()

    profiler = obs.LayerProfiler(
        qnet.pipeline,
        weight_bits=spec.weight_bits,
        activation_bits=spec.input_bits,
        metrics=obs.get_metrics(),
    )
    with profiler:
        # under the profiler every layer carries an instance-level
        # forward wrapper, so any backend degrades to per-unit reference
        # calls here — the layer table always measures the real layers
        logits = qnet.predict(images)
    profiler.annotate(
        "quant_rms",
        {name.rsplit(".", 1)[0]: err for name, err in quant_errors.items()},
    )

    # Fused-kernel view: a second, unwrapped pass on the selected
    # backend, timed per unit, plus a bitwise parity gate against the
    # profiled (reference-path) logits.
    impl = backends.get(backend_name)
    kernel_rows = parity_ok = None
    if isinstance(impl, backends.FusedBackend):
        impl.reset_stats()
        impl.profiling = True
        try:
            fused_logits = qnet.infer(images, backend=impl)
        finally:
            impl.profiling = False
        kernel_rows = impl.kernel_stats()
        parity_ok = fused_logits.tobytes() == logits.tobytes()

    test_accuracy = nn.accuracy(logits, split.test.labels[:limit])
    sim_report = None
    if args.sim:
        sim_report = hw.EnergyModel().simulate(
            network, info.input_shape, spec
        )
    if args.json:
        payload = {
            "network": args.network,
            "dataset": info.dataset,
            "precision": spec.key,
            "backend": backend_name,
            "images": int(images.shape[0]),
            "accuracy": float(test_accuracy),
            "total_flops": profiler.total_flops(),
            "total_bytes": profiler.total_bytes(),
            "layers": [stats.as_dict() for stats in profiler.stats()],
            "metrics": obs.get_metrics().snapshot(),
        }
        if kernel_rows is not None:
            payload["kernels"] = kernel_rows
            payload["kernels_parity"] = bool(parity_ok)
        if sim_report is not None:
            payload["sim"] = sim_report.as_dict()
        print(json.dumps(payload, indent=2))
        return 0 if parity_ok in (None, True) else 1

    print(f"profile: {args.network} on {info.dataset} at {spec.label}, "
          f"{images.shape[0]} images "
          f"(accuracy {100 * test_accuracy:.2f}%, {backend_name} backend)")
    print()
    print(profiler.table())
    if kernel_rows is not None:
        total_s = sum(row["seconds"] for row in kernel_rows) or 1.0
        print()
        print(format_table(
            ["Unit", "Kind", "Fused", "Calls", "Time ms", "%"],
            [
                [
                    row["unit"],
                    row["kind"],
                    "yes" if row["fused"] else "fallback",
                    row["calls"],
                    f"{1e3 * row['seconds']:.2f}",
                    f"{100 * row['seconds'] / total_s:.1f}",
                ]
                for row in kernel_rows
            ],
            title=f"fused kernels ({backend_name} backend)",
        ))
        print(f"fused vs reference logits: "
              f"{'bitwise equal' if parity_ok else 'MISMATCH'}")
    if sim_report is not None:
        print()
        print(sim_report.format())
    return 0 if parity_ok in (None, True) else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    network = build_network(args.network, seed=args.seed)
    sim_config = hw.SimConfig(
        bandwidth_gbps=args.bandwidth_gbps if args.bandwidth_gbps > 0 else None
    )
    model = hw.EnergyModel()

    if args.sweep_bandwidth:
        bandwidths = [float(b) for b in args.sweep_bandwidth.split(",")]
        spec = core.PrecisionSpec.parse(args.precision)
        reports = []
        for bandwidth in bandwidths:
            config = hw.SimConfig(
                bandwidth_gbps=bandwidth if bandwidth > 0 else None
            )
            reports.append(model.simulate(
                network, info.input_shape, spec, sim_config=config
            ))
        if args.json:
            print(json.dumps(
                [report.as_dict() for report in reports], indent=2
            ))
            return 0
        rows = [
            [
                "inf" if report.bandwidth_gbps is None
                else f"{report.bandwidth_gbps:g}",
                str(report.total_cycles),
                f"{100 * report.utilization:.1f}",
                str(report.stalls.get("dma_wait", 0)),
                f"{report.energy_uj:.3f}",
                "compute" if report.roofline.compute_bound else "bandwidth",
            ]
            for report in reports
        ]
        print(format_table(
            ["Gbit/s", "Cycles", "Util %", "DMA wait", "Energy uJ", "Bound"],
            rows,
            title=f"Utilization vs DMA bandwidth: {args.network} "
                  f"at {spec.label}",
        ))
        return 0

    if args.validate:
        reports = [
            model.simulate(network, info.input_shape, spec,
                           sim_config=sim_config)
            for spec in PAPER_PRECISIONS
        ]
        if args.json:
            print(json.dumps(
                [report.as_dict() for report in reports], indent=2
            ))
            return 0
        rows = [
            [
                report.precision_label,
                str(report.total_cycles),
                f"{report.cycle_gap_pct:+.2f}",
                f"{report.energy_uj:.3f}",
                f"{report.analytical_energy_uj:.3f}",
                f"{report.energy_gap_pct:+.2f}",
                f"{100 * report.utilization:.1f}",
            ]
            for report in reports
        ]
        print(format_table(
            ["Precision (w,in)", "Cycles", "dCyc %", "Sim uJ",
             "Model uJ", "dE %", "Util %"],
            rows,
            title=f"Sim vs analytical cross-validation: {args.network}",
        ))
        worst = max(abs(report.energy_gap_pct) for report in reports)
        print(f"worst energy gap: {worst:.2f}% (tolerance 5%)")
        return 0 if worst <= 5.0 else 1

    spec = core.PrecisionSpec.parse(args.precision)
    report = model.simulate(network, info.input_shape, spec,
                            sim_config=sim_config)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
        return 0
    print(report.format())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    backend_name = _apply_backend(args)
    info = network_info(args.network)
    split = load_dataset(info.dataset, n_train=args.n_train,
                         n_test=args.n_test, seed=args.seed)
    config = SweepConfig(
        float_epochs=args.float_epochs,
        qat_epochs=args.qat_epochs,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    sweep = PrecisionSweep(
        functools.partial(build_network, args.network, args.seed),
        split,
        config,
        keep_states=bool(args.publish),
    )
    specs = [core.PrecisionSpec.parse(key) for key in args.precisions]
    if args.clear_cache:
        removed = SweepCache(args.cache_dir or None).clear()
        print(f"cleared {removed} cache entries", file=sys.stderr)
    store = None if args.no_cache else SweepCache(args.cache_dir or None)

    started = time.perf_counter()
    results = run_sweep(
        sweep,
        specs,
        workers=args.workers,
        cache=store,
        refresh=args.refresh,
        progress=not args.json,
    )
    elapsed = time.perf_counter() - started

    published = []
    if args.publish:
        art_store = registry.ArtifactStore(args.publish)
        cache_keys = {}
        if store is not None:
            from repro.parallel.executor import _point_keys
            cache_keys = _point_keys(sweep, specs, store)
        for result in results:
            state = sweep.point_states.get(result.spec.key)
            if not result.converged or state is None:
                continue
            manifest = registry.publish_with_modeled_costs(
                art_store, state, args.network, result.spec.key,
                accuracy=result.accuracy,
                n_samples=int(split.test.labels.shape[0]),
                sweep_cache_key=cache_keys.get(result.spec.key),
                created_by="repro sweep --publish",
            )
            published.append(manifest)

    if args.json:
        payload = {
            "network": args.network,
            "dataset": info.dataset,
            "backend": backend_name,
            "workers": args.workers,
            "elapsed_s": elapsed,
            "cache_dir": store.root if store is not None else None,
            "cache_hits": store.hits if store is not None else 0,
            "cache_misses": store.misses if store is not None else 0,
            "results": [
                {
                    "precision": result.spec.key,
                    "accuracy": float(result.accuracy),
                    "converged": bool(result.converged),
                }
                for result in results
            ],
        }
        if args.publish:
            payload["artifacts"] = [
                {
                    "precision": manifest.precision,
                    "digest": manifest.digest,
                    "energy_uj_per_image": manifest.energy_uj_per_image,
                }
                for manifest in published
            ]
        print(json.dumps(payload, indent=2))
        return 0

    rows = [
        [
            result.spec.label,
            f"{result.accuracy_percent:.2f}" if result.converged else "NA",
            "yes" if result.converged else "no",
        ]
        for result in results
    ]
    print(format_table(
        ["Precision (w,in)", "Acc %", "Converged"],
        rows,
        title=f"{args.network} on {info.dataset} "
              f"({args.workers} workers, {elapsed:.1f} s)",
    ))
    if store is not None:
        print(
            f"cache: {store.hits} hits / {store.misses} misses "
            f"({store.root})"
        )
    for manifest in published:
        print(f"published {manifest.precision:<10} -> "
              f"{manifest.short_digest()} "
              f"({manifest.energy_uj_per_image:.2f} uJ/image)")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    from repro.core.sweep import SweepConfig as _SweepConfig
    from repro.search import PrecisionSearch, SearchConfig, SearchSpace

    space = SearchSpace(
        task=args.task,
        width_choices=tuple(args.widths),
        weight_bit_choices=tuple(args.weight_bits),
        input_bits=args.input_bits,
        kind=args.kind,
        per_layer=not args.uniform_only,
    )
    config = SearchConfig(
        space=space,
        generations=args.generations,
        population=args.population,
        survivors=args.survivors,
        energy_budget_uj=args.energy_budget,
        seed=args.seed,
        workers=args.workers,
        sweep=_SweepConfig(
            float_epochs=args.float_epochs,
            qat_epochs=args.qat_epochs,
            seed=args.seed,
        ),
        n_train=args.n_train,
        n_test=args.n_test,
        dataset_seed=args.seed,
        sim_check=args.sim_check,
    )
    cache = None if args.no_cache else (args.cache_dir or True)
    if args.resume and cache is None:
        print("error: --resume requires the cache (drop --no-cache)",
              file=sys.stderr)
        return 2

    search = PrecisionSearch(config, cache=cache)
    started = time.perf_counter()
    result = search.run(resume=args.resume)
    elapsed = time.perf_counter() - started

    published = None
    if args.registry:
        published = search.publish(result, args.registry, args.channel or None)

    if args.json:
        payload = {
            "task": args.task,
            "fingerprint": space.fingerprint(),
            "energy_budget_uj": args.energy_budget,
            "generations_run": result.generations_run,
            "evaluated": len(result.evaluated),
            "elapsed_s": elapsed,
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "dominates_fixed_grid": result.dominates_fixed_grid,
            "frontier": [
                {
                    "label": p.label,
                    "accuracy": p.accuracy,
                    "energy_uj": p.energy_uj,
                    "metadata": dict(p.metadata),
                }
                for p in result.frontier
            ],
            "grid_frontier": [
                {"label": p.label, "accuracy": p.accuracy,
                 "energy_uj": p.energy_uj}
                for p in result.grid_frontier
            ],
            "sim_gaps_pct": result.sim_gaps_pct,
        }
        if published is not None:
            payload["promoted"] = [
                {"label": label, "version": entry.version,
                 "digest": entry.digest}
                for label, entry in published["promoted"]
            ]
            payload["rejected"] = [
                {"label": label, "reason": reason}
                for label, reason in published["rejected"]
            ]
        print(json.dumps(payload, indent=2))
    else:
        frontier_labels = {p.label for p in result.frontier}
        rows = [
            [
                e.candidate.network,
                e.candidate.spec_key,
                f"{e.result.accuracy_percent:.2f}" if e.converged else "NA",
                f"{e.energy_uj:.3f}",
                str(e.generation),
                "*" if e.candidate.key in frontier_labels else "",
            ]
            for e in result.evaluated
        ]
        budget = (f", budget {args.energy_budget:g} uJ"
                  if args.energy_budget else "")
        print(format_table(
            ["Network", "Precision", "Acc %", "Energy uJ", "Gen", "Front"],
            rows,
            title=f"search: {args.task} ({result.generations_run} "
                  f"generation(s){budget}, {elapsed:.1f} s)",
        ))
        print("frontier: " + ", ".join(p.label for p in result.frontier))
        verdict = ("DOMINATES" if result.dominates_fixed_grid
                   else "does not dominate")
        print(f"search {verdict} the fixed grid "
              f"({len(result.dominating)} dominating point(s))")
        for label, gap in result.sim_gaps_pct.items():
            print(f"  sim check {label}: {gap:+.2f}% energy gap")
        if result.cache_hits or result.cache_misses:
            print(f"cache: {result.cache_hits} hits / "
                  f"{result.cache_misses} misses")
        if published is not None:
            for label, entry in published["promoted"]:
                print(f"promoted v{entry.version}: {label} "
                      f"({entry.digest[:12]})")
            for label, reason in published["rejected"]:
                print(f"gate rejected {label}: {reason}")
    if args.registry and (published is None or not published["promoted"]):
        print("error: nothing promoted", file=sys.stderr)
        return 1
    return 0


def _registry_store(args: argparse.Namespace) -> "registry.ArtifactStore":
    return registry.ArtifactStore(args.root)


def _policy_from_args(args: argparse.Namespace) -> registry.PromotionPolicy:
    return registry.PromotionPolicy(
        require_non_dominated=not args.allow_dominated,
        min_accuracy=args.min_accuracy,
        max_energy_uj=args.max_energy_uj,
        max_accuracy_drop=args.max_accuracy_drop,
    )


def cmd_registry_publish(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    spec = core.get_precision(args.precision)
    network = build_network(args.network, seed=args.seed)
    split = load_dataset(info.dataset, n_train=args.n_train,
                         n_test=args.n_test, seed=args.seed)
    if args.weights:
        nn.load_network_weights(network, args.weights)
    else:
        # quick training pass so the artifact has honest metrics; for
        # longer budgets, train separately and pass --weights
        trainer = nn.Trainer(
            network,
            nn.SGD(network.parameters(), lr=0.02, momentum=0.9,
                   weight_decay=1e-4),
            batch_size=32,
            rng=np.random.default_rng(args.seed),
            restore_best=True,
        )
        trainer.fit(
            split.train.images, split.train.labels,
            split.val.images, split.val.labels,
            epochs=args.epochs,
        )
    if spec.is_float:
        logits = network.predict(split.test.images)
        accuracy = nn.accuracy(logits, split.test.labels)
    else:
        qnet = core.QuantizedNetwork(network, spec)
        qnet.calibrate(split.train.images[:256])
        accuracy = qnet.evaluate(split.test.images, split.test.labels).accuracy
    manifest = registry.publish_with_modeled_costs(
        _registry_store(args), nn.network_state(network),
        args.network, spec.key,
        accuracy=accuracy,
        n_samples=int(split.test.labels.shape[0]),
        created_by="repro registry publish",
    )
    print(f"published {manifest.network}@{manifest.precision}: "
          f"{manifest.digest}")
    print(f"  accuracy {100 * manifest.accuracy:.2f}%  "
          f"energy {manifest.energy_uj_per_image:.2f} uJ/image  "
          f"memory {manifest.memory_kb:.0f} KB")
    return 0


def cmd_registry_list(args: argparse.Namespace) -> int:
    store = _registry_store(args)
    manifests = store.list_artifacts()
    if args.json:
        print(json.dumps([m.to_dict() for m in manifests], indent=2))
        return 0
    if not manifests:
        print(f"registry {store.root} is empty")
        return 0
    rows = [
        [
            m.short_digest(),
            m.network,
            m.precision,
            f"{100 * m.accuracy:.2f}" if math.isfinite(m.accuracy) else "?",
            f"{m.energy_uj_per_image:.2f}"
            if math.isfinite(m.energy_uj_per_image) else "?",
            m.dataset or "?",
        ]
        for m in manifests
    ]
    print(format_table(
        ["Digest", "Network", "Precision", "Acc %", "uJ/img", "Dataset"],
        rows, title=f"{len(manifests)} artifact(s) in {store.root}",
    ))
    channel_dir = os.path.join(store.root, "channels")
    for name in sorted(
        f[:-5] for f in os.listdir(channel_dir) if f.endswith(".json")
    ):
        chan = registry.Channel(store, name)
        entry = chan.active()
        state = "empty" if entry is None else (
            f"v{entry.version} -> {entry.digest[:12]}"
        )
        pin = " [pinned]" if chan.pinned else ""
        print(f"channel {name}: {state}{pin}")
    return 0


def cmd_registry_promote(args: argparse.Namespace) -> int:
    store = _registry_store(args)
    chan = registry.Channel(store, args.channel)
    entry = chan.promote(
        args.ref,
        policy=None if args.force else _policy_from_args(args),
        note=args.note,
        force=args.force,
    )
    print(f"{args.channel} -> v{entry.version} ({entry.digest[:12]})")
    return 0


def cmd_registry_rollback(args: argparse.Namespace) -> int:
    store = _registry_store(args)
    chan = registry.Channel(store, args.channel)
    entry = chan.rollback(args.steps)
    print(f"{args.channel} rolled back to v{entry.version} "
          f"({entry.digest[:12]})")
    return 0


def cmd_registry_serve(args: argparse.Namespace) -> int:
    store = _registry_store(args)
    chan = registry.Channel(store, args.channel)
    manifest = chan.active_manifest()
    model_store = serve.ModelStore(seed=args.seed)
    deployer = registry.Deployer(store, model_store, seed=args.seed)
    report = deployer.rollout(chan)
    info = network_info(manifest.network)
    split = load_dataset(info.dataset, n_train=64,
                         n_test=max(args.requests, 32), seed=args.seed)
    server = serve.InferenceServer(model_store, workers=args.workers)
    with server:
        result = serve.run_closed_loop(
            server,
            split.test.images,
            manifest.network,
            manifest.precision,
            n_requests=args.requests,
            concurrency=args.concurrency,
        )
    print(f"served {args.channel} v{report.version} "
          f"({manifest.short_digest()}): "
          f"{result.report.throughput_ips:.1f} img/s, "
          f"p95 {result.report.latency_ms_p95:.2f} ms, "
          f"{result.client_errors} client errors")
    return 0 if result.client_errors == 0 and result.lost == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Precision-quantization study toolkit (Hashemi et al., DATE 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a network, optionally QAT")
    _add_common_training_args(train)
    train.add_argument("--precision", default="float32",
                       choices=[s.key for s in PAPER_PRECISIONS])
    train.add_argument("--output", default="", help="save weights (.npz)")
    train.set_defaults(func=cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate saved weights")
    _add_common_training_args(evaluate)
    evaluate.add_argument("--weights", required=True)
    evaluate.add_argument(
        "--precisions", nargs="+", default=["float32", "fixed8"],
        choices=[s.key for s in PAPER_PRECISIONS],
    )
    evaluate.set_defaults(func=cmd_evaluate)

    report = sub.add_parser("hw-report", help="accelerator synthesis report")
    report.add_argument("--precision", default="fixed16",
                        choices=[s.key for s in PAPER_PRECISIONS])
    report.set_defaults(func=cmd_hw_report)

    energy = sub.add_parser("energy", help="per-image energy per precision")
    energy.add_argument("--network", default="lenet",
                        choices=sorted(NETWORK_BUILDERS))
    energy.set_defaults(func=cmd_energy)

    rtl = sub.add_parser("export-rtl", help="generate NFU Verilog")
    rtl.add_argument("--precision", default="fixed16",
                     choices=[s.key for s in PAPER_PRECISIONS if not s.is_float])
    rtl.add_argument("--neurons", type=int, default=16)
    rtl.add_argument("--synapses", type=int, default=16)
    rtl.add_argument("--output", default="")
    rtl.set_defaults(func=cmd_export_rtl)

    bench = sub.add_parser(
        "serve-bench", help="load-test the batched inference server"
    )
    bench.add_argument("--network", default="lenet_small",
                       choices=sorted(NETWORK_BUILDERS))
    bench.add_argument("--precision", default="fixed8",
                       choices=[s.key for s in PAPER_PRECISIONS])
    bench.add_argument("--requests", type=int, default=256)
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--max-batch", type=int, default=32)
    bench.add_argument("--max-delay-ms", type=float, default=2.0)
    bench.add_argument("--queue-size", type=int, default=512)
    bench.add_argument("--concurrency", type=int, default=64,
                       help="closed-loop clients kept in flight")
    bench.add_argument("--calibration", type=int, default=128,
                       help="images used to calibrate activation ranges")
    bench.add_argument("--weights", default="",
                       help="optional trained weights (.npz) to serve")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--deadline-ms", type=float, default=0.0,
                       help="per-request queueing deadline (0 = none)")
    bench.add_argument("--chaos", type=int, default=None, metavar="SEED",
                       help="arm the seeded fault injector for the run")
    bench.add_argument("--degrade", default="",
                       choices=[""] + [s.key for s in PAPER_PRECISIONS],
                       help="reroute to this precision when overloaded")
    bench.add_argument("--degrade-watermark", type=int, default=0,
                       help="queue depth that triggers degradation "
                            "(default: queue-size // 2)")
    bench.add_argument("--skip-baseline", action="store_true",
                       help="skip the max-batch=1 comparison run")
    bench.add_argument("--autotune", action="store_true",
                       help="run a scenario with the closed-loop SLO "
                            "controller vs a static baseline arm")
    bench.add_argument("--scenario", default="flash_crowd",
                       choices=sorted(control.SCENARIOS),
                       help="traffic shape for --autotune runs")
    bench.add_argument("--slo-ms", type=float, default=0.0,
                       help="p99 latency SLO in ms (0 = calibrate as 3x "
                            "the p99 of an uncontended probe)")
    bench.add_argument("--tiers", default="",
                       help="comma-separated precision ladder, highest "
                            "fidelity first (default: the paper's fixed-"
                            "point menu below --precision, or the "
                            "registry's artifacts with --registry)")
    bench.add_argument("--accuracy-floor", type=float, default=0.0,
                       help="never degrade to a tier whose known accuracy "
                            "is below this (0 = no floor)")
    bench.add_argument("--attainment", type=float, default=0.9,
                       help="fraction of control windows that must meet "
                            "the SLO for the scenario to pass")
    bench.add_argument("--scenario-time-scale", type=float, default=1.0,
                       help="multiply every phase duration (CI uses <1)")
    bench.add_argument("--control-interval-ms", type=float, default=50.0,
                       help="control window length")
    bench.add_argument("--registry", default="", metavar="ROOT",
                       help="serve a registry channel's active artifact "
                            "(overrides --network/--precision/--weights)")
    bench.add_argument("--channel", default="prod",
                       help="registry channel to deploy (with --registry)")
    bench.add_argument("--backend", default="",
                       help="compute backend servables are frozen onto "
                            "(default: process default, normally fused)")
    bench.add_argument("--replicas", type=int, default=0,
                       help="serve from this many replica processes "
                            "(0 = in-process engine)")
    bench.add_argument("--ring-slots", type=int, default=2,
                       help="shared-memory batches in flight per replica")
    bench.add_argument("--routing", default="shared",
                       choices=["shared", "hash"],
                       help="fleet routing: shared work-stealing queue or "
                            "consistent-hash lane pinning")
    bench.add_argument("--crash-after", type=int, default=0, metavar="N",
                       help="deterministic chaos: kill the last replica "
                            "after N batches, assert it rejoins "
                            "(with --replicas)")
    bench.add_argument("--canary", default="", metavar="REF",
                       help="canary-roll this artifact digest onto part of "
                            "the fleet (needs --registry and --replicas>=2)")
    bench.add_argument("--canary-fraction", type=float, default=0.25,
                       help="share of replicas serving the canary")
    bench.add_argument("--canary-min-requests", type=int, default=20,
                       help="requests per group before a canary verdict")
    bench.add_argument("--sabotage-canary", action="store_true",
                       help="arm forward-path faults on the canary replicas "
                            "(chaos: forces the auto-rollback path)")
    bench.add_argument("--expect", default="",
                       choices=["", "promoted", "rolled_back"],
                       help="fail unless the canary outcome matches (CI)")
    bench.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    bench.set_defaults(func=cmd_serve_bench)

    profile = sub.add_parser(
        "profile",
        help="per-layer time/FLOPs/bytes/quant-error profile",
    )
    profile.add_argument("--network", default="lenet_small",
                         choices=sorted(NETWORK_BUILDERS))
    profile.add_argument(
        "--precision", default="fixed8",
        help="precision key or spec string (e.g. fixed8, fixed:4:8)",
    )
    profile.add_argument("--limit", type=int, default=256,
                         help="number of test images to run")
    profile.add_argument("--calibration", type=int, default=64,
                         help="images used to calibrate activation ranges")
    profile.add_argument("--weights", default="",
                         help="optional trained weights (.npz) to profile")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--json", action="store_true",
                         help="emit per-layer rows and metrics as JSON")
    profile.add_argument("--sim", action="store_true",
                         help="append the cycle-level simulation view "
                              "(cycles, utilization, stall breakdown)")
    profile.add_argument("--backend", default="",
                         help="compute backend; with fused, appends the "
                              "per-unit kernel table and a bitwise "
                              "parity gate against the reference path")
    profile.set_defaults(func=cmd_profile)

    simulate = sub.add_parser(
        "simulate",
        help="event-driven cycle-level accelerator simulation",
        description="Run the repro.hw.sim event-driven simulator: "
                    "cycles, utilization, stall breakdown by cause, "
                    "per-image energy and the roofline point — "
                    "cross-validated against the analytical model "
                    "(see docs/hw_sim.md).",
    )
    simulate.add_argument("--network", default="lenet",
                          choices=sorted(NETWORK_BUILDERS))
    simulate.add_argument(
        "--precision", default="fixed16",
        help="precision key or spec string (e.g. fixed8, fixed:4:8)",
    )
    simulate.add_argument(
        "--bandwidth-gbps", type=float, default=0.0,
        help="off-chip DMA bandwidth in Gbit/s (0 = unconstrained, "
             "the paper's operating assumption)",
    )
    simulate.add_argument(
        "--sweep-bandwidth", default="", metavar="GBPS,GBPS,...",
        help="utilization sweep: simulate once per bandwidth and "
             "tabulate cycles/utilization/stalls",
    )
    simulate.add_argument(
        "--validate", action="store_true",
        help="cross-validate sim vs analytical energy across all "
             "Table-III precisions (exit 1 if any gap exceeds 5%%)",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--json", action="store_true",
                          help="emit the SimReport(s) as JSON")
    simulate.set_defaults(func=cmd_simulate)

    sweep = sub.add_parser(
        "sweep",
        help="parallel, cache-resumable precision sweep",
        description="Train a precision sweep with worker-process "
                    "parallelism and the resumable on-disk result cache. "
                    "Results are bitwise identical for any worker count "
                    "with the same seed.",
    )
    sweep.add_argument("--network", default="lenet_small",
                       choices=sorted(NETWORK_BUILDERS))
    sweep.add_argument(
        "--precisions", nargs="+",
        default=[s.key for s in PAPER_PRECISIONS],
        help="precision keys or spec strings (e.g. fixed8, fixed:4:8)",
    )
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = sequential)")
    sweep.add_argument("--n-train", type=int, default=1500)
    sweep.add_argument("--n-test", type=int, default=400)
    sweep.add_argument("--float-epochs", type=int, default=10)
    sweep.add_argument("--qat-epochs", type=int, default=4)
    sweep.add_argument("--batch-size", type=int, default=32)
    sweep.add_argument("--seed", type=int, default=0,
                       help="root seed (datasets, init, training)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
    sweep.add_argument("--refresh", action="store_true",
                       help="retrain every point, overwriting the cache")
    sweep.add_argument(
        "--cache-dir", default="",
        help=f"cache directory (default: {default_cache_dir()})",
    )
    sweep.add_argument("--clear-cache", action="store_true",
                       help="delete every cache entry before running")
    sweep.add_argument("--publish", default="", metavar="ROOT",
                       help="publish every converged point as a registry "
                            "artifact under this root")
    sweep.add_argument("--backend", default="",
                       help="compute backend for evaluation forwards; "
                            "exported via REPRO_BACKEND so sweep worker "
                            "processes inherit it")
    sweep.add_argument("--json", action="store_true",
                       help="emit results and cache stats as JSON")
    sweep.set_defaults(func=cmd_sweep)

    search = sub.add_parser(
        "search",
        help="automated mixed-precision & width search under an "
             "energy budget",
        description="Evolve per-layer precision assignments crossed "
                    "with width-scaled architectures, pruning each "
                    "generation with the Pareto frontier.  With "
                    "--registry, the surviving frontier is published "
                    "and promoted through a channel behind the Pareto "
                    "gate (the budget becomes the gate's absolute "
                    "energy cap).  Results are bitwise identical for "
                    "any --workers count; --resume replays finished "
                    "points from the sweep cache.",
    )
    search.add_argument("--task", default="lenet_small",
                        choices=sorted(NETWORK_BUILDERS),
                        help="base network whose width/precision is "
                             "searched")
    search.add_argument("--energy-budget", type=float, default=None,
                        metavar="UJ",
                        help="per-image energy cap in uJ (feasible "
                             "points drive the frontier and the "
                             "promotion gate)")
    search.add_argument("--generations", type=int, default=3,
                        help="evolutionary rounds after the seed "
                             "generation")
    search.add_argument("--population", type=int, default=6,
                        help="new candidates per generation")
    search.add_argument("--survivors", type=int, default=4,
                        help="frontier points kept as parents")
    search.add_argument("--widths", type=float, nargs="+",
                        default=[0.5, 0.75, 1.0, 1.25, 1.5],
                        help="width multipliers (1.0 required)")
    search.add_argument("--weight-bits", type=int, nargs="+",
                        default=[2, 4, 6, 8],
                        help="weight bit-width menu")
    search.add_argument("--input-bits", type=int, default=8)
    search.add_argument("--kind", default="fixed",
                        choices=["fixed", "pow2"],
                        help="representation family of generated specs")
    search.add_argument("--uniform-only", action="store_true",
                        help="disable per-layer assignments")
    search.add_argument("--workers", type=int, default=1,
                        help="worker processes per evaluation batch")
    search.add_argument("--n-train", type=int, default=1500)
    search.add_argument("--n-test", type=int, default=400)
    search.add_argument("--float-epochs", type=int, default=10)
    search.add_argument("--qat-epochs", type=int, default=4)
    search.add_argument("--seed", type=int, default=0,
                        help="root seed (sampling, datasets, training)")
    search.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    search.add_argument(
        "--cache-dir", default="",
        help=f"cache directory (default: {default_cache_dir()})",
    )
    search.add_argument("--resume", action="store_true",
                        help="resume an interrupted search from the "
                             "cache (verifies the space fingerprint)")
    search.add_argument("--sim-check", action="store_true",
                        help="cross-check frontier energies against "
                             "the cycle-level simulator")
    search.add_argument("--registry", default="", metavar="ROOT",
                        help="publish + promote the frontier into this "
                             "registry root")
    search.add_argument("--channel", default="",
                        help="channel name (default: search-<task>)")
    search.add_argument("--json", action="store_true",
                        help="emit the full result as JSON")
    search.set_defaults(func=cmd_search)

    reg = sub.add_parser(
        "registry",
        help="model-artifact registry: publish/list/promote/rollback/serve",
        description="Content-addressed model-artifact lifecycle: publish "
                    "trained weights, promote them through channels behind "
                    "the Pareto gate, serve a channel and roll it back.",
    )
    reg_sub = reg.add_subparsers(dest="registry_command", required=True)

    def _add_root(p: argparse.ArgumentParser) -> None:
        p.add_argument("--root", required=True, help="registry root directory")

    reg_publish = reg_sub.add_parser(
        "publish", help="train (or load) weights and publish an artifact"
    )
    _add_root(reg_publish)
    reg_publish.add_argument("--network", default="lenet_small",
                             choices=sorted(NETWORK_BUILDERS))
    reg_publish.add_argument("--precision", default="float32",
                             choices=[s.key for s in PAPER_PRECISIONS])
    reg_publish.add_argument("--weights", default="",
                             help="trained weights (.npz); trains quickly "
                                  "when omitted")
    reg_publish.add_argument("--epochs", type=int, default=6)
    reg_publish.add_argument("--n-train", type=int, default=1500)
    reg_publish.add_argument("--n-test", type=int, default=400)
    reg_publish.add_argument("--seed", type=int, default=0)
    reg_publish.set_defaults(func=cmd_registry_publish)

    reg_list = reg_sub.add_parser(
        "list", help="list stored artifacts and channel states"
    )
    _add_root(reg_list)
    reg_list.add_argument("--json", action="store_true",
                          help="emit manifests as JSON")
    reg_list.set_defaults(func=cmd_registry_list)

    reg_promote = reg_sub.add_parser(
        "promote", help="promote an artifact onto a channel (Pareto-gated)"
    )
    _add_root(reg_promote)
    reg_promote.add_argument("--channel", required=True)
    reg_promote.add_argument("ref", help="artifact digest (or unique prefix)")
    reg_promote.add_argument("--note", default="")
    reg_promote.add_argument("--min-accuracy", type=float, default=None)
    reg_promote.add_argument("--max-energy-uj", type=float, default=None)
    reg_promote.add_argument("--max-accuracy-drop", type=float, default=None)
    reg_promote.add_argument("--allow-dominated", action="store_true",
                             help="drop the Pareto non-domination rule")
    reg_promote.add_argument("--force", action="store_true",
                             help="skip the policy gate entirely")
    reg_promote.set_defaults(func=cmd_registry_promote)

    reg_rollback = reg_sub.add_parser(
        "rollback", help="move a channel's active pointer back"
    )
    _add_root(reg_rollback)
    reg_rollback.add_argument("--channel", required=True)
    reg_rollback.add_argument("--steps", type=int, default=1)
    reg_rollback.set_defaults(func=cmd_registry_rollback)

    reg_serve = reg_sub.add_parser(
        "serve", help="deploy a channel and run a short serving loop"
    )
    _add_root(reg_serve)
    reg_serve.add_argument("--channel", required=True)
    reg_serve.add_argument("--requests", type=int, default=64)
    reg_serve.add_argument("--concurrency", type=int, default=16)
    reg_serve.add_argument("--workers", type=int, default=2)
    reg_serve.add_argument("--seed", type=int, default=0)
    reg_serve.set_defaults(func=cmd_registry_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except RegistryError as exc:
        # typed registry failures (rejected promotions, unknown refs,
        # failed rollouts) are user errors, not tracebacks
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
