"""Command-line interface: ``python -m repro <command>``.

Commands:

``train``
    Train a registered network on a synthetic task (optionally with
    quantization-aware fine-tuning) and save the weights.
``evaluate``
    Load saved weights and report test accuracy at one or more
    precisions.
``hw-report``
    Print the synthesis-style accelerator report for a precision.
``energy``
    Per-image energy of a registered network across all precisions.
``export-rtl``
    Write the generated NFU Verilog for a precision.
``serve-bench``
    Closed-loop load test of the batched inference server: throughput,
    latency percentiles, batch-size histogram and modeled energy.
``profile``
    Per-layer profile of quantized inference: forward time, FLOPs,
    bytes moved through the accelerator buffers and weight
    quantization RMS error for one (network, precision) point.
``sweep``
    Train a precision sweep (float baseline + QAT fine-tune per
    point) with worker-process parallelism and the resumable on-disk
    result cache: ``repro sweep --workers 4`` regenerates a network's
    accuracy column and a re-run resumes from cache.

Everything the CLI does is also available programmatically; the CLI
exists so the common workflows are one command.
"""

from __future__ import annotations

import argparse
import dataclasses
import functools
import json
import sys
import time
from typing import List, Optional

import numpy as np

from repro import core, hw, nn, obs, serve
from repro.core.precision import PAPER_PRECISIONS
from repro.resilience import DegradePolicy, chaos_preset, use_injector
from repro.core.sweep import PrecisionSweep, SweepConfig
from repro.data import load_dataset
from repro.experiments.formatting import format_table
from repro.hw.nfu import NfuGeometry
from repro.parallel import SweepCache, default_cache_dir, run_sweep
from repro.zoo import NETWORK_BUILDERS, build_network, network_info


def _add_common_training_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--network", default="lenet_small",
                        choices=sorted(NETWORK_BUILDERS))
    parser.add_argument("--n-train", type=int, default=1500)
    parser.add_argument("--n-test", type=int, default=400)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--lr", type=float, default=0.02)
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)


def cmd_train(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    split = load_dataset(info.dataset, n_train=args.n_train,
                         n_test=args.n_test, seed=args.seed)
    network = build_network(args.network, seed=args.seed)
    trainer = nn.Trainer(
        network,
        nn.SGD(network.parameters(), lr=args.lr, momentum=0.9, weight_decay=1e-4),
        batch_size=args.batch_size,
        rng=np.random.default_rng(args.seed),
        restore_best=True,
    )
    trainer.fit(
        split.train.images, split.train.labels,
        split.val.images, split.val.labels,
        epochs=args.epochs, verbose=True,
    )
    accuracy = trainer.evaluate(split.test.images, split.test.labels)["accuracy"]
    print(f"float32 test accuracy: {100 * accuracy:.2f}%")

    if args.precision != "float32":
        spec = core.get_precision(args.precision)
        qnet = core.QuantizedNetwork(network, spec)
        qnet.calibrate(split.train.images[:256])
        qat = core.QATTrainer(
            qnet,
            nn.SGD(network.parameters(), lr=args.lr / 4, momentum=0.9),
            batch_size=args.batch_size,
            rng=np.random.default_rng(args.seed + 1),
            restore_best=True,
        )
        qat.fit(
            split.train.images, split.train.labels,
            split.val.images, split.val.labels,
            epochs=max(args.epochs // 2, 1), verbose=True,
        )
        accuracy = qnet.evaluate(split.test.images, split.test.labels)
        print(f"{spec.label} test accuracy: {100 * accuracy:.2f}%")

    if args.output:
        nn.save_network_weights(network, args.output)
        print(f"weights saved to {args.output}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    split = load_dataset(info.dataset, n_train=args.n_train,
                         n_test=args.n_test, seed=args.seed)
    network = build_network(args.network, seed=args.seed)
    nn.load_network_weights(network, args.weights)
    rows = []
    for key in args.precisions:
        spec = core.get_precision(key)
        if spec.is_float:
            logits = network.predict(split.test.images)
            accuracy = nn.accuracy(logits, split.test.labels)
        else:
            qnet = core.QuantizedNetwork(network, spec)
            qnet.calibrate(split.train.images[:256])
            accuracy = qnet.evaluate(split.test.images, split.test.labels)
        rows.append([spec.label, f"{100 * accuracy:.2f}"])
    print(format_table(["Precision (w,in)", "Acc %"], rows,
                       title=f"{args.network} on {info.dataset}"))
    return 0


def cmd_hw_report(args: argparse.Namespace) -> int:
    accelerator = hw.Accelerator.for_precision(args.precision)
    print(hw.synthesis_report(accelerator))
    return 0


def cmd_energy(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    network = build_network(args.network, seed=0)
    model = hw.EnergyModel()
    baseline = model.evaluate(network, info.input_shape, PAPER_PRECISIONS[0])
    rows = []
    for spec in PAPER_PRECISIONS:
        report = model.evaluate(network, info.input_shape, spec)
        rows.append([
            spec.label,
            f"{report.energy_uj:.2f}",
            f"{report.savings_vs(baseline):.2f}",
            f"{report.runtime_us:.1f}",
        ])
    print(format_table(
        ["Precision (w,in)", "Energy uJ", "Saving %", "Runtime us"],
        rows, title=f"Per-image inference energy: {args.network}",
    ))
    return 0


def cmd_export_rtl(args: argparse.Namespace) -> int:
    spec = core.get_precision(args.precision)
    geometry = NfuGeometry(neurons=args.neurons, synapses=args.synapses)
    source = hw.generate_nfu(spec, geometry)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(source)
        print(f"wrote {args.output} ({len(source.splitlines())} lines)")
    else:
        print(source)
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    split = load_dataset(info.dataset, n_train=64, n_test=128, seed=args.seed)
    images = split.test.images
    store = serve.ModelStore(
        weight_paths={args.network: args.weights} if args.weights else None,
        calibration_images=args.calibration,
        seed=args.seed,
    )
    servable = store.warm(args.network, args.precision)  # build outside timing
    spec = core.get_precision(args.precision)

    degrade = None
    if args.degrade:
        watermark = args.degrade_watermark or max(args.queue_size // 2, 1)
        degrade = DegradePolicy(
            watermark=watermark, fallback={args.precision: args.degrade}
        )
        store.warm(args.network, args.degrade)  # fallback ready before load

    if not args.json:
        print(
            f"serving {args.network} at {spec.label}: "
            f"{servable.memory_kb:.0f} KB footprint, "
            f"{servable.energy_uj_per_image:.3f} uJ/image modeled"
        )
        if degrade is not None:
            print(f"overload degradation    : -> {args.degrade} past queue "
                  f"depth {degrade.watermark}")
        if args.chaos is not None:
            print(f"chaos                   : fault injector armed, "
                  f"seed {args.chaos}")

    deadline_ms = args.deadline_ms if args.deadline_ms > 0 else None

    def run(max_batch: int) -> serve.LoadResult:
        server = serve.InferenceServer(
            store,
            workers=args.workers,
            max_batch_size=max_batch,
            max_delay_ms=args.max_delay_ms,
            max_queue_depth=args.queue_size,
            degrade=degrade,
        )
        with server:
            return serve.run_closed_loop(
                server,
                images,
                args.network,
                args.precision,
                n_requests=args.requests,
                concurrency=args.concurrency,
                deadline_ms=deadline_ms,
            )

    injector = chaos_preset(args.chaos) if args.chaos is not None else None
    if injector is not None:
        with use_injector(injector):
            result = run(args.max_batch)
    else:
        result = run(args.max_batch)
    baseline = None
    if not args.skip_baseline and args.max_batch > 1:
        baseline = run(1)

    # with chaos armed, typed failures are expected; what must never
    # happen is a submitted request whose future simply never resolves
    failed = result.lost > 0 or (
        args.chaos is None and result.client_errors > 0
    )

    if args.json:
        payload = {
            "network": args.network,
            "precision": spec.key,
            "requests": args.requests,
            "concurrency": args.concurrency,
            "workers": args.workers,
            "max_batch": args.max_batch,
            "deadline_ms": deadline_ms,
            "chaos_seed": args.chaos,
            "memory_kb": float(servable.memory_kb),
            "energy_uj_per_image": float(servable.energy_uj_per_image),
            "report": dataclasses.asdict(result.report),
            "retries": result.retries,
            "client_errors": result.client_errors,
            "deadline_expired": result.deadline_expired,
            "lost": result.lost,
            "accounted": result.accounted,
            "submitted": result.submitted,
        }
        if injector is not None:
            payload["injected_faults"] = injector.counts()
        if baseline is not None:
            payload["baseline_report"] = dataclasses.asdict(baseline.report)
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0

    print()
    print(f"closed loop: {args.requests} requests, {args.concurrency} clients, "
          f"{args.workers} workers, max batch {args.max_batch}")
    print(result.report.format())
    if result.retries:
        print(f"backpressure retries    : {result.retries}")
    if result.client_errors:
        print(f"client errors           : {result.client_errors}")
    if result.deadline_expired:
        print(f"deadline expired        : {result.deadline_expired}")
    if result.lost:
        print(f"LOST futures            : {result.lost}")
    if injector is not None:
        fired = ", ".join(
            f"{site}:{count}" for site, count in sorted(injector.counts().items())
        ) or "(none)"
        print(f"injected faults         : {fired}")
        print(f"accounted               : {result.accounted}/{result.submitted} "
              "(result | deadline | typed error)")

    if baseline is not None:
        speedup = (
            result.report.throughput_ips / baseline.report.throughput_ips
            if baseline.report.throughput_ips > 0 else float("inf")
        )
        print()
        print(f"batch=1 reference       : "
              f"{baseline.report.throughput_ips:.1f} img/s, "
              f"p95 {baseline.report.latency_ms_p95:.2f} ms")
        print(f"dynamic batching speedup: {speedup:.2f}x img/s vs max-batch=1")
    return 0 if result.client_errors == 0 else 1


def cmd_profile(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    spec = core.PrecisionSpec.parse(args.precision)
    limit = max(args.limit, 1)
    # the loader carves ~10% (>=1 per class) of the test pool into the
    # validation set, so over-request to keep `limit` test images
    split = load_dataset(info.dataset, n_train=max(limit, 64),
                         n_test=max(2 * limit, 40), seed=args.seed)
    images = split.test.images[:limit]

    network = build_network(args.network, seed=args.seed)
    if args.weights:
        nn.load_network_weights(network, args.weights)
    qnet = core.QuantizedNetwork(network, spec)
    qnet.calibrate(split.train.images[: args.calibration])
    # RMS error must be measured while full-precision weights are
    # resident, i.e. before the profiled (swapped) forward pass.
    quant_errors = qnet.weight_quantization_errors()

    profiler = obs.LayerProfiler(
        qnet.pipeline,
        weight_bits=spec.weight_bits,
        activation_bits=spec.input_bits,
        metrics=obs.get_metrics(),
    )
    with profiler:
        logits = qnet.predict(images)
    profiler.annotate(
        "quant_rms",
        {name.rsplit(".", 1)[0]: err for name, err in quant_errors.items()},
    )

    test_accuracy = nn.accuracy(logits, split.test.labels[:limit])
    if args.json:
        payload = {
            "network": args.network,
            "dataset": info.dataset,
            "precision": spec.key,
            "images": int(images.shape[0]),
            "accuracy": float(test_accuracy),
            "total_flops": profiler.total_flops(),
            "total_bytes": profiler.total_bytes(),
            "layers": [stats.as_dict() for stats in profiler.stats()],
            "metrics": obs.get_metrics().snapshot(),
        }
        print(json.dumps(payload, indent=2))
        return 0

    print(f"profile: {args.network} on {info.dataset} at {spec.label}, "
          f"{images.shape[0]} images "
          f"(accuracy {100 * test_accuracy:.2f}%)")
    print()
    print(profiler.table())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    info = network_info(args.network)
    split = load_dataset(info.dataset, n_train=args.n_train,
                         n_test=args.n_test, seed=args.seed)
    config = SweepConfig(
        float_epochs=args.float_epochs,
        qat_epochs=args.qat_epochs,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    sweep = PrecisionSweep(
        functools.partial(build_network, args.network, args.seed),
        split,
        config,
    )
    specs = [core.PrecisionSpec.parse(key) for key in args.precisions]
    if args.clear_cache:
        removed = SweepCache(args.cache_dir or None).clear()
        print(f"cleared {removed} cache entries", file=sys.stderr)
    store = None if args.no_cache else SweepCache(args.cache_dir or None)

    started = time.perf_counter()
    results = run_sweep(
        sweep,
        specs,
        workers=args.workers,
        cache=store,
        refresh=args.refresh,
        progress=not args.json,
    )
    elapsed = time.perf_counter() - started

    if args.json:
        payload = {
            "network": args.network,
            "dataset": info.dataset,
            "workers": args.workers,
            "elapsed_s": elapsed,
            "cache_dir": store.root if store is not None else None,
            "cache_hits": store.hits if store is not None else 0,
            "cache_misses": store.misses if store is not None else 0,
            "results": [
                {
                    "precision": result.spec.key,
                    "accuracy": float(result.accuracy),
                    "converged": bool(result.converged),
                }
                for result in results
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0

    rows = [
        [
            result.spec.label,
            f"{result.accuracy_percent:.2f}" if result.converged else "NA",
            "yes" if result.converged else "no",
        ]
        for result in results
    ]
    print(format_table(
        ["Precision (w,in)", "Acc %", "Converged"],
        rows,
        title=f"{args.network} on {info.dataset} "
              f"({args.workers} workers, {elapsed:.1f} s)",
    ))
    if store is not None:
        print(
            f"cache: {store.hits} hits / {store.misses} misses "
            f"({store.root})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Precision-quantization study toolkit (Hashemi et al., DATE 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train a network, optionally QAT")
    _add_common_training_args(train)
    train.add_argument("--precision", default="float32",
                       choices=[s.key for s in PAPER_PRECISIONS])
    train.add_argument("--output", default="", help="save weights (.npz)")
    train.set_defaults(func=cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate saved weights")
    _add_common_training_args(evaluate)
    evaluate.add_argument("--weights", required=True)
    evaluate.add_argument(
        "--precisions", nargs="+", default=["float32", "fixed8"],
        choices=[s.key for s in PAPER_PRECISIONS],
    )
    evaluate.set_defaults(func=cmd_evaluate)

    report = sub.add_parser("hw-report", help="accelerator synthesis report")
    report.add_argument("--precision", default="fixed16",
                        choices=[s.key for s in PAPER_PRECISIONS])
    report.set_defaults(func=cmd_hw_report)

    energy = sub.add_parser("energy", help="per-image energy per precision")
    energy.add_argument("--network", default="lenet",
                        choices=sorted(NETWORK_BUILDERS))
    energy.set_defaults(func=cmd_energy)

    rtl = sub.add_parser("export-rtl", help="generate NFU Verilog")
    rtl.add_argument("--precision", default="fixed16",
                     choices=[s.key for s in PAPER_PRECISIONS if not s.is_float])
    rtl.add_argument("--neurons", type=int, default=16)
    rtl.add_argument("--synapses", type=int, default=16)
    rtl.add_argument("--output", default="")
    rtl.set_defaults(func=cmd_export_rtl)

    bench = sub.add_parser(
        "serve-bench", help="load-test the batched inference server"
    )
    bench.add_argument("--network", default="lenet_small",
                       choices=sorted(NETWORK_BUILDERS))
    bench.add_argument("--precision", default="fixed8",
                       choices=[s.key for s in PAPER_PRECISIONS])
    bench.add_argument("--requests", type=int, default=256)
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--max-batch", type=int, default=32)
    bench.add_argument("--max-delay-ms", type=float, default=2.0)
    bench.add_argument("--queue-size", type=int, default=512)
    bench.add_argument("--concurrency", type=int, default=64,
                       help="closed-loop clients kept in flight")
    bench.add_argument("--calibration", type=int, default=128,
                       help="images used to calibrate activation ranges")
    bench.add_argument("--weights", default="",
                       help="optional trained weights (.npz) to serve")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--deadline-ms", type=float, default=0.0,
                       help="per-request queueing deadline (0 = none)")
    bench.add_argument("--chaos", type=int, default=None, metavar="SEED",
                       help="arm the seeded fault injector for the run")
    bench.add_argument("--degrade", default="",
                       choices=[""] + [s.key for s in PAPER_PRECISIONS],
                       help="reroute to this precision when overloaded")
    bench.add_argument("--degrade-watermark", type=int, default=0,
                       help="queue depth that triggers degradation "
                            "(default: queue-size // 2)")
    bench.add_argument("--skip-baseline", action="store_true",
                       help="skip the max-batch=1 comparison run")
    bench.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of text")
    bench.set_defaults(func=cmd_serve_bench)

    profile = sub.add_parser(
        "profile",
        help="per-layer time/FLOPs/bytes/quant-error profile",
    )
    profile.add_argument("--network", default="lenet_small",
                         choices=sorted(NETWORK_BUILDERS))
    profile.add_argument(
        "--precision", default="fixed8",
        help="precision key or spec string (e.g. fixed8, fixed:4:8)",
    )
    profile.add_argument("--limit", type=int, default=256,
                         help="number of test images to run")
    profile.add_argument("--calibration", type=int, default=64,
                         help="images used to calibrate activation ranges")
    profile.add_argument("--weights", default="",
                         help="optional trained weights (.npz) to profile")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--json", action="store_true",
                         help="emit per-layer rows and metrics as JSON")
    profile.set_defaults(func=cmd_profile)

    sweep = sub.add_parser(
        "sweep",
        help="parallel, cache-resumable precision sweep",
        description="Train a precision sweep with worker-process "
                    "parallelism and the resumable on-disk result cache. "
                    "Results are bitwise identical for any worker count "
                    "with the same seed.",
    )
    sweep.add_argument("--network", default="lenet_small",
                       choices=sorted(NETWORK_BUILDERS))
    sweep.add_argument(
        "--precisions", nargs="+",
        default=[s.key for s in PAPER_PRECISIONS],
        help="precision keys or spec strings (e.g. fixed8, fixed:4:8)",
    )
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = sequential)")
    sweep.add_argument("--n-train", type=int, default=1500)
    sweep.add_argument("--n-test", type=int, default=400)
    sweep.add_argument("--float-epochs", type=int, default=10)
    sweep.add_argument("--qat-epochs", type=int, default=4)
    sweep.add_argument("--batch-size", type=int, default=32)
    sweep.add_argument("--seed", type=int, default=0,
                       help="root seed (datasets, init, training)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
    sweep.add_argument("--refresh", action="store_true",
                       help="retrain every point, overwriting the cache")
    sweep.add_argument(
        "--cache-dir", default="",
        help=f"cache directory (default: {default_cache_dir()})",
    )
    sweep.add_argument("--clear-cache", action="store_true",
                       help="delete every cache entry before running")
    sweep.add_argument("--json", action="store_true",
                       help="emit results and cache stats as JSON")
    sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
