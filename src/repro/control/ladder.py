"""Ordered precision tiers the autotuner moves across.

The paper's Figure 4 frontier is a set of (accuracy, energy) points;
at serving time those points become *tiers*: interchangeable servables
of the same network ordered from highest fidelity (tier 0, most energy)
to lowest.  The :class:`TierLadder` is that ordering plus whatever
accuracy/energy metadata is known, so the controller can (a) reroute
traffic one tier down when the SLO demands it, (b) refuse tiers below
the policy's accuracy floor, and (c) report a bound on the accuracy
the overload cost.

Ladders come from three places: an explicit precision list
(:meth:`TierLadder.from_precisions`), the registry's published
artifacts for a network (:meth:`TierLadder.from_registry` — manifests
carry measured accuracy and modeled energy), or the paper's fixed-point
menu below a starting precision (:func:`default_tier_keys`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.precision import PAPER_PRECISIONS, PrecisionSpec
from repro.errors import ConfigurationError

__all__ = ["PrecisionTier", "TierLadder", "default_tier_keys"]


@dataclass(frozen=True)
class PrecisionTier:
    """One rung: a servable precision plus optional measured metadata."""

    precision: str
    energy_uj: Optional[float] = None   # modeled energy per image
    accuracy: Optional[float] = None    # measured test accuracy in [0, 1]

    def __post_init__(self) -> None:
        if not self.precision:
            raise ConfigurationError("tier precision must be non-empty")
        if self.accuracy is not None and not (0.0 <= self.accuracy <= 1.0):
            raise ConfigurationError("tier accuracy must be in [0, 1]")


class TierLadder:
    """Tiers ordered highest fidelity first (tier 0 is nominal)."""

    def __init__(self, tiers: Sequence[PrecisionTier]):
        tiers = list(tiers)
        if not tiers:
            raise ConfigurationError("ladder needs at least one tier")
        seen = set()
        for tier in tiers:
            if tier.precision in seen:
                raise ConfigurationError(
                    f"duplicate tier precision {tier.precision!r}"
                )
            seen.add(tier.precision)
        self.tiers: List[PrecisionTier] = tiers

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tiers)

    def __getitem__(self, index: int) -> PrecisionTier:
        return self.tiers[index]

    @property
    def precisions(self) -> List[str]:
        return [tier.precision for tier in self.tiers]

    def index_of(self, precision: str) -> Optional[int]:
        for index, tier in enumerate(self.tiers):
            if tier.precision == precision:
                return index
        return None

    # ------------------------------------------------------------------
    def floor_index(self, accuracy_floor: Optional[float]) -> int:
        """Deepest tier index the accuracy floor permits.

        Tiers with *unknown* accuracy are permitted (there is nothing
        to compare against); callers that need a hard guarantee should
        build the ladder from registry manifests, which always carry
        measured accuracy.
        """
        deepest = 0
        for index, tier in enumerate(self.tiers):
            if (
                accuracy_floor is not None
                and tier.accuracy is not None
                and tier.accuracy < accuracy_floor
            ):
                break
            deepest = index
        return deepest

    def accuracy_drop(self, index: int) -> Optional[float]:
        """Known accuracy lost at ``tiers[index]`` vs tier 0 (else None)."""
        top, tier = self.tiers[0], self.tiers[index]
        if top.accuracy is None or tier.accuracy is None:
            return None
        return max(top.accuracy - tier.accuracy, 0.0)

    def priced(self, store, network: str) -> "TierLadder":
        """Fill missing tier energies from a serve ``ModelStore``.

        Warms every tier's servable (so the fallback is resident before
        overload hits, exactly like the old degrade path did) and reads
        its modeled per-image energy.
        """
        tiers = []
        for tier in self.tiers:
            servable = store.warm(network, tier.precision)
            tiers.append(PrecisionTier(
                precision=tier.precision,
                energy_uj=(
                    tier.energy_uj if tier.energy_uj is not None
                    else float(servable.energy_uj_per_image)
                ),
                accuracy=tier.accuracy,
            ))
        return TierLadder(tiers)

    # ------------------------------------------------------------------
    @classmethod
    def from_precisions(
        cls, precisions: Sequence[str],
        accuracies: Optional[Sequence[Optional[float]]] = None,
    ) -> "TierLadder":
        """Ladder from an ordered precision list (highest fidelity first)."""
        if accuracies is None:
            accuracies = [None] * len(precisions)
        if len(accuracies) != len(precisions):
            raise ConfigurationError(
                f"{len(precisions)} precisions but {len(accuracies)} accuracies"
            )
        return cls([
            PrecisionTier(precision=key, accuracy=accuracy)
            for key, accuracy in zip(precisions, accuracies)
        ])

    @classmethod
    def from_registry(cls, art_store, network: str) -> "TierLadder":
        """Discover a network's tiers from published registry artifacts.

        Every manifest for ``network`` becomes a candidate tier carrying
        its measured accuracy and modeled energy; one tier is kept per
        precision (the most accurate artifact wins) and tiers are
        ordered by descending modeled energy — the registry-backed
        realization of the paper's frontier as a runtime ladder.
        """
        best = {}
        for manifest in art_store.list_artifacts():
            if manifest.network != network:
                continue
            kept = best.get(manifest.precision)
            if kept is None or manifest.accuracy > kept.accuracy:
                best[manifest.precision] = manifest
        if not best:
            raise ConfigurationError(
                f"registry has no artifacts for network {network!r}"
            )
        manifests = sorted(
            best.values(), key=lambda m: -m.energy_uj_per_image
        )
        return cls([
            PrecisionTier(
                precision=m.precision,
                energy_uj=float(m.energy_uj_per_image),
                accuracy=float(m.accuracy),
            )
            for m in manifests
        ])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TierLadder({' > '.join(self.precisions)})"


def default_tier_keys(precision: str) -> List[str]:
    """The paper's fixed-point menu at or below ``precision``.

    ``fixed8`` maps to ``["fixed8", "fixed4"]`` — every fixed-point
    Table-III precision with the same or fewer weight bits, ordered
    highest first.  Non-fixed starting precisions (float32, pow2,
    binary) get the full fixed ladder below their weight width, with
    the starting precision as tier 0.
    """
    spec = PrecisionSpec.parse(precision)
    lower = [
        s.key for s in PAPER_PRECISIONS
        if s.key.startswith("fixed")
        and s.weight_bits <= spec.weight_bits
        and s.key != spec.key
        and s.weight_bits >= 4  # fixed2 does not exist; floor is fixed4
    ]
    lower.sort(key=lambda key: -PrecisionSpec.parse(key).weight_bits)
    return [spec.key] + lower
