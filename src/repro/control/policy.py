"""Service-level objectives the autotuner is asked to hold.

An :class:`SLOPolicy` is the operator's contract: a p99 latency target,
an optional modeled energy budget per request, and an optional accuracy
floor the precision knob may never cross.  The policy also carries the
controller's *dynamics* parameters — hysteresis band, streak lengths
and cooldown — because how aggressively an SLO is enforced is part of
the objective, not an implementation detail: a policy with
``breach_windows=1`` trades stability for reaction time, and a wide
``recover_ratio`` band keeps the controller from oscillating around
the target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["SLOPolicy"]


@dataclass(frozen=True)
class SLOPolicy:
    """Targets and dynamics for one closed control loop.

    Args:
        latency_slo_ms: the p99 enqueue-to-completion latency target.
            A window *breaches* when its p99 exceeds this.
        energy_budget_uj: optional modeled energy budget per request;
            when a window's mean energy/request exceeds it the tuner
            moves one precision tier down even without a latency breach.
        accuracy_floor: optional accuracy floor in [0, 1]; tiers whose
            known accuracy is below it are never selected.  Tiers with
            unknown accuracy are permitted (the ladder then cannot
            bound the loss — see ``TierLadder.floor_index``).
        recover_ratio: a window is *healthy* only when p99 is below
            ``recover_ratio * latency_slo_ms``.  The gap between the
            SLO and this lower threshold is the hysteresis band: inside
            it the controller holds its knobs.
        breach_windows: consecutive breached windows before escalating.
        recover_windows: consecutive healthy windows before relaxing.
        cooldown_windows: windows to hold after any actuation, so one
            knob change is observed before the next is considered.
    """

    latency_slo_ms: float
    energy_budget_uj: Optional[float] = None
    accuracy_floor: Optional[float] = None
    recover_ratio: float = 0.7
    breach_windows: int = 2
    recover_windows: int = 3
    cooldown_windows: int = 2

    def __post_init__(self) -> None:
        if not self.latency_slo_ms > 0 or math.isnan(self.latency_slo_ms):
            raise ConfigurationError("latency_slo_ms must be > 0")
        if self.energy_budget_uj is not None and not self.energy_budget_uj > 0:
            raise ConfigurationError("energy_budget_uj must be > 0")
        if self.accuracy_floor is not None and not (
            0.0 <= self.accuracy_floor <= 1.0
        ):
            raise ConfigurationError("accuracy_floor must be in [0, 1]")
        if not 0.0 < self.recover_ratio < 1.0:
            raise ConfigurationError("recover_ratio must be in (0, 1)")
        for name in ("breach_windows", "recover_windows", "cooldown_windows"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")

    # ------------------------------------------------------------------
    def breached(self, p99_ms: float) -> bool:
        """True when a window's p99 violates the latency SLO."""
        return p99_ms > self.latency_slo_ms

    def healthy(self, p99_ms: float) -> bool:
        """True when p99 is safely below the SLO (hysteresis band)."""
        return p99_ms <= self.recover_ratio * self.latency_slo_ms

    def over_energy(self, energy_uj_per_request: float) -> bool:
        """True when the window's energy/request exceeds the budget."""
        return (
            self.energy_budget_uj is not None
            and energy_uj_per_request > self.energy_budget_uj
        )
