"""Scenario-driven load: shaped traffic, A/B arms, and verdicts.

A *scenario* is a named sequence of phases, each holding a closed-loop
concurrency level for a duration — a diurnal ramp, a flash crowd, a
sustained overload, a fault storm.  :class:`ScenarioRunner` drives one
scenario twice against fresh servers: an **autotuned** arm with the
full control loop installed and a **static** arm with the same sensor
pipeline but no actuation.  :func:`verdict` then answers the question
the paper's trade-off poses at serving time: did spending accuracy
(precision tiers) and admission buy the latency SLO, how much energy
did it save, and how much accuracy could it have cost at worst?

Phases run through :func:`repro.serve.loadgen.run_closed_loop` in
time-bounded mode, so a scenario's wall clock is its scripted length
regardless of how fast (or slow) the server is — and the whole script
scales with one ``time_scale`` factor for CI-sized runs.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.control.ladder import TierLadder
from repro.control.loop import ControlLoop
from repro.control.policy import SLOPolicy
from repro.control.tuner import AutoTuner, KnobConfig
from repro.errors import ConfigurationError
from repro.resilience.faults import chaos_preset, use_injector
from repro.serve.loadgen import LoadResult, run_closed_loop
from repro.serve.stats import StatsReport

__all__ = [
    "Phase",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "calibrate_slo",
    "PhaseResult",
    "ScenarioRun",
    "ScenarioVerdict",
    "ScenarioRunner",
    "verdict",
]

# Phases cannot shrink below this when time-scaled — a window or two of
# traffic must still fit inside every phase.
_MIN_PHASE_S = 0.2


@dataclass(frozen=True)
class Phase:
    """One leg of a scenario: hold ``concurrency`` clients for a span."""

    name: str
    duration_s: float
    concurrency: int
    chaos_seed: Optional[int] = None   # arm chaos_preset(seed) for this leg

    def __post_init__(self) -> None:
        if not self.duration_s > 0:
            raise ConfigurationError("phase duration_s must be > 0")
        if self.concurrency < 1:
            raise ConfigurationError("phase concurrency must be >= 1")


@dataclass(frozen=True)
class Scenario:
    """A named, ordered traffic shape."""

    name: str
    description: str
    phases: Tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("scenario needs at least one phase")

    @property
    def total_duration_s(self) -> float:
        return sum(phase.duration_s for phase in self.phases)

    def scaled(self, time_scale: float) -> "Scenario":
        """Same shape, durations multiplied (floored at 0.2 s/phase)."""
        if not time_scale > 0:
            raise ConfigurationError("time_scale must be > 0")
        return replace(self, phases=tuple(
            replace(
                phase,
                duration_s=max(phase.duration_s * time_scale, _MIN_PHASE_S),
            )
            for phase in self.phases
        ))


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="flash_crowd",
            description=(
                "steady trickle, a sudden 8x crowd, then back to the trickle"
            ),
            phases=(
                Phase("warm", duration_s=1.0, concurrency=2),
                Phase("crowd", duration_s=3.0, concurrency=16),
                Phase("cooldown", duration_s=2.0, concurrency=2),
            ),
        ),
        Scenario(
            name="diurnal",
            description="a day compressed: ramp up to a peak and back down",
            phases=(
                Phase("night", duration_s=1.0, concurrency=1),
                Phase("morning", duration_s=1.5, concurrency=4),
                Phase("peak", duration_s=2.0, concurrency=10),
                Phase("evening", duration_s=1.5, concurrency=4),
                Phase("late", duration_s=1.0, concurrency=1),
            ),
        ),
        Scenario(
            name="sustained_overload",
            description="offered load pinned well past capacity, no relief",
            phases=(
                Phase("warm", duration_s=1.0, concurrency=2),
                Phase("overload", duration_s=4.0, concurrency=12),
            ),
        ),
        Scenario(
            name="chaos",
            description=(
                "a crowd with the chaos preset armed mid-scenario — the "
                "controller must hold the SLO while faults fire"
            ),
            phases=(
                Phase("warm", duration_s=1.0, concurrency=2),
                Phase("storm", duration_s=3.0, concurrency=8, chaos_seed=0),
                Phase("cooldown", duration_s=1.0, concurrency=2),
            ),
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from "
            f"{', '.join(sorted(SCENARIOS))}"
        ) from None


def calibrate_slo(
    server,
    images: np.ndarray,
    network: str,
    precision: str,
    n_requests: int = 32,
    concurrency: int = 4,
    factor: float = 3.0,
    floor_ms: float = 5.0,
) -> float:
    """Derive a latency SLO from an uncontended probe run.

    Drives a short closed-loop probe at low concurrency against a
    *started* server and returns ``factor`` times the probe's client
    p99 (floored at ``floor_ms``) — "hold p99 within 3x of relaxed" is
    a portable objective where an absolute millisecond target is not.
    The probe's requests land in the server's stats, so calibrate on a
    throwaway server, not the one a scenario will measure.
    """
    probe = run_closed_loop(
        server, images, network, precision,
        n_requests=n_requests, concurrency=concurrency,
    )
    if not probe.latencies_ms:
        raise ConfigurationError("calibration probe completed no requests")
    p99 = float(np.percentile(np.asarray(probe.latencies_ms), 99))
    return max(p99 * factor, floor_ms)


@dataclass(frozen=True)
class PhaseResult:
    """One phase's load outcome (client-side view)."""

    phase: Phase
    result: LoadResult

    def p99_ms(self) -> float:
        if not self.result.latencies_ms:
            return 0.0
        return float(np.percentile(np.asarray(self.result.latencies_ms), 99))


class ScenarioRun:
    """One arm's full outcome: per-phase loads plus the control history."""

    def __init__(
        self,
        scenario: Scenario,
        autotuned: bool,
        phases: List[PhaseResult],
        report: StatsReport,
        loop: ControlLoop,
        tuner: Optional[AutoTuner],
    ):
        self.scenario = scenario
        self.autotuned = autotuned
        self.phases = phases
        self.report = report
        self.loop = loop
        self.tuner = tuner

    # ------------------------------------------------------------------
    @property
    def latencies_ms(self) -> List[float]:
        samples: List[float] = []
        for phase in self.phases:
            samples.extend(phase.result.latencies_ms)
        return samples

    @property
    def p99_ms(self) -> float:
        samples = self.latencies_ms
        if not samples:
            return 0.0
        return float(np.percentile(np.asarray(samples), 99))

    @property
    def attainment(self) -> float:
        return self.loop.attainment()

    @property
    def energy_uj_per_request(self) -> float:
        return self.report.energy_uj_per_image

    @property
    def lost(self) -> int:
        return sum(phase.result.lost for phase in self.phases)

    def accuracy_loss_bound(self) -> Optional[float]:
        if self.tuner is None:
            return 0.0   # the static arm never leaves tier 0
        return self.tuner.accuracy_loss_bound()


@dataclass(frozen=True)
class ScenarioVerdict:
    """The A/B judgment a scenario run is gated on."""

    scenario: str
    slo_ms: float
    attainment_target: float
    attainment: float              # autotuned arm, SLO-met window fraction
    baseline_attainment: float     # static arm, same sensors, no actuation
    windows: int
    p99_ms: float                  # autotuned client-side p99
    baseline_p99_ms: float
    energy_uj_per_request: float
    baseline_energy_uj_per_request: float
    energy_saved_pct: float        # vs the static tier-0 baseline
    accuracy_loss_bound: Optional[float]   # worst-case, from tiers visited
    accuracy_floor: Optional[float]
    lost: int
    passed: bool

    def format(self) -> str:
        bound = (
            "unknown" if self.accuracy_loss_bound is None
            else f"{self.accuracy_loss_bound * 100:.2f} pp"
        )
        return "\n".join([
            f"scenario               : {self.scenario}"
            f"  ({'PASS' if self.passed else 'FAIL'})",
            f"latency SLO            : p99 <= {self.slo_ms:.2f} ms",
            f"SLO attainment         : {self.attainment * 100:.1f}% of windows"
            f"  (target {self.attainment_target * 100:.0f}%,"
            f" static baseline {self.baseline_attainment * 100:.1f}%)",
            f"client p99             : {self.p99_ms:.2f} ms"
            f"  (static {self.baseline_p99_ms:.2f} ms)",
            f"energy / request       : {self.energy_uj_per_request:.3f} uJ"
            f"  (static {self.baseline_energy_uj_per_request:.3f} uJ,"
            f" saved {self.energy_saved_pct:.1f}%)",
            f"accuracy loss bound    : {bound}"
            + (f"  (floor {self.accuracy_floor:.3f})"
               if self.accuracy_floor is not None else ""),
            f"lost requests          : {self.lost}",
        ])


def verdict(
    autotuned: ScenarioRun,
    static: ScenarioRun,
    slo_ms: float,
    attainment_target: float = 0.9,
) -> ScenarioVerdict:
    """Judge an autotuned run against its static twin.

    Passing means: the autotuned arm met the SLO in at least
    ``attainment_target`` of its traffic-bearing windows, no request
    was lost, and any accuracy the tiers could have cost stays within
    the policy's floor.  Energy saved versus the static tier-0 arm is
    reported, not gated — a scenario mild enough that the tuner never
    degrades saves nothing, and that is the correct outcome.
    """
    base_energy = static.energy_uj_per_request
    saved_pct = (
        (base_energy - autotuned.energy_uj_per_request) / base_energy * 100.0
        if base_energy > 0 else 0.0
    )
    policy = autotuned.loop.policy
    bound = autotuned.accuracy_loss_bound()
    accuracy_ok = True
    if (
        bound is not None
        and policy.accuracy_floor is not None
        and autotuned.tuner is not None
    ):
        top = autotuned.tuner.ladder[0].accuracy
        if top is not None:
            accuracy_ok = top - bound >= policy.accuracy_floor - 1e-9
    passed = (
        autotuned.attainment >= attainment_target
        and autotuned.lost == 0
        and accuracy_ok
    )
    return ScenarioVerdict(
        scenario=autotuned.scenario.name,
        slo_ms=slo_ms,
        attainment_target=attainment_target,
        attainment=autotuned.attainment,
        baseline_attainment=static.attainment,
        windows=len(autotuned.loop.history),
        p99_ms=autotuned.p99_ms,
        baseline_p99_ms=static.p99_ms,
        energy_uj_per_request=autotuned.energy_uj_per_request,
        baseline_energy_uj_per_request=base_energy,
        energy_saved_pct=saved_pct,
        accuracy_loss_bound=bound,
        accuracy_floor=policy.accuracy_floor,
        lost=autotuned.lost,
        passed=passed,
    )


class ScenarioRunner:
    """Drives scenarios against fresh servers, one per arm.

    Args:
        server_factory: zero-argument callable returning an *unstarted*
            server (:class:`~repro.serve.InferenceServer` or
            :class:`~repro.serve.FleetServer`); a new one is built per
            arm so no queue state or stats leak between runs.
        images: NCHW request pool (cycled).
        network / precision: the nominal (tier-0) model clients ask for.
        policy / ladder / knobs: the controller configuration for the
            autotuned arm; the static arm reuses ``policy`` for
            attainment judging only.
        interval_s: control window length.
        request_timeout_s: per-request client wait budget.
    """

    def __init__(
        self,
        server_factory: Callable[[], object],
        images: np.ndarray,
        network: str,
        precision: str,
        policy: SLOPolicy,
        ladder: TierLadder,
        knobs: Optional[KnobConfig] = None,
        interval_s: float = 0.05,
        request_timeout_s: float = 60.0,
        max_requests_per_phase: int = 1_000_000,
    ):
        self.server_factory = server_factory
        self.images = images
        self.network = network
        self.precision = precision
        self.policy = policy
        self.ladder = ladder
        self.knobs = knobs
        self.interval_s = interval_s
        self.request_timeout_s = request_timeout_s
        self.max_requests_per_phase = max_requests_per_phase

    def run(self, scenario: Scenario, autotune: bool = True) -> ScenarioRun:
        """Run one arm of ``scenario``; autotuned or static-observed."""
        server = self.server_factory()
        tuner = (
            AutoTuner(self.policy, self.ladder, knobs=self.knobs)
            if autotune else None
        )
        loop = ControlLoop(
            server, self.policy, tuner=tuner, interval_s=self.interval_s
        )
        loop.install()
        server.start()
        phases: List[PhaseResult] = []
        try:
            loop.start()
            for phase in scenario.phases:
                chaos = (
                    use_injector(chaos_preset(phase.chaos_seed))
                    if phase.chaos_seed is not None else nullcontext()
                )
                with chaos:
                    result = run_closed_loop(
                        server, self.images, self.network, self.precision,
                        n_requests=self.max_requests_per_phase,
                        concurrency=phase.concurrency,
                        request_timeout_s=self.request_timeout_s,
                        duration_s=phase.duration_s,
                    )
                phases.append(PhaseResult(phase=phase, result=result))
        finally:
            loop.stop()
            server.stop()
        return ScenarioRun(
            scenario=scenario,
            autotuned=autotune,
            phases=phases,
            report=server.report(),
            loop=loop,
            tuner=tuner,
        )

    def judge(
        self, scenario: Scenario, slo_ms: float,
        attainment_target: float = 0.9,
    ) -> Tuple[ScenarioVerdict, ScenarioRun, ScenarioRun]:
        """Run both arms and return (verdict, autotuned, static)."""
        autotuned = self.run(scenario, autotune=True)
        static = self.run(scenario, autotune=False)
        return (
            verdict(autotuned, static, slo_ms, attainment_target),
            autotuned,
            static,
        )
