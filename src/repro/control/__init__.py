"""Closed-loop serving control: hold an SLO by trading precision for latency.

The paper quantifies what lowering numeric precision buys (energy) and
costs (accuracy) per network.  ``repro.control`` turns that static
trade-off into a runtime feedback loop: a sensor layer samples the
serving stats into windowed :class:`Signal` s, an :class:`AutoTuner`
judges each window against an :class:`SLOPolicy` and moves one of three
knobs — precision tier (a :class:`TierLadder` over registry servables),
batcher shape, or admission rate (:class:`TokenBucket`) — with
hysteresis and cooldown so it converges instead of oscillating, and a
:class:`ControlLoop` runs that cycle beside a live server.  Scenario
scripts (:data:`SCENARIOS`) drive shaped load through both an autotuned
and a static arm and produce a :class:`ScenarioVerdict`: SLO attainment,
energy saved versus static tier-0 serving, and a bound on the accuracy
the overload could have cost.

Entry points: ``repro serve-bench --autotune --scenario flash_crowd``
on the CLI, or :class:`ScenarioRunner` / :class:`ControlLoop` in code.
"""

from repro.control.admission import TokenBucket
from repro.control.ladder import PrecisionTier, TierLadder, default_tier_keys
from repro.control.loop import ControlLoop, WindowRecord
from repro.control.policy import SLOPolicy
from repro.control.scenarios import (
    SCENARIOS,
    Phase,
    PhaseResult,
    Scenario,
    ScenarioRun,
    ScenarioRunner,
    ScenarioVerdict,
    calibrate_slo,
    get_scenario,
    verdict,
)
from repro.control.signals import SensorHub, Signal
from repro.control.tuner import Action, AutoTuner, KnobConfig

__all__ = [
    "Action",
    "AutoTuner",
    "ControlLoop",
    "KnobConfig",
    "Phase",
    "PhaseResult",
    "PrecisionTier",
    "SCENARIOS",
    "SLOPolicy",
    "Scenario",
    "ScenarioRun",
    "ScenarioRunner",
    "ScenarioVerdict",
    "SensorHub",
    "Signal",
    "TierLadder",
    "TokenBucket",
    "WindowRecord",
    "calibrate_slo",
    "default_tier_keys",
    "get_scenario",
    "verdict",
]
