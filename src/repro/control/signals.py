"""Sensor layer: windowed signals sampled from the serving stats.

The controller never reads raw request streams; it sees one
:class:`Signal` per control window — the p99 of the latencies completed
in that window, the queue depth right now, the modeled energy per
request served in the window, and the error/throttle counters' deltas.
:class:`SensorHub` produces those windows incrementally from a live
:class:`~repro.serve.ServerStats`: counters are diffed against the
previous sample and latency percentiles are computed over only the
samples that arrived since, so a tick costs O(window), not O(run).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.serve.stats import ServerStats

__all__ = ["Signal", "SensorHub"]


@dataclass(frozen=True)
class Signal:
    """One control window's view of the server."""

    window: int                  # 0-based window index
    at: float                    # monotonic time the window closed
    elapsed_s: float             # window span
    completed: int               # requests completed in the window
    failed: int
    rejected: int
    throttled: int               # rejections due to the admission gate
    deadline_expired: int
    degraded: int                # admissions rerouted below tier 0
    queue_depth: int             # instantaneous depth at the sample
    p50_ms: float                # percentiles over the window's latencies
    p99_ms: float
    mean_ms: float
    energy_uj_per_request: float  # modeled, window mean
    throughput_ips: float         # completed / elapsed

    @property
    def has_traffic(self) -> bool:
        return self.completed > 0

    @property
    def error_rate(self) -> float:
        outcomes = self.completed + self.failed + self.deadline_expired
        if outcomes == 0:
            return 0.0
        return (self.failed + self.deadline_expired) / outcomes


class SensorHub:
    """Incremental window sampler over one server's stats.

    Args:
        stats: the engine's (or fleet front-end's) stats accumulator.
        depth_fn: callable returning the current total queue depth.
        clock: monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        stats: ServerStats,
        depth_fn: Callable[[], int],
        clock: Callable[[], float] = time.monotonic,
    ):
        self.stats = stats
        self._depth_fn = depth_fn
        self._clock = clock
        self._window = 0
        self._cursor = 0                       # index into stats latencies
        self._last_at = clock()
        self._last_counters: Dict[str, float] = stats.counters()

    def sample(self) -> Signal:
        """Close the current window and return its signal."""
        now = self._clock()
        counters = self.stats.counters()
        latencies, self._cursor = self.stats.latencies_since(self._cursor)
        window = np.asarray(latencies, dtype=np.float64)

        def delta(name: str) -> int:
            return int(counters[name] - self._last_counters[name])

        completed = delta("completed")
        energy_delta = counters["energy_uj"] - self._last_counters["energy_uj"]
        elapsed = max(now - self._last_at, 1e-9)
        signal = Signal(
            window=self._window,
            at=now,
            elapsed_s=elapsed,
            completed=completed,
            failed=delta("failed"),
            rejected=delta("rejected"),
            throttled=delta("throttled"),
            deadline_expired=delta("deadline_expired"),
            degraded=delta("degraded"),
            queue_depth=int(self._depth_fn()),
            p50_ms=float(np.percentile(window, 50)) if window.size else 0.0,
            p99_ms=float(np.percentile(window, 99)) if window.size else 0.0,
            mean_ms=float(window.mean()) if window.size else 0.0,
            energy_uj_per_request=(
                energy_delta / completed if completed else 0.0
            ),
            throughput_ips=completed / elapsed,
        )
        self._window += 1
        self._last_at = now
        self._last_counters = counters
        return signal
