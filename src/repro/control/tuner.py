"""The feedback controller: one knob move per window, with hysteresis.

:class:`AutoTuner` closes the loop between the sensor layer and three
actuators — precision tier, batcher shape, and admission rate.  Its
dynamics are deliberately boring: AIMD-style moves, a hysteresis dead
band between the breach and recover thresholds, consecutive-window
streaks before any action, and a cooldown after each one so the effect
of a move is observed before the next is considered.  Boring is the
point — an exciting controller oscillates, and an oscillating precision
knob trades accuracy for nothing.

Escalation order under a latency breach (cheapest reversible first):

1. **batch up** — double the batcher's max batch (more throughput per
   dispatch at some queueing-delay cost);
2. **tier down** — reroute nominal-precision traffic one rung down the
   :class:`~repro.control.TierLadder`, never past the policy's
   accuracy floor (this is the paper's trade made at runtime: spend
   accuracy to buy latency and energy);
3. **admission tighten** — multiplicative decrease of the token-bucket
   rate; the knob of last resort because it turns user requests away.

Relaxation when sustained-healthy runs the same ladder in reverse,
additively: loosen (then lift) admission, tier back up, shrink the
batch back toward its preferred size.

The tuner also serves as a drop-in for the deprecated
``resilience.DegradePolicy``: :meth:`AutoTuner.latency_only` builds one
in *watermark mode*, whose :meth:`route` reproduces the old static
queue-depth fallback semantics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.control.admission import TokenBucket
from repro.control.ladder import TierLadder
from repro.control.policy import SLOPolicy
from repro.control.signals import Signal
from repro.errors import ConfigurationError

__all__ = ["KnobConfig", "Action", "AutoTuner"]


@dataclass(frozen=True)
class KnobConfig:
    """Bounds and step sizes for the three actuators.

    Args:
        min_batch / max_batch: hard bounds on the batcher's max batch
            size; the tuner never sets a value outside them.
        preferred_batch: the size relaxation shrinks back toward (the
            operator's latency-friendly steady state).
        batch_decrease: additive step when relaxing the batch knob.
        admission_decrease: multiplicative factor (<1) applied to the
            admission rate on each tighten.
        admission_increase_ips: additive step when loosening.
        min_admission_ips: the rate is never tightened below this —
            total starvation is worse than a missed SLO.
        admission_headroom: the limit is *lifted* once the rate exceeds
            this multiple of observed throughput (the bucket is no
            longer binding) and the queue has drained.
        relax_queue_depth: max queue depth at which lifting the limit
            is considered safe.
    """

    min_batch: int = 1
    max_batch: int = 64
    preferred_batch: int = 8
    batch_decrease: int = 8
    admission_decrease: float = 0.7
    admission_increase_ips: float = 32.0
    min_admission_ips: float = 16.0
    admission_headroom: float = 2.0
    relax_queue_depth: int = 4

    def __post_init__(self) -> None:
        if not 1 <= self.min_batch <= self.preferred_batch <= self.max_batch:
            raise ConfigurationError(
                "need 1 <= min_batch <= preferred_batch <= max_batch"
            )
        if self.batch_decrease < 1:
            raise ConfigurationError("batch_decrease must be >= 1")
        if not 0.0 < self.admission_decrease < 1.0:
            raise ConfigurationError("admission_decrease must be in (0, 1)")
        if not self.admission_increase_ips > 0:
            raise ConfigurationError("admission_increase_ips must be > 0")
        if not self.min_admission_ips > 0:
            raise ConfigurationError("min_admission_ips must be > 0")
        if not self.admission_headroom > 1.0:
            raise ConfigurationError("admission_headroom must be > 1")
        if self.relax_queue_depth < 0:
            raise ConfigurationError("relax_queue_depth must be >= 0")


@dataclass(frozen=True)
class Action:
    """One actuation the tuner took, for the audit trail."""

    window: int          # window index the decision was made on
    knob: str            # "batch" | "tier" | "admission"
    old: object
    new: object
    reason: str          # e.g. "latency breach", "energy over budget"

    def format(self) -> str:
        return (
            f"window {self.window}: {self.knob} {self.old} -> {self.new}"
            f" ({self.reason})"
        )


class AutoTuner:
    """Closed-loop controller over tier / batch / admission knobs.

    The tuner holds *desired* knob values; a
    :class:`~repro.control.ControlLoop` applies the batch knob to the
    server's batchers and wires :attr:`admission` into its front end.
    The tier knob is applied by the tuner itself: install it as the
    server's ``degrade`` hook and :meth:`route` reroutes each admission
    of the nominal precision to the current tier's precision.

    Args:
        policy: targets and dynamics (:class:`SLOPolicy`).
        ladder: the precision tiers available for rerouting.
        knobs: actuator bounds/steps (default :class:`KnobConfig`).
        admission: token bucket to actuate (one is created if omitted).
        watermark / fallback: legacy static-degrade compatibility —
            when given, :meth:`route` applies the old
            ``DegradePolicy`` semantics (reroute via the fallback map
            at queue depth >= watermark) instead of tier state, and
            :meth:`step` is a no-op.  Used by the deprecation shim.
    """

    def __init__(
        self,
        policy: SLOPolicy,
        ladder: TierLadder,
        knobs: Optional[KnobConfig] = None,
        admission: Optional[TokenBucket] = None,
        watermark: Optional[int] = None,
        fallback: Optional[Dict[str, str]] = None,
    ):
        if (watermark is None) != (fallback is None):
            raise ConfigurationError(
                "watermark and fallback must be given together"
            )
        if watermark is not None:
            if watermark < 1:
                raise ConfigurationError("watermark must be >= 1")
            if not fallback:
                raise ConfigurationError("fallback map must be non-empty")
            for source, target in fallback.items():
                if source == target:
                    raise ConfigurationError(
                        f"fallback maps {source!r} to itself"
                    )
        self.policy = policy
        self.ladder = ladder
        self.knobs = knobs or KnobConfig()
        self.admission = admission or TokenBucket()
        self._watermark = watermark
        self._fallback = dict(fallback) if fallback else {}

        # Controller state.
        self.tier_index = 0
        self.batch_size = self.knobs.preferred_batch
        self._breach_streak = 0
        self._recover_streak = 0
        self._cooldown = 0
        self.actions: List[Action] = []

    # -- routing (the tier actuator) -----------------------------------
    @property
    def watermark_mode(self) -> bool:
        """True when emulating the legacy static ``DegradePolicy``."""
        return self._watermark is not None

    @property
    def precision(self) -> str:
        """The precision the current tier serves."""
        return self.ladder[self.tier_index].precision

    def route(self, precision: str, queue_depth: int) -> str:
        """Pick the precision an admission is actually served at.

        Plugs into the engines' ``degrade`` hook.  In watermark mode
        this is the old static policy verbatim: at queue depth at or
        above the watermark, requests whose precision has a fallback
        are rerouted one step (chains are not followed).  In controller
        mode, nominal-precision requests follow the current tier; other
        precisions pass through untouched.
        """
        if self._watermark is not None:
            if queue_depth >= self._watermark:
                return self._fallback.get(precision, precision)
            return precision
        if self.tier_index > 0 and precision == self.ladder[0].precision:
            return self.precision
        return precision

    # -- the control step ----------------------------------------------
    def step(self, signal: Signal) -> Optional[Action]:
        """Consume one window's signal; possibly move one knob.

        Returns the action taken, or ``None`` when the tuner held
        (dead band, streak not yet long enough, cooldown, idle window,
        or nothing left to move).
        """
        if self._watermark is not None:
            return None  # legacy static mode has no dynamics
        if not signal.has_traffic and signal.queue_depth == 0:
            # Idle window: no evidence either way.  Don't decay streaks
            # or cooldown on silence — a burst after a lull should meet
            # the controller exactly where the last burst left it.
            return None

        breached = signal.has_traffic and self.policy.breached(signal.p99_ms)
        healthy = signal.has_traffic and self.policy.healthy(signal.p99_ms)
        if breached:
            self._breach_streak += 1
            self._recover_streak = 0
        elif healthy:
            self._recover_streak += 1
            self._breach_streak = 0
        else:
            # Inside the hysteresis band (or a queue-only window): hold.
            self._breach_streak = 0
            self._recover_streak = 0

        if self._cooldown > 0:
            self._cooldown -= 1
            return None

        action: Optional[Action] = None
        if self._breach_streak >= self.policy.breach_windows:
            action = self._escalate(signal, "latency breach")
        elif signal.has_traffic and self.policy.over_energy(
            signal.energy_uj_per_request
        ):
            action = self._tier_down(signal, "energy over budget")
        elif self._recover_streak >= self.policy.recover_windows:
            action = self._relax(signal)

        if action is not None:
            self.actions.append(action)
            self._cooldown = self.policy.cooldown_windows
            self._breach_streak = 0
            self._recover_streak = 0
        return action

    # -- escalation ----------------------------------------------------
    def _escalate(self, signal: Signal, reason: str) -> Optional[Action]:
        action = self._batch_up(signal, reason)
        if action is None:
            action = self._tier_down(signal, reason)
        if action is None:
            action = self._admission_tighten(signal, reason)
        return action

    def _batch_up(self, signal: Signal, reason: str) -> Optional[Action]:
        new = min(self.batch_size * 2, self.knobs.max_batch)
        if new == self.batch_size:
            return None
        old, self.batch_size = self.batch_size, new
        return Action(signal.window, "batch", old, new, reason)

    def _tier_down(self, signal: Signal, reason: str) -> Optional[Action]:
        floor = self.ladder.floor_index(self.policy.accuracy_floor)
        if self.tier_index >= floor:
            return None
        old = self.precision
        self.tier_index += 1
        return Action(signal.window, "tier", old, self.precision, reason)

    def _admission_tighten(
        self, signal: Signal, reason: str
    ) -> Optional[Action]:
        old = self.admission.rate_ips
        if old is None:
            # First tighten: clamp to a fraction of what the server is
            # demonstrably completing, so the limit bites immediately.
            base = max(signal.throughput_ips, self.knobs.min_admission_ips)
            new = max(
                base * self.knobs.admission_decrease,
                self.knobs.min_admission_ips,
            )
        else:
            new = max(
                old * self.knobs.admission_decrease,
                self.knobs.min_admission_ips,
            )
            if new == old:
                return None
        self.admission.set_rate(new)
        return Action(signal.window, "admission", old, new, reason)

    # -- relaxation ----------------------------------------------------
    def _relax(self, signal: Signal) -> Optional[Action]:
        action = self._admission_loosen(signal)
        if action is None:
            action = self._tier_up(signal)
        if action is None:
            action = self._batch_down(signal)
        return action

    def _admission_loosen(self, signal: Signal) -> Optional[Action]:
        old = self.admission.rate_ips
        if old is None:
            return None
        new = old + self.knobs.admission_increase_ips
        lift = (
            new > self.knobs.admission_headroom
            * max(signal.throughput_ips, 1e-9)
            and signal.queue_depth <= self.knobs.relax_queue_depth
        )
        if lift:
            self.admission.disable()
            return Action(
                signal.window, "admission", old, None, "sustained healthy"
            )
        self.admission.set_rate(new)
        return Action(
            signal.window, "admission", old, new, "sustained healthy"
        )

    def _tier_up(self, signal: Signal) -> Optional[Action]:
        if self.tier_index == 0:
            return None
        old = self.precision
        self.tier_index -= 1
        return Action(
            signal.window, "tier", old, self.precision, "sustained healthy"
        )

    def _batch_down(self, signal: Signal) -> Optional[Action]:
        if self.batch_size <= self.knobs.preferred_batch:
            return None
        new = max(
            self.batch_size - self.knobs.batch_decrease,
            self.knobs.preferred_batch,
            self.knobs.min_batch,
        )
        old, self.batch_size = self.batch_size, new
        return Action(
            signal.window, "batch", old, new, "sustained healthy"
        )

    # -- summaries -----------------------------------------------------
    def accuracy_loss_bound(self) -> Optional[float]:
        """Largest known accuracy drop any tier the run visited implies.

        ``None`` when tier accuracies are unknown; ``0.0`` when the run
        never left tier 0.
        """
        deepest = self.tier_index
        for action in self.actions:
            if action.knob == "tier":
                index = self.ladder.index_of(str(action.new))
                if index is not None:
                    deepest = max(deepest, index)
        return self.ladder.accuracy_drop(deepest)

    # -- legacy construction -------------------------------------------
    @classmethod
    def latency_only(
        cls, watermark: int, fallback: Dict[str, str]
    ) -> "AutoTuner":
        """Watermark-mode tuner backing the ``DegradePolicy`` shim.

        Reproduces the static queue-depth degrade semantics exactly;
        ``step`` never acts (the infinite latency SLO is never
        breached, and watermark mode short-circuits it anyway).
        """
        precisions: List[str] = []
        for source, target in fallback.items():
            for key in (source, target):
                if key not in precisions:
                    precisions.append(key)
        return cls(
            policy=SLOPolicy(latency_slo_ms=float("inf")),
            ladder=TierLadder.from_precisions(precisions),
            watermark=watermark,
            fallback=fallback,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._watermark is not None:
            return (
                f"AutoTuner(watermark={self._watermark}, "
                f"fallback={self._fallback!r})"
            )
        return (
            f"AutoTuner(tier={self.precision!r}, batch={self.batch_size}, "
            f"admission={self.admission!r})"
        )
