"""The loop that runs the controller: sample, step, actuate, record.

:class:`ControlLoop` owns the cadence.  Each tick it closes a sensor
window (:class:`~repro.control.SensorHub`), feeds the signal to the
:class:`~repro.control.AutoTuner`, pushes the resulting batch knob into
every batcher the server exposes, and appends a :class:`WindowRecord`
to its history — the per-window audit trail the scenario verdicts and
``serve-bench --json`` knob trajectories are built from.

A loop built *without* a tuner is an observer: it judges each window
against the policy (for SLO-attainment accounting) but never moves a
knob.  That is how the static baseline in an A/B scenario run is
measured with the same sensor pipeline as the autotuned arm.

The loop runs either embedded (call :meth:`tick` from a test with a
fake clock) or as a daemon thread (:meth:`start`/:meth:`stop`) beside
a live :class:`~repro.serve.InferenceServer` or
:class:`~repro.serve.FleetServer`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.control.policy import SLOPolicy
from repro.control.signals import SensorHub, Signal
from repro.control.tuner import Action, AutoTuner
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.tracer import get_tracer

__all__ = ["WindowRecord", "ControlLoop"]


@dataclass(frozen=True)
class WindowRecord:
    """One control window: what was seen, what was set, what was done."""

    signal: Signal
    tier_index: int
    precision: str
    batch_size: int
    admission_ips: Optional[float]   # None = unlimited
    slo_met: Optional[bool]          # None when the window had no traffic
    actions: Tuple[Action, ...]


class ControlLoop:
    """Periodic sample -> step -> actuate driver for one server.

    Args:
        server: anything exposing ``stats`` and ``batchers`` (both
            engines do); the loop reads signals from the former and
            applies the batch knob to the latter's policies.
        policy: the SLO each window is judged against.
        tuner: the controller to drive, or ``None`` for an
            observe-only loop (baseline attainment measurement).
        interval_s: control window length when running threaded.
        clock: monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        server,
        policy: SLOPolicy,
        tuner: Optional[AutoTuner] = None,
        interval_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.server = server
        self.policy = policy
        self.tuner = tuner
        self.interval_s = interval_s
        self.metrics = metrics or get_metrics()
        self.history: List[WindowRecord] = []
        self._hub = SensorHub(
            server.stats,
            depth_fn=lambda: sum(b.depth() for b in server.batchers),
            clock=clock,
        )
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Wire the tuner's actuators into the server.

        The tuner becomes the server's ``degrade`` router (tier knob)
        and its token bucket becomes the admission gate.  Observe-only
        loops install nothing.
        """
        if self.tuner is None or self.tuner.watermark_mode:
            return
        self.server.degrade = self.tuner
        self.server.admission = self.tuner.admission

    def tick(self) -> WindowRecord:
        """Run one control window; returns its record."""
        with get_tracer().span("controller.step"):
            signal = self._hub.sample()
            actions: Tuple[Action, ...] = ()
            if self.tuner is not None:
                action = self.tuner.step(signal)
                if action is not None:
                    actions = (action,)
                self._apply_batch_knob()
            record = WindowRecord(
                signal=signal,
                tier_index=self.tuner.tier_index if self.tuner else 0,
                precision=(
                    self.tuner.precision if self.tuner
                    else ""
                ),
                batch_size=(
                    self.tuner.batch_size if self.tuner
                    else self.server.batchers[0].policy.max_batch_size
                ),
                admission_ips=(
                    self.tuner.admission.rate_ips if self.tuner else None
                ),
                slo_met=(
                    not self.policy.breached(signal.p99_ms)
                    if signal.has_traffic else None
                ),
                actions=actions,
            )
        self.history.append(record)
        self._publish(record)
        return record

    def _apply_batch_knob(self) -> None:
        assert self.tuner is not None
        for batcher in self.server.batchers:
            batcher.policy.max_batch_size = self.tuner.batch_size

    def _publish(self, record: WindowRecord) -> None:
        self.metrics.counter("controller.windows").inc()
        if record.slo_met is False:
            self.metrics.counter("controller.breaches").inc()
        if record.actions:
            self.metrics.counter("controller.actions").inc(len(record.actions))
        self.metrics.gauge("controller.tier").set(record.tier_index)
        self.metrics.gauge("controller.batch").set(record.batch_size)
        self.metrics.gauge("controller.admission_ips").set(
            record.admission_ips if record.admission_ips is not None else -1.0
        )

    # -- threaded operation --------------------------------------------
    def start(self) -> None:
        """Run :meth:`tick` every ``interval_s`` on a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-control-loop", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and close out one final window."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.tick()  # drain the tail of the last window

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.tick()

    # -- summaries -----------------------------------------------------
    def attainment(self) -> float:
        """Fraction of traffic-bearing windows that met the latency SLO.

        1.0 when no window saw traffic (an idle run violated nothing).
        """
        judged = [r for r in self.history if r.slo_met is not None]
        if not judged:
            return 1.0
        return sum(1 for r in judged if r.slo_met) / len(judged)

    def knob_trajectory(self) -> List[dict]:
        """JSON-ready per-window knob/signal series for reports."""
        return [
            {
                "window": r.signal.window,
                "p99_ms": round(r.signal.p99_ms, 3),
                "completed": r.signal.completed,
                "queue_depth": r.signal.queue_depth,
                "throttled": r.signal.throttled,
                "tier": r.tier_index,
                "precision": r.precision,
                "batch": r.batch_size,
                "admission_ips": r.admission_ips,
                "slo_met": r.slo_met,
                "actions": [a.format() for a in r.actions],
            }
            for r in self.history
        ]
