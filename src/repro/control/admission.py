"""Front-end admission throttling: a thread-safe token bucket.

The third knob of the autotuner.  Precision and batching move the
service rate; once both are exhausted the only way to hold a latency
SLO under sustained overload is to stop admitting work the server
cannot serve in time.  A token bucket makes that explicit and cheap:
``try_acquire`` is one locked float update per admission, and a
``None`` rate means *unlimited* — the bucket then costs a single
attribute check, so an uncontrolled server pays nothing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.errors import ConfigurationError

__all__ = ["TokenBucket"]


class TokenBucket:
    """Rate limiter with burst capacity and an injectable clock.

    Args:
        rate_ips: admissions per second, or ``None`` for unlimited
            (the default — the controller sets a rate only when it has
            to throttle).
        burst: bucket capacity in tokens; bounds how far admissions can
            run ahead of the steady rate after an idle gap.
        clock: monotonic-seconds source (injectable for tests).
    """

    def __init__(
        self,
        rate_ips: Optional[float] = None,
        burst: float = 16.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate_ips is not None and not rate_ips > 0:
            raise ConfigurationError("rate_ips must be > 0 (or None)")
        if not burst >= 1:
            raise ConfigurationError("burst must be >= 1")
        self._clock = clock
        self._lock = threading.Lock()
        self._rate: Optional[float] = rate_ips
        self._burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at = clock()

    # ------------------------------------------------------------------
    @property
    def rate_ips(self) -> Optional[float]:
        """Current admission rate (``None`` = unlimited)."""
        return self._rate

    @property
    def limited(self) -> bool:
        return self._rate is not None

    def set_rate(self, rate_ips: float) -> None:
        """Install (or change) the admission rate, keeping earned tokens."""
        if not rate_ips > 0:
            raise ConfigurationError("rate_ips must be > 0")
        with self._lock:
            self._refill_locked()
            self._rate = float(rate_ips)

    def disable(self) -> None:
        """Lift the limit entirely (every ``try_acquire`` succeeds)."""
        with self._lock:
            self._rate = None
            self._tokens = self._burst

    # ------------------------------------------------------------------
    def _refill_locked(self) -> None:
        now = self._clock()
        if self._rate is not None:
            elapsed = max(now - self._refilled_at, 0.0)
            self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
        self._refilled_at = now

    def try_acquire(self) -> bool:
        """Take one token; False means the caller must reject/defer."""
        if self._rate is None:
            return True
        with self._lock:
            if self._rate is None:  # disabled while waiting for the lock
                return True
            self._refill_locked()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rate = "unlimited" if self._rate is None else f"{self._rate:.1f}/s"
        return f"TokenBucket(rate={rate}, burst={self._burst:g})"
