"""Digit glyph skeletons shared by the digits and svhn generators.

Each digit 0-9 is a list of strokes; a stroke is either a polyline of
unit-square points or an ellipse spec.  The generators jitter these
skeletons (rotation, scale, translation, thickness) so every rendered
sample is unique while classes stay visually distinct.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.data import shapes

# A stroke is ("line", [(x, y), ...]) or ("ellipse", (cx, cy, rx, ry)).
Stroke = Tuple[str, object]

DIGIT_STROKES: Dict[int, List[Stroke]] = {
    0: [("ellipse", (0.5, 0.5, 0.32, 0.45))],
    1: [("line", [(0.35, 0.25), (0.55, 0.08), (0.55, 0.92)]),
        ("line", [(0.35, 0.92), (0.75, 0.92)])],
    2: [("line", [(0.25, 0.25), (0.35, 0.10), (0.65, 0.10), (0.75, 0.28),
                  (0.70, 0.48), (0.25, 0.90), (0.78, 0.90)])],
    3: [("line", [(0.25, 0.12), (0.70, 0.12), (0.48, 0.45), (0.72, 0.60),
                  (0.70, 0.82), (0.50, 0.92), (0.25, 0.85)])],
    4: [("line", [(0.62, 0.92), (0.62, 0.08), (0.22, 0.62), (0.80, 0.62)])],
    5: [("line", [(0.72, 0.10), (0.28, 0.10), (0.26, 0.48), (0.60, 0.45),
                  (0.74, 0.62), (0.70, 0.85), (0.45, 0.93), (0.24, 0.85)])],
    6: [("line", [(0.68, 0.10), (0.40, 0.30), (0.28, 0.60)]),
        ("ellipse", (0.48, 0.70, 0.22, 0.23))],
    7: [("line", [(0.22, 0.10), (0.78, 0.10), (0.45, 0.92)])],
    8: [("ellipse", (0.5, 0.30, 0.22, 0.21)),
        ("ellipse", (0.5, 0.71, 0.26, 0.23))],
    9: [("ellipse", (0.52, 0.32, 0.22, 0.23)),
        ("line", [(0.72, 0.40), (0.62, 0.70), (0.38, 0.92)])],
}

DIGIT_CLASS_NAMES = [str(d) for d in range(10)]


def render_digit(
    digit: int,
    size: int,
    rng: np.random.Generator,
    rotation_range: float = 0.20,
    scale_range: Tuple[float, float] = (0.85, 1.1),
    shift_pixels: float = 1.5,
    thickness_range: Tuple[float, float] = (1.0, 1.8),
) -> np.ndarray:
    """Render one jittered digit glyph onto a ``size x size`` canvas.

    Returns a single-channel float canvas in [0, 1].  The jitter ranges
    control task difficulty; the digits dataset uses gentle defaults,
    the svhn generator passes wider ones.
    """
    canvas = shapes.blank_canvas(size)
    rotation = rng.uniform(-rotation_range, rotation_range)
    scale = rng.uniform(*scale_range)
    shift = (
        rng.uniform(-shift_pixels, shift_pixels),
        rng.uniform(-shift_pixels, shift_pixels),
    )
    thickness = rng.uniform(*thickness_range) * size / 28.0
    for kind, spec in DIGIT_STROKES[digit]:
        if kind == "line":
            pts = shapes.affine_points(spec, size, rotation, scale, shift)
            shapes.draw_polyline(canvas, pts, thickness=thickness)
        else:
            cx, cy, rx, ry = spec
            center_pts = shapes.affine_points([(cx, cy)], size, rotation, scale, shift)
            span = size - 2 * (0.15 * size)
            shapes.draw_ellipse(
                canvas,
                center_pts[0],
                (rx * span * scale, ry * span * scale),
                thickness=thickness,
            )
    return canvas
