"""Dataset containers, splits and batching."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, ShapeError


@dataclass
class Dataset:
    """A labelled image set.

    Attributes:
        images: NCHW ``float32`` array, values roughly in [0, 1].
        labels: (N,) integer class ids.
        class_names: readable name per class id.
        name: dataset identifier (``"digits"``, ``"svhn"``, ``"cifar"``).
    """

    images: np.ndarray
    labels: np.ndarray
    class_names: List[str]
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ShapeError(f"images must be NCHW, got shape {self.images.shape}")
        if self.labels.shape != (self.images.shape[0],):
            raise ShapeError(
                f"labels shape {self.labels.shape} does not match "
                f"{self.images.shape[0]} images"
            )
        if self.labels.size and (
            self.labels.min() < 0 or self.labels.max() >= len(self.class_names)
        ):
            raise ShapeError("labels out of range for class_names")

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def num_classes(self) -> int:
        return len(self.class_names)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        """(C, H, W) of a single image."""
        return tuple(self.images.shape[1:])

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        return Dataset(
            images=self.images[indices],
            labels=self.labels[indices],
            class_names=self.class_names,
            name=name or self.name,
        )

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_classes)


@dataclass
class DataSplit:
    """Train / validation / test partition of one task."""

    train: Dataset
    val: Dataset
    test: Dataset

    @property
    def name(self) -> str:
        return self.train.name

    @property
    def num_classes(self) -> int:
        return self.train.num_classes

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return self.train.image_shape


def stratified_split(
    dataset: Dataset, fraction: float, rng: np.random.Generator
) -> Tuple[Dataset, Dataset]:
    """Split off ``fraction`` of each class (paper: 10 % of each category
    of the test set becomes the validation set).

    Returns ``(remainder, held_out)``.
    """
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError("fraction must be in (0, 1)")
    held: List[np.ndarray] = []
    kept: List[np.ndarray] = []
    for cls in range(dataset.num_classes):
        idx = np.flatnonzero(dataset.labels == cls)
        idx = rng.permutation(idx)
        n_held = max(1, int(round(fraction * idx.size))) if idx.size else 0
        held.append(idx[:n_held])
        kept.append(idx[n_held:])
    held_idx = np.concatenate(held) if held else np.array([], dtype=np.int64)
    kept_idx = np.concatenate(kept) if kept else np.array([], dtype=np.int64)
    return dataset.subset(kept_idx), dataset.subset(held_idx)


def batches(
    dataset: Dataset,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (images, labels) mini-batches, shuffled when ``rng`` is given."""
    if batch_size < 1:
        raise ConfigurationError("batch_size must be >= 1")
    order = np.arange(len(dataset))
    if rng is not None:
        order = rng.permutation(order)
    for start in range(0, len(dataset), batch_size):
        idx = order[start : start + batch_size]
        yield dataset.images[idx], dataset.labels[idx]
