"""SVHN-like synthetic dataset: coloured 32x32 digits in the wild.

Medium difficulty: digits are rendered with random foreground colour on
a textured, coloured background, with partial distractor digits at the
edges, wider geometric jitter, and contrast variation.  This reproduces
SVHN's role in the paper: quantization starts to cost accuracy at 8
bits and binary weights fail outright (Table IV).
"""

from __future__ import annotations

import numpy as np

from repro.data import shapes
from repro.data.dataset import Dataset
from repro.data.glyphs import DIGIT_CLASS_NAMES, render_digit
from repro.errors import ConfigurationError


def _textured_background(size: int, rng: np.random.Generator) -> np.ndarray:
    """Low-frequency colour texture, CHW in [0, 1]."""
    base = rng.uniform(0.1, 0.7, size=3)
    coarse = rng.normal(0.0, 0.18, size=(3, size // 4 + 1, size // 4 + 1))
    texture = np.repeat(np.repeat(coarse, 4, axis=1), 4, axis=2)[:, :size, :size]
    return np.clip(base[:, None, None] + texture, 0.0, 1.0).astype(np.float32)


def _render_svhn_sample(
    digit: int, size: int, rng: np.random.Generator, distractors: bool
) -> np.ndarray:
    background = _textured_background(size, rng)
    glyph = render_digit(
        digit,
        size,
        rng,
        rotation_range=0.30,
        scale_range=(0.7, 1.15),
        shift_pixels=3.0,
        thickness_range=(1.2, 2.4),
    )
    if distractors:
        # Partial neighbouring digits peeking in from the sides, as in
        # real SVHN crops.
        for side in (-1, 1):
            if rng.random() < 0.6:
                other = int(rng.integers(0, 10))
                neighbor = render_digit(other, size, rng, shift_pixels=0.0)
                shift = int(side * rng.integers(size * 2 // 3, size - 2))
                rolled = np.roll(neighbor, shift, axis=1)
                if side < 0:
                    rolled[:, shift:] = 0.0
                else:
                    rolled[:, :shift] = 0.0
                glyph = np.maximum(glyph, 0.8 * rolled)

    fg_color = rng.uniform(0.2, 1.0, size=3)
    # Ensure the digit contrasts with the background mean.
    bg_mean = background.mean(axis=(1, 2))
    fg_color = np.where(np.abs(fg_color - bg_mean) < 0.25, 1.0 - bg_mean, fg_color)
    image = background * (1.0 - glyph[None]) + fg_color[:, None, None] * glyph[None]
    contrast = rng.uniform(0.75, 1.2)
    brightness = rng.uniform(-0.08, 0.08)
    image = np.clip((image - 0.5) * contrast + 0.5 + brightness, 0.0, 1.0)
    return image.astype(np.float32)


def synthetic_svhn(
    n_train: int = 2000,
    n_test: int = 500,
    size: int = 32,
    noise: float = 0.04,
    distractors: bool = True,
    seed: int = 1,
) -> tuple:
    """Generate (train, test) :class:`Dataset` pairs of SVHN-like crops."""
    if n_train < 10 or n_test < 10:
        raise ConfigurationError("need at least one sample per class")
    rng = np.random.default_rng(seed)

    def generate(count: int, name: str) -> Dataset:
        images = np.zeros((count, 3, size, size), dtype=np.float32)
        labels = np.zeros(count, dtype=np.int64)
        for i in range(count):
            digit = i % 10
            image = _render_svhn_sample(digit, size, rng, distractors)
            image = image + rng.normal(0.0, noise, image.shape)
            images[i] = np.clip(image, 0.0, 1.0)
            labels[i] = digit
        order = rng.permutation(count)
        return Dataset(images[order], labels[order], DIGIT_CLASS_NAMES, name=name)

    return generate(n_train, "svhn"), generate(n_test, "svhn")
