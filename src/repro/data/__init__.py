"""Synthetic dataset substrate.

The paper evaluates on MNIST, SVHN and CIFAR-10.  This environment has
no network access, so those datasets cannot be downloaded; this package
provides procedurally generated stand-ins with the same tensor shapes
and ten classes each, and with deliberately graded difficulty:

``synthetic_digits``  (28x28x1)
    Clean, centred digit glyphs — easy, like MNIST.
``synthetic_svhn``    (32x32x3)
    Coloured digits on textured backgrounds with edge distractors —
    medium, like SVHN.
``synthetic_cifar``   (32x32x3)
    Textured object silhouettes with heavy appearance variation —
    hard, like CIFAR-10.

The paper's conclusions concern *relative* accuracy across precisions
and the difficulty ordering of the three tasks; both are preserved (see
DESIGN.md, substitution table).
"""

from repro.data.dataset import Dataset, DataSplit, batches, stratified_split
from repro.data.synth_digits import synthetic_digits
from repro.data.synth_svhn import synthetic_svhn
from repro.data.synth_cifar import synthetic_cifar, CIFAR_CLASS_NAMES
from repro.data.augment import gaussian_noise, random_crop, random_flip
from repro.data.registry import DATASET_BUILDERS, load_dataset
from repro.data.real import load_cifar10, load_mnist, load_mnist_idx, read_idx

__all__ = [
    "Dataset",
    "DataSplit",
    "batches",
    "stratified_split",
    "synthetic_digits",
    "synthetic_svhn",
    "synthetic_cifar",
    "CIFAR_CLASS_NAMES",
    "gaussian_noise",
    "random_crop",
    "random_flip",
    "DATASET_BUILDERS",
    "load_dataset",
    "load_mnist",
    "load_mnist_idx",
    "load_cifar10",
    "read_idx",
]
