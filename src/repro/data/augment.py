"""Training-time augmentation utilities.

Pure functions over NCHW batches; the experiment drivers apply them
when building the enlarged-network training sets (ALEX+/ALEX++ have
enough capacity to overfit the small synthetic tasks without them).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def random_flip(images: np.ndarray, rng: np.random.Generator,
                probability: float = 0.5) -> np.ndarray:
    """Horizontally flip each image with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError("probability must be in [0, 1]")
    out = images.copy()
    flip = rng.random(images.shape[0]) < probability
    out[flip] = out[flip, :, :, ::-1]
    return out


def random_crop(images: np.ndarray, rng: np.random.Generator,
                padding: int = 2) -> np.ndarray:
    """Pad by ``padding`` then crop back at a random offset per image."""
    if padding < 0:
        raise ConfigurationError("padding must be >= 0")
    if padding == 0:
        return images.copy()
    n, c, h, w = images.shape
    padded = np.pad(
        images, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )
    out = np.empty_like(images)
    offsets_y = rng.integers(0, 2 * padding + 1, size=n)
    offsets_x = rng.integers(0, 2 * padding + 1, size=n)
    for i in range(n):
        oy, ox = offsets_y[i], offsets_x[i]
        out[i] = padded[i, :, oy : oy + h, ox : ox + w]
    return out


def gaussian_noise(images: np.ndarray, rng: np.random.Generator,
                   sigma: float = 0.02) -> np.ndarray:
    """Add clipped Gaussian pixel noise."""
    if sigma < 0:
        raise ConfigurationError("sigma must be >= 0")
    noisy = images + rng.normal(0.0, sigma, images.shape).astype(images.dtype)
    return np.clip(noisy, 0.0, 1.0)
