"""CIFAR-10-like synthetic dataset: textured object classes, 32x32 RGB.

Hard task: ten structural object classes rendered with random colours,
scales, positions, textured backgrounds, occluding noise and per-sample
appearance variation.  Structure (not colour) defines the class, so the
network must learn shape features — giving the dataset enough headroom
for the precision sweep to separate, as CIFAR-10 does in Table V.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.data import shapes
from repro.data.dataset import Dataset
from repro.errors import ConfigurationError

CIFAR_CLASS_NAMES = [
    "disc", "ring", "square", "triangle", "cross",
    "stripes", "checker", "star", "blobs", "crescent",
]


def _rand_center(size: int, rng: np.random.Generator, margin: float = 0.30):
    return (
        size * rng.uniform(margin, 1.0 - margin),
        size * rng.uniform(margin, 1.0 - margin),
    )


def _draw_disc(canvas, size, rng):
    r = size * rng.uniform(0.18, 0.30)
    shapes.draw_ellipse(canvas, _rand_center(size, rng), (r, r * rng.uniform(0.8, 1.2)),
                        filled=True)


def _draw_ring(canvas, size, rng):
    r = size * rng.uniform(0.20, 0.32)
    shapes.draw_ellipse(canvas, _rand_center(size, rng), (r, r),
                        thickness=size * rng.uniform(0.05, 0.09))


def _draw_square(canvas, size, rng):
    cx, cy = _rand_center(size, rng)
    half = size * rng.uniform(0.15, 0.26)
    angle = rng.uniform(0, np.pi / 4)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    corners = []
    for dx, dy in [(-1, -1), (1, -1), (1, 1), (-1, 1)]:
        corners.append((
            cx + half * (dx * cos_a - dy * sin_a),
            cy + half * (dx * sin_a + dy * cos_a),
        ))
    shapes.draw_polygon(canvas, corners)


def _draw_triangle(canvas, size, rng):
    cx, cy = _rand_center(size, rng)
    r = size * rng.uniform(0.18, 0.30)
    phase = rng.uniform(0, 2 * np.pi)
    vertices = [
        (cx + r * np.cos(phase + k * 2 * np.pi / 3),
         cy + r * np.sin(phase + k * 2 * np.pi / 3))
        for k in range(3)
    ]
    shapes.draw_polygon(canvas, vertices)


def _draw_cross(canvas, size, rng):
    cx, cy = _rand_center(size, rng)
    arm = size * rng.uniform(0.20, 0.32)
    thickness = size * rng.uniform(0.05, 0.08)
    angle = rng.uniform(0, np.pi / 2)
    for offset in (0.0, np.pi / 2):
        dx = arm * np.cos(angle + offset)
        dy = arm * np.sin(angle + offset)
        shapes.draw_segment(canvas, (cx - dx, cy - dy), (cx + dx, cy + dy),
                            thickness=thickness)


def _draw_stripes(canvas, size, rng):
    pattern = shapes.stripes(size, int(rng.integers(3, 6)),
                             horizontal=bool(rng.random() < 0.5))
    np.maximum(canvas, pattern, out=canvas)


def _draw_checker(canvas, size, rng):
    pattern = shapes.checkerboard(size, int(rng.integers(3, 6)),
                                  phase=int(rng.integers(0, 2)))
    np.maximum(canvas, pattern, out=canvas)


def _draw_star(canvas, size, rng):
    cx, cy = _rand_center(size, rng)
    outer = size * rng.uniform(0.22, 0.32)
    inner = outer * rng.uniform(0.35, 0.5)
    phase = rng.uniform(0, 2 * np.pi)
    points = []
    for k in range(10):
        r = outer if k % 2 == 0 else inner
        theta = phase + k * np.pi / 5
        points.append((cx + r * np.cos(theta), cy + r * np.sin(theta)))
    shapes.draw_polygon(canvas, points)


def _draw_blobs(canvas, size, rng):
    for _ in range(int(rng.integers(3, 6))):
        r = size * rng.uniform(0.05, 0.10)
        shapes.draw_ellipse(canvas, _rand_center(size, rng, margin=0.15),
                            (r, r), filled=True)


def _draw_crescent(canvas, size, rng):
    cx, cy = _rand_center(size, rng)
    r = size * rng.uniform(0.20, 0.30)
    shapes.draw_ellipse(canvas, (cx, cy), (r, r), filled=True)
    # Subtract an offset disc to carve the crescent.
    bite = shapes.blank_canvas(size)
    offset = r * rng.uniform(0.45, 0.7)
    angle = rng.uniform(0, 2 * np.pi)
    shapes.draw_ellipse(
        bite, (cx + offset * np.cos(angle), cy + offset * np.sin(angle)),
        (r * 0.9, r * 0.9), filled=True,
    )
    np.clip(canvas - bite, 0.0, 1.0, out=canvas)


_DRAWERS: Dict[int, Callable] = {
    0: _draw_disc, 1: _draw_ring, 2: _draw_square, 3: _draw_triangle,
    4: _draw_cross, 5: _draw_stripes, 6: _draw_checker, 7: _draw_star,
    8: _draw_blobs, 9: _draw_crescent,
}


def _render_cifar_sample(cls: int, size: int, rng: np.random.Generator) -> np.ndarray:
    mask = shapes.blank_canvas(size)
    _DRAWERS[cls](mask, size, rng)

    bg_color = rng.uniform(0.0, 0.8, size=3)
    bg_texture = rng.normal(0.0, 0.10, size=(3, size, size))
    background = np.clip(bg_color[:, None, None] + bg_texture, 0.0, 1.0)

    fg_color = rng.uniform(0.2, 1.0, size=3)
    fg_color = np.where(np.abs(fg_color - bg_color) < 0.2, 1.0 - bg_color, fg_color)
    fg_texture = 1.0 + rng.normal(0.0, 0.12, size=(size, size))

    image = background * (1.0 - mask[None]) + (
        fg_color[:, None, None] * (mask * fg_texture)[None]
    )
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def synthetic_cifar(
    n_train: int = 2000,
    n_test: int = 500,
    size: int = 32,
    noise: float = 0.06,
    seed: int = 2,
) -> tuple:
    """Generate (train, test) :class:`Dataset` pairs of textured objects."""
    if n_train < 10 or n_test < 10:
        raise ConfigurationError("need at least one sample per class")
    rng = np.random.default_rng(seed)

    def generate(count: int, name: str) -> Dataset:
        images = np.zeros((count, 3, size, size), dtype=np.float32)
        labels = np.zeros(count, dtype=np.int64)
        for i in range(count):
            cls = i % 10
            image = _render_cifar_sample(cls, size, rng)
            image = image + rng.normal(0.0, noise, image.shape)
            images[i] = np.clip(image, 0.0, 1.0)
            labels[i] = cls
        order = rng.permutation(count)
        return Dataset(images[order], labels[order], CIFAR_CLASS_NAMES, name=name)

    return generate(n_train, "cifar"), generate(n_test, "cifar")
