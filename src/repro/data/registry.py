"""Dataset registry keyed by the paper's benchmark names.

``load_dataset`` produces the full train/val/test split following the
paper's protocol: "we randomly select 10% of each classification
category from the original test set as our validation set".
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.data.dataset import DataSplit, Dataset, stratified_split
from repro.data.synth_cifar import synthetic_cifar
from repro.data.synth_digits import synthetic_digits
from repro.data.synth_svhn import synthetic_svhn
from repro.errors import ConfigurationError

DATASET_BUILDERS: Dict[str, Callable] = {
    "digits": synthetic_digits,
    "svhn": synthetic_svhn,
    "cifar": synthetic_cifar,
}


def load_dataset(
    name: str,
    n_train: int = 2000,
    n_test: int = 500,
    seed: int = 0,
    val_fraction: float = 0.1,
    normalize: bool = True,
) -> DataSplit:
    """Build a named synthetic task with the paper's val-split protocol.

    With ``normalize=True`` (default) pixel values are mapped from
    [0, 1] to [-1, 1] — zero-centred inputs, the standard preprocessing
    the paper's Caffe recipes apply via mean subtraction.
    """
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}"
        ) from None
    train, test_full = builder(n_train=n_train, n_test=n_test, seed=seed)
    if normalize:
        train = Dataset(
            2.0 * train.images - 1.0, train.labels, train.class_names, train.name
        )
        test_full = Dataset(
            2.0 * test_full.images - 1.0,
            test_full.labels,
            test_full.class_names,
            test_full.name,
        )
    rng = np.random.default_rng(seed + 1000)
    test, val = stratified_split(test_full, val_fraction, rng)
    return DataSplit(train=train, val=val, test=test)
