"""Rasterization primitives for the synthetic datasets.

All drawing functions operate on a single-channel float canvas in
[0, 1] and are vectorized over the pixel grid, so generating a few
thousand small images is fast enough for tests and benchmarks.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

Point = Tuple[float, float]


def blank_canvas(size: int) -> np.ndarray:
    """A ``size x size`` black canvas."""
    return np.zeros((size, size), dtype=np.float32)


def _pixel_grid(size: int) -> Tuple[np.ndarray, np.ndarray]:
    ys, xs = np.mgrid[0:size, 0:size]
    return xs.astype(np.float32), ys.astype(np.float32)


def draw_segment(
    canvas: np.ndarray,
    start: Point,
    end: Point,
    thickness: float = 1.2,
    intensity: float = 1.0,
) -> None:
    """Draw a soft-edged line segment (coords in pixels, in place).

    Intensity falls off linearly over one pixel beyond ``thickness`` so
    glyph edges are slightly anti-aliased, like scanned handwriting.
    """
    size = canvas.shape[0]
    xs, ys = _pixel_grid(size)
    ax, ay = start
    bx, by = end
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq < 1e-12:
        dist = np.hypot(xs - ax, ys - ay)
    else:
        t = ((xs - ax) * dx + (ys - ay) * dy) / length_sq
        t = np.clip(t, 0.0, 1.0)
        dist = np.hypot(xs - (ax + t * dx), ys - (ay + t * dy))
    mask = np.clip(thickness + 1.0 - dist, 0.0, 1.0)
    np.maximum(canvas, intensity * mask, out=canvas)


def draw_polyline(
    canvas: np.ndarray,
    points: Sequence[Point],
    thickness: float = 1.2,
    intensity: float = 1.0,
) -> None:
    """Draw consecutive segments through ``points`` (pixel coords)."""
    for a, b in zip(points[:-1], points[1:]):
        draw_segment(canvas, a, b, thickness=thickness, intensity=intensity)


def draw_ellipse(
    canvas: np.ndarray,
    center: Point,
    radii: Point,
    thickness: float = 1.2,
    intensity: float = 1.0,
    filled: bool = False,
) -> None:
    """Draw an ellipse outline (or filled disc) in place."""
    size = canvas.shape[0]
    xs, ys = _pixel_grid(size)
    cx, cy = center
    rx, ry = max(radii[0], 1e-3), max(radii[1], 1e-3)
    # Normalized radial coordinate: 1.0 on the ellipse boundary.
    rho = np.sqrt(((xs - cx) / rx) ** 2 + ((ys - cy) / ry) ** 2)
    if filled:
        mask = np.clip((1.0 - rho) * min(rx, ry) + 1.0, 0.0, 1.0)
    else:
        boundary_dist = np.abs(rho - 1.0) * min(rx, ry)
        mask = np.clip(thickness + 1.0 - boundary_dist, 0.0, 1.0)
    np.maximum(canvas, intensity * mask, out=canvas)


def draw_polygon(
    canvas: np.ndarray,
    vertices: Sequence[Point],
    intensity: float = 1.0,
) -> None:
    """Fill a convex or star-convex polygon using the even-odd rule."""
    size = canvas.shape[0]
    xs, ys = _pixel_grid(size)
    inside = np.zeros((size, size), dtype=bool)
    n = len(vertices)
    for i in range(n):
        x1, y1 = vertices[i]
        x2, y2 = vertices[(i + 1) % n]
        if y1 == y2:
            continue
        crosses = ((ys >= min(y1, y2)) & (ys < max(y1, y2)))
        x_at_y = x1 + (ys - y1) * (x2 - x1) / (y2 - y1)
        inside ^= crosses & (xs < x_at_y)
    np.maximum(canvas, intensity * inside.astype(np.float32), out=canvas)


def checkerboard(size: int, cell: int, phase: int = 0) -> np.ndarray:
    """A ``size x size`` checkerboard pattern with ``cell``-pixel squares."""
    ys, xs = np.mgrid[0:size, 0:size]
    board = (((xs // cell) + (ys // cell) + phase) % 2).astype(np.float32)
    return board


def stripes(size: int, period: int, horizontal: bool = True) -> np.ndarray:
    """Alternating stripes with the given pixel period."""
    ys, xs = np.mgrid[0:size, 0:size]
    axis = ys if horizontal else xs
    return ((axis // max(period, 1)) % 2).astype(np.float32)


def radial_gradient(size: int, center: Point, radius: float) -> np.ndarray:
    """Bright centre fading to black at ``radius``."""
    xs, ys = _pixel_grid(size)
    dist = np.hypot(xs - center[0], ys - center[1])
    return np.clip(1.0 - dist / max(radius, 1e-3), 0.0, 1.0)


def affine_points(
    points: Sequence[Point],
    size: int,
    rotation: float = 0.0,
    scale: float = 1.0,
    shift: Point = (0.0, 0.0),
) -> list:
    """Map unit-square points to pixel coords with jitter.

    ``points`` live in [0, 1]^2; they are scaled about the glyph centre,
    rotated by ``rotation`` radians, mapped to the canvas with a margin,
    and translated by ``shift`` pixels.
    """
    cos_r, sin_r = np.cos(rotation), np.sin(rotation)
    margin = 0.15 * size
    span = size - 2 * margin
    out = []
    for x, y in points:
        # Center, scale, rotate in unit space.
        ux, uy = (x - 0.5) * scale, (y - 0.5) * scale
        rx = ux * cos_r - uy * sin_r + 0.5
        ry = ux * sin_r + uy * cos_r + 0.5
        out.append((margin + rx * span + shift[0], margin + ry * span + shift[1]))
    return out
