"""Loaders for the real MNIST / CIFAR-10 datasets (offline files).

The execution environment used to develop this reproduction has no
network access, so the experiments default to the synthetic stand-ins
(see DESIGN.md).  When the real dataset files are available on disk,
these loaders produce :class:`~repro.data.dataset.Dataset` objects in
exactly the same format, so every experiment can be re-run on the real
data by passing the loaded splits to :class:`~repro.core.sweep.
PrecisionSweep` directly.

Supported formats:

* **MNIST** — the original IDX files (``train-images-idx3-ubyte`` etc.),
  optionally gzip-compressed.
* **CIFAR-10** — the python pickle batches (``data_batch_1`` ...
  ``test_batch``) from the official tarball.

Both are parsed from first principles (no third-party readers).
"""

from __future__ import annotations

import gzip
import os
import pickle
import struct
from typing import List, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import ConfigurationError

MNIST_CLASS_NAMES = [str(d) for d in range(10)]
CIFAR10_CLASS_NAMES = [
    "airplane", "automobile", "bird", "cat", "deer",
    "dog", "frog", "horse", "ship", "truck",
]

_IDX_DTYPES = {
    0x08: np.uint8,
    0x09: np.int8,
    0x0B: ">i2",
    0x0C: ">i4",
    0x0D: ">f4",
    0x0E: ">f8",
}


def _open_maybe_gzip(path: str):
    if path.endswith(".gz"):
        return gzip.open(path, "rb")
    return open(path, "rb")


def read_idx(path: str) -> np.ndarray:
    """Parse one IDX-format array (the MNIST container format)."""
    with _open_maybe_gzip(path) as handle:
        magic = handle.read(4)
        if len(magic) != 4 or magic[0] != 0 or magic[1] != 0:
            raise ConfigurationError(f"{path}: not an IDX file (bad magic)")
        dtype_code, ndim = magic[2], magic[3]
        if dtype_code not in _IDX_DTYPES:
            raise ConfigurationError(f"{path}: unknown IDX dtype 0x{dtype_code:02x}")
        shape = struct.unpack(f">{ndim}I", handle.read(4 * ndim))
        data = np.frombuffer(handle.read(), dtype=_IDX_DTYPES[dtype_code])
    expected = int(np.prod(shape))
    if data.size != expected:
        raise ConfigurationError(
            f"{path}: payload has {data.size} values, header promises {expected}"
        )
    return data.reshape(shape)


def load_mnist_idx(images_path: str, labels_path: str, name: str = "mnist") -> Dataset:
    """Load one MNIST split from its IDX image/label file pair.

    Images are returned as (N, 1, 28, 28) float32 in [0, 1].
    """
    images = read_idx(images_path)
    labels = read_idx(labels_path)
    if images.ndim != 3:
        raise ConfigurationError(f"{images_path}: expected 3-D image tensor")
    if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
        raise ConfigurationError("image/label counts differ")
    nchw = images[:, None, :, :].astype(np.float32) / 255.0
    return Dataset(nchw, labels.astype(np.int64), MNIST_CLASS_NAMES, name=name)


def load_mnist(directory: str) -> Tuple[Dataset, Dataset]:
    """Load (train, test) from a directory of the four standard files.

    Accepts both ``.gz`` and uncompressed files and both the hyphen and
    dot spellings of the official names.
    """
    def find(*candidates: str) -> str:
        for candidate in candidates:
            for suffix in ("", ".gz"):
                path = os.path.join(directory, candidate + suffix)
                if os.path.exists(path):
                    return path
        raise ConfigurationError(
            f"none of {candidates} found under {directory!r}"
        )

    train = load_mnist_idx(
        find("train-images-idx3-ubyte", "train-images.idx3-ubyte"),
        find("train-labels-idx1-ubyte", "train-labels.idx1-ubyte"),
        name="mnist",
    )
    test = load_mnist_idx(
        find("t10k-images-idx3-ubyte", "t10k-images.idx3-ubyte"),
        find("t10k-labels-idx1-ubyte", "t10k-labels.idx1-ubyte"),
        name="mnist",
    )
    return train, test


def _load_cifar_batch(path: str) -> Tuple[np.ndarray, List[int]]:
    with open(path, "rb") as handle:
        batch = pickle.load(handle, encoding="bytes")
    data = batch.get(b"data", batch.get("data"))
    labels = batch.get(b"labels", batch.get("labels"))
    if data is None or labels is None:
        raise ConfigurationError(f"{path}: not a CIFAR-10 python batch")
    return np.asarray(data), list(labels)


def load_cifar10(directory: str) -> Tuple[Dataset, Dataset]:
    """Load (train, test) from the CIFAR-10 python batch directory.

    Images are returned as (N, 3, 32, 32) float32 in [0, 1].
    """
    train_images: List[np.ndarray] = []
    train_labels: List[int] = []
    for index in range(1, 6):
        path = os.path.join(directory, f"data_batch_{index}")
        if not os.path.exists(path):
            raise ConfigurationError(f"missing CIFAR-10 batch {path!r}")
        data, labels = _load_cifar_batch(path)
        train_images.append(data)
        train_labels.extend(labels)
    test_data, test_labels = _load_cifar_batch(os.path.join(directory, "test_batch"))

    def to_dataset(raw: np.ndarray, labels: List[int]) -> Dataset:
        images = raw.reshape(-1, 3, 32, 32).astype(np.float32) / 255.0
        return Dataset(
            images, np.asarray(labels, dtype=np.int64),
            CIFAR10_CLASS_NAMES, name="cifar10",
        )

    return to_dataset(np.concatenate(train_images), train_labels), to_dataset(
        test_data, test_labels
    )
