"""MNIST-like synthetic dataset: grayscale 28x28 digit glyphs.

Easy task: centred glyphs, mild jitter, light noise.  A small CNN
reaches high accuracy within a few epochs, matching MNIST's role in the
paper (Table IV shows essentially no accuracy loss down to 8 bits).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.glyphs import DIGIT_CLASS_NAMES, render_digit
from repro.errors import ConfigurationError


def synthetic_digits(
    n_train: int = 2000,
    n_test: int = 500,
    size: int = 28,
    noise: float = 0.05,
    seed: int = 0,
) -> tuple:
    """Generate (train, test) :class:`Dataset` pairs.

    Args:
        n_train / n_test: sample counts (balanced over the 10 classes).
        size: image side in pixels (28 matches LeNet's input).
        noise: additive Gaussian noise sigma.
        seed: RNG seed; the same seed always yields the same data.
    """
    if n_train < 10 or n_test < 10:
        raise ConfigurationError("need at least one sample per class")
    rng = np.random.default_rng(seed)

    def generate(count: int, name: str) -> Dataset:
        images = np.zeros((count, 1, size, size), dtype=np.float32)
        labels = np.zeros(count, dtype=np.int64)
        for i in range(count):
            digit = i % 10
            canvas = render_digit(digit, size, rng)
            canvas = canvas + rng.normal(0.0, noise, canvas.shape)
            images[i, 0] = np.clip(canvas, 0.0, 1.0)
            labels[i] = digit
        order = rng.permutation(count)
        return Dataset(images[order], labels[order], DIGIT_CLASS_NAMES, name=name)

    return generate(n_train, "digits"), generate(n_test, "digits")
