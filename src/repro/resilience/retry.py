"""Retry with exponential backoff and full jitter.

One policy object, one entry point.  :func:`retry_call` re-invokes a
zero-argument callable while it raises one of the ``retry_on`` types,
sleeping ``uniform(0, min(max_delay, base * 2**attempt))`` between
attempts — the "full jitter" scheme from the AWS architecture blog,
which decorrelates retry storms better than equal or truncated jitter
when many clients fail at once (exactly what a broken worker pool or a
chaos run produces).

Everything is injectable (clock, rng, sleep) so tests run instantly
and deterministically.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import ConfigurationError

__all__ = ["RetryPolicy", "retry_call"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry.

    Args:
        max_attempts: total invocations (first try included); the last
            failure propagates.
        base_delay_s: backoff cap for the first retry; doubles per
            attempt.
        max_delay_s: upper bound on any single sleep.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigurationError("backoff delays must be >= 0")

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Full-jitter sleep before retry number ``attempt`` (0-based)."""
        cap = min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))
        return rng.uniform(0.0, cap)


def retry_call(
    fn: Callable[[], T],
    *,
    policy: Optional[RetryPolicy] = None,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    rng: Optional[random.Random] = None,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` until it returns or the policy is exhausted.

    ``on_retry(attempt, error)`` is invoked before each sleep (attempt
    is 0-based), which is where callers hook logging and metrics.
    Errors outside ``retry_on`` propagate immediately.
    """
    policy = policy or RetryPolicy()
    rng = rng or random.Random()
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except retry_on as error:
            if attempt + 1 >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(policy.backoff_s(attempt, rng))
    raise AssertionError("unreachable: loop either returns or raises")
