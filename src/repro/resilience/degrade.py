"""Graceful degradation: shed load by dropping precision, not requests.

.. deprecated::
    The static watermark policy has been subsumed by the closed-loop
    controller in :mod:`repro.control`.  :class:`DegradePolicy` remains
    as a thin compatibility shim over
    :meth:`repro.control.AutoTuner.latency_only` — same constructor,
    same ``route`` semantics, one :class:`DeprecationWarning` per
    process — but new code should build an
    :class:`~repro.control.AutoTuner` (or a full
    :class:`~repro.control.ControlLoop`) instead: it reroutes on the
    same queue-depth evidence *and* can batch up, throttle admissions,
    and recover on its own.

The paper's central result is that precision trades accuracy for
energy; under overload the same dial trades accuracy for *throughput*.
Past the watermark, new requests whose precision has a configured
fallback are rerouted to the lower-precision servable of the same
network — cheaper per image on the modeled accelerator, so the queue
drains faster — instead of being rejected outright.  The response still
arrives, carries the fallback model key, and is counted in
``ServerStats.degraded`` / the ``serve.degraded`` metric.
"""

from __future__ import annotations

import warnings
from typing import Mapping, Set

__all__ = ["DegradePolicy"]

_DEPRECATION_WARNED: Set[str] = set()


def _warn_once(name: str, alternative: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {alternative} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class DegradePolicy:
    """Deprecated static-watermark shim over the closed-loop autotuner.

    Construction delegates to
    :meth:`repro.control.AutoTuner.latency_only`, which validates the
    same invariants (watermark >= 1, non-empty map, no self-mappings —
    raising the same :class:`~repro.errors.ConfigurationError`) and
    reproduces the historical routing exactly: at queue depth at or
    above the watermark, a precision with a fallback entry degrades one
    step; chains are never followed.

    Args:
        watermark: queue depth (inclusive) at which degradation kicks in.
        fallback: ``precision key -> lower-precision key`` map; a
            precision without an entry is never degraded.
    """

    def __init__(self, watermark: int, fallback: Mapping[str, str]):
        _warn_once(
            "repro.resilience.DegradePolicy",
            "repro.control.AutoTuner (latency_only() for a drop-in)",
        )
        # Imported lazily: repro.serve imports this module at load time,
        # and repro.control imports repro.serve — a module-level import
        # here would close the cycle.
        from repro.control.tuner import AutoTuner

        self._tuner = AutoTuner.latency_only(watermark, dict(fallback))
        self.watermark = watermark
        self.fallback = dict(fallback)

    def route(self, precision: str, queue_depth: int) -> str:
        """The precision to actually serve at the given queue depth."""
        return self._tuner.route(precision, queue_depth)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DegradePolicy(watermark={self.watermark}, "
            f"fallback={self.fallback!r})"
        )
