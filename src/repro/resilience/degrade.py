"""Graceful degradation: shed load by dropping precision, not requests.

The paper's central result is that precision trades accuracy for
energy; under overload the same dial trades accuracy for *throughput*.
A :class:`DegradePolicy` watches queue depth at admission time: past
the watermark, new requests whose precision has a configured fallback
are rerouted to the lower-precision servable of the same network —
cheaper per image on the modeled accelerator, so the queue drains
faster — instead of being rejected outright.  The response still
arrives, carries the fallback model key, and is counted in
``ServerStats.degraded`` / the ``serve.degraded`` metric, so operators
can see exactly how much accuracy the overload cost.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConfigurationError

__all__ = ["DegradePolicy"]


class DegradePolicy:
    """Reroute admissions to lower precision above a queue watermark.

    Args:
        watermark: queue depth (inclusive) at which degradation kicks
            in.  A good default is half the server's ``max_queue_depth``
            — early enough to act before backpressure rejections start.
        fallback: ``precision key -> lower-precision key`` map; a
            precision without an entry is never degraded.  Chains are
            not followed: one submission degrades at most one step.
    """

    def __init__(self, watermark: int, fallback: Mapping[str, str]):
        if watermark < 1:
            raise ConfigurationError("watermark must be >= 1")
        if not fallback:
            raise ConfigurationError("fallback map must not be empty")
        for source, target in fallback.items():
            if source == target:
                raise ConfigurationError(
                    f"fallback for {source!r} must name a different precision"
                )
        self.watermark = watermark
        self.fallback = dict(fallback)

    def route(self, precision: str, queue_depth: int) -> str:
        """The precision to actually serve at the given queue depth."""
        if queue_depth >= self.watermark:
            return self.fallback.get(precision, precision)
        return precision

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DegradePolicy(watermark={self.watermark}, "
            f"fallback={self.fallback!r})"
        )
