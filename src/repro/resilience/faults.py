"""Seeded fault injection at named sites.

Production code is sprinkled with cheap hooks — ``fire(site)`` before
doing real work, ``corrupt(site, value)`` on data it produced — and a
:class:`FaultInjector` decides, on a seeded schedule, whether anything
actually happens.  The default injector has nothing armed, so the hooks
cost one dict lookup; tests and chaos runs arm sites to *prove* every
recovery path (store-build retries, batcher deadline eviction, sweep
point resubmission, cache corrupt-entry recovery) instead of trusting
that the except clauses would work.

Named sites (:data:`SITES`):

``store.build``
    :meth:`repro.serve.ModelStore.get` building a servable on a miss.
``engine.forward``
    one micro-batch forward pass inside a serve worker.
``parallel.point``
    one sweep point completing in :func:`repro.parallel.run_sweep`.
``cache.read``
    :meth:`repro.parallel.SweepCache.get` reading a result entry.
``registry.load``
    :meth:`repro.registry.ArtifactStore.load_state` decoding a stored
    weight archive (exercises the deployer's retry/auto-rollback).
``replica.crash``
    one fleet replica about to serve a batch — but unlike every other
    site, a raise-mode fire here kills the *process* (``os._exit``),
    exercising heartbeat detection, respawn/rejoin and in-flight batch
    resubmission rather than an exception path.

Modes: ``raise`` (a :class:`~repro.errors.FaultInjectedError`),
``delay`` (sleep ``delay_s``), ``corrupt`` (mangle the value passed to
:meth:`FaultInjector.corrupt`).  Each armed spec fires with probability
``rate`` per visit, at most ``max_fires`` times, from one seeded RNG —
so a chaos run replays identically for the same seed.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.errors import ConfigurationError, FaultInjectedError

__all__ = [
    "SITES",
    "FaultInjector",
    "get_injector",
    "set_injector",
    "use_injector",
    "chaos_preset",
]

#: Every site the codebase is instrumented with.
SITES = (
    "store.build",
    "engine.forward",
    "parallel.point",
    "cache.read",
    "registry.load",
    "replica.crash",
)

_MODES = ("raise", "delay", "corrupt")


class _Armed:
    """One armed fault: mode + schedule + fire accounting."""

    __slots__ = ("mode", "rate", "delay_s", "max_fires", "fired")

    def __init__(self, mode: str, rate: float, delay_s: float,
                 max_fires: Optional[int]):
        self.mode = mode
        self.rate = rate
        self.delay_s = delay_s
        self.max_fires = max_fires
        self.fired = 0

    def exhausted(self) -> bool:
        return self.max_fires is not None and self.fired >= self.max_fires


class FaultInjector:
    """Thread-safe, seeded scheduler of raise/delay/corrupt faults.

    Args:
        seed: seeds the per-visit coin flips and the corruption noise;
            two injectors with the same seed and arming produce the
            same schedule.
        sleep: injectable for tests that assert delay behaviour without
            actually waiting.
    """

    def __init__(self, seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep):
        self._rng = random.Random(seed)
        self._noise = np.random.default_rng(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._specs: Dict[str, List[_Armed]] = {}
        self._counts: Dict[str, int] = {}

    # -- arming ---------------------------------------------------------
    def arm(
        self,
        site: str,
        mode: str = "raise",
        rate: float = 1.0,
        delay_s: float = 0.01,
        max_fires: Optional[int] = None,
    ) -> "FaultInjector":
        """Arm one fault at ``site``; returns self for chaining."""
        if mode not in _MODES:
            raise ConfigurationError(f"unknown fault mode {mode!r}")
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("rate must be in [0, 1]")
        with self._lock:
            self._specs.setdefault(site, []).append(
                _Armed(mode, rate, delay_s, max_fires)
            )
        return self

    def disarm(self, site: Optional[str] = None) -> None:
        """Remove armed faults at ``site`` (or everywhere)."""
        with self._lock:
            if site is None:
                self._specs.clear()
            else:
                self._specs.pop(site, None)

    @property
    def armed(self) -> bool:
        return bool(self._specs)

    def counts(self) -> Dict[str, int]:
        """``site -> times a fault actually fired`` (all modes)."""
        with self._lock:
            return dict(self._counts)

    # -- firing ----------------------------------------------------------
    def _draw(self, site: str, modes: tuple) -> List[_Armed]:
        """Coin-flip each armed spec of the wanted modes; count fires."""
        hits: List[_Armed] = []
        with self._lock:
            for spec in self._specs.get(site, ()):
                if spec.mode not in modes or spec.exhausted():
                    continue
                if spec.rate < 1.0 and self._rng.random() >= spec.rate:
                    continue
                spec.fired += 1
                self._counts[site] = self._counts.get(site, 0) + 1
                hits.append(spec)
        return hits

    def fire(self, site: str) -> None:
        """Maybe delay, maybe raise.  No-op unless ``site`` is armed."""
        if not self._specs:          # fast path: nothing armed anywhere
            return
        hits = self._draw(site, ("raise", "delay"))
        for spec in hits:
            if spec.mode == "delay":
                self._sleep(spec.delay_s)
        for spec in hits:
            if spec.mode == "raise":
                raise FaultInjectedError(f"injected fault at {site!r}")

    def corrupt(self, site: str, value):
        """Return ``value`` mangled if a corrupt fault fires, else as-is.

        Arrays get large additive noise (wrong answers, right shape);
        mappings become a schema-breaking stub; everything else becomes
        ``None`` — each a realistic flavour of silent data damage.
        """
        if not self._specs:
            return value
        if not self._draw(site, ("corrupt",)):
            return value
        if isinstance(value, np.ndarray):
            noise = self._noise.normal(0.0, 1.0, size=value.shape)
            scale = 10.0 * (np.abs(value).max() + 1.0)
            return (value + scale * noise).astype(value.dtype, copy=False)
        if isinstance(value, dict):
            return {"__corrupted__": True}
        return None


#: Process-wide injector; nothing armed, so instrumented code pays only
#: an attribute lookup until a test or chaos run arms it.
_injector = FaultInjector()


def get_injector() -> FaultInjector:
    """The process-wide injector consulted by instrumented code."""
    return _injector


def set_injector(injector: FaultInjector) -> FaultInjector:
    """Replace the process-wide injector; returns the previous one."""
    global _injector
    previous = _injector
    _injector = injector
    return previous


@contextmanager
def use_injector(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Temporarily install ``injector`` as the process-wide one."""
    previous = set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)


def chaos_preset(seed: int = 0) -> FaultInjector:
    """An injector armed at every site with modest, survivable rates.

    This is the schedule behind ``repro serve-bench --chaos SEED`` and
    the CI chaos-smoke step: frequent enough that every recovery path
    runs, rare enough that most traffic still completes.
    """
    injector = FaultInjector(seed=seed)
    injector.arm("store.build", mode="raise", rate=0.25)
    injector.arm("engine.forward", mode="raise", rate=0.02)
    injector.arm("engine.forward", mode="delay", rate=0.05, delay_s=0.005)
    injector.arm("parallel.point", mode="raise", rate=0.2)
    injector.arm("cache.read", mode="raise", rate=0.2)
    injector.arm("registry.load", mode="raise", rate=0.2)
    # Real process death, at most once per replica incarnation: the
    # respawned process re-arms from a derived seed, so a soak sees
    # crash/rejoin without replicas dying in a tight loop.
    injector.arm("replica.crash", mode="raise", rate=0.01, max_fires=1)
    return injector
