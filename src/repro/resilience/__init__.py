"""Robustness layer: deadlines, retries, fault injection, degradation.

The ROADMAP's north star is a production-scale serving system; this
subpackage supplies the failure-handling vocabulary the serving engine
(:mod:`repro.serve`) and the parallel sweep executor
(:mod:`repro.parallel`) share:

``RetryPolicy`` / ``retry_call``
    Exponential backoff with full jitter.  Applied to servable builds
    in the :class:`~repro.serve.ModelStore` and to sweep points whose
    worker process dies (the executor rebuilds its pool and resubmits
    unfinished points).

``FaultInjector`` / ``chaos_preset``
    Seeded raise/delay/corrupt faults at named sites
    (:data:`~repro.resilience.faults.SITES`), off by default, armed in
    tests and ``repro serve-bench --chaos`` to prove every recovery
    path actually recovers.

``DegradePolicy``
    Overload shedding via the paper's own dial: past a queue-depth
    watermark, new requests are rerouted to a configured
    lower-precision servable of the same network — trading accuracy
    for energy and throughput instead of rejecting traffic.
    **Deprecated**: now a warn-once shim over
    :meth:`repro.control.AutoTuner.latency_only` — the static
    watermark grew into the closed-loop SLO autotuner in
    :mod:`repro.control` (``docs/control.md``).

Per-request deadlines (``InferenceServer.submit(..., deadline_ms=...)``
raising :class:`~repro.errors.DeadlineExceededError`) live in
:mod:`repro.serve`; this package documents and tests them alongside the
pieces above.  See ``docs/resilience.md``.
"""

from repro.resilience.degrade import DegradePolicy
from repro.resilience.faults import (
    SITES,
    FaultInjector,
    chaos_preset,
    get_injector,
    set_injector,
    use_injector,
)
from repro.resilience.retry import RetryPolicy, retry_call

__all__ = [
    "DegradePolicy",
    "FaultInjector",
    "RetryPolicy",
    "SITES",
    "chaos_preset",
    "get_injector",
    "retry_call",
    "set_injector",
    "use_injector",
]
