"""Backend interface and the shared pipeline -> unit compiler.

A *backend* executes a quantized-inference pipeline (the
``FakeQuantLayer``-interleaved :class:`~repro.nn.network.Sequential`
built by :class:`~repro.core.quantized.QuantizedNetwork`).  All
backends consume the same :func:`compile_units` plan — (layer,
trailing activation-quantizer) pairs tagged with an operation kind —
and differ only in how each unit is executed: the reference backend
calls the layers' own ``forward`` methods, the fused backend runs
single-pass kernels over reusable buffers, and future backends
(threaded, integer-arithmetic, accelerator-sim-backed) slot in behind
the same entry points without touching any caller.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.fake_quant import FakeQuantLayer
from repro.nn.activations import ReLU
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense, Flatten
from repro.nn.module import Module
from repro.nn.network import Sequential
from repro.nn.pooling import AvgPool2D, MaxPool2D

__all__ = ["Backend", "Unit", "compile_units"]

#: Operation kinds a unit can carry.  ``other`` marks layers no fused
#: kernel understands — every backend must still execute them (the
#: fused backend falls back to the layer's own ``forward``).
KINDS = ("dense", "conv", "maxpool", "avgpool", "act", "quant", "reshape", "other")


@dataclass(frozen=True)
class Unit:
    """One schedulable step: a layer plus its trailing activation quant.

    ``index`` is the layer's position in ``pipeline.layers`` — stable
    across calls, which makes it the natural workspace-buffer key.
    ``quant`` is the :class:`FakeQuantLayer` immediately following the
    layer (``None`` when the pipeline doesn't re-quantize this output,
    e.g. after MaxPool/Flatten).
    """

    kind: str
    layer: Module
    quant: Optional[FakeQuantLayer]
    index: int


def _classify(layer: Module) -> str:
    """Exact-type kinds: a subclass may override ``forward``, so it is
    never safe to run it through a kind-specialized kernel."""
    layer_type = type(layer)
    if layer_type is Dense:
        return "dense"
    if layer_type is Conv2D:
        return "conv"
    if layer_type is MaxPool2D:
        return "maxpool"
    if layer_type is AvgPool2D:
        return "avgpool"
    if layer_type is ReLU:
        return "act"
    if layer_type is Flatten:
        return "reshape"
    return "other"


def compile_units(pipeline: Sequential) -> List[Unit]:
    """Group ``pipeline.layers`` into (layer, quant) execution units.

    A :class:`FakeQuantLayer` directly following a layer is absorbed
    into that layer's unit (the fusion seam); a leading or standalone
    one (``quant_in``) becomes its own ``quant`` unit.
    """
    layers = pipeline.layers
    units: List[Unit] = []
    i = 0
    while i < len(layers):
        layer = layers[i]
        if isinstance(layer, FakeQuantLayer):
            units.append(Unit("quant", layer, None, i))
            i += 1
            continue
        quant: Optional[FakeQuantLayer] = None
        if i + 1 < len(layers) and isinstance(layers[i + 1], FakeQuantLayer):
            quant = layers[i + 1]
        units.append(Unit(_classify(layer), layer, quant, i))
        i += 2 if quant is not None else 1
    return units


class Backend(abc.ABC):
    """Executes quantized-inference pipelines.

    Subclasses implement :meth:`run` plus the four per-operation entry
    points (:meth:`dense` / :meth:`conv` / :meth:`pool` / :meth:`act`).
    The entry points always return arrays the caller owns — never a
    view of internal scratch memory — and must be bitwise-equal to the
    corresponding layer's ``forward`` in eval mode.
    """

    #: Registry name; set by subclasses.
    name: str = ""

    # ------------------------------------------------------------------
    # Per-operation entry points
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def dense(self, layer: Dense, x: np.ndarray) -> np.ndarray:
        """Inner product ``x @ W + b`` for one :class:`Dense` layer."""

    @abc.abstractmethod
    def conv(self, layer: Conv2D, x: np.ndarray) -> np.ndarray:
        """2-D convolution for one :class:`Conv2D` layer (NCHW)."""

    @abc.abstractmethod
    def pool(self, layer: Module, x: np.ndarray) -> np.ndarray:
        """Max/avg pooling for one ``_Pool2D`` layer (NCHW)."""

    @abc.abstractmethod
    def act(self, layer: Module, x: np.ndarray) -> np.ndarray:
        """Elementwise nonlinearity for one activation layer."""

    # ------------------------------------------------------------------
    # Whole-pipeline execution
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def run(self, pipeline: Sequential, x: np.ndarray) -> np.ndarray:
        """Forward one batch through ``pipeline`` (respects its mode)."""

    def predict(
        self, pipeline: Sequential, x: np.ndarray, batch_size: int = 128
    ) -> np.ndarray:
        """Batched eval-mode inference, mirroring ``Sequential.predict``."""
        was_training = pipeline.training
        pipeline.eval_mode()
        try:
            outputs = [
                self.run(pipeline, x[i : i + batch_size])
                for i in range(0, x.shape[0], batch_size)
            ]
        finally:
            if was_training:
                pipeline.train_mode()
        return np.concatenate(outputs, axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
