"""Pluggable compute backends for quantized inference.

A backend executes the fake-quant pipeline of a
:class:`~repro.core.quantized.QuantizedNetwork` through the uniform
:class:`~repro.backends.base.Backend` interface (``dense`` / ``conv`` /
``pool`` / ``act`` entry points plus whole-pipeline ``run`` /
``predict``).  Two backends ship:

``reference``
    Layer-by-layer numpy ``forward`` calls — the historical execution
    path and the parity ground truth.

``fused``
    Single-pass :mod:`repro.kernels` routines over preallocated,
    batch-reused buffers; bitwise-equal to ``reference`` for every
    Table III precision and the process default.

Select per call (``qnet.infer(x, backend="reference")``), per network
(``QuantizedNetwork(..., backend=...)``), or globally
(:func:`set_default`, the ``REPRO_BACKEND`` environment variable, or
the ``--backend`` flag on ``repro sweep`` / ``repro profile`` /
``repro serve-bench``).  See ``docs/kernels.md`` for the design and how
to add a backend.
"""

from repro.backends.base import Backend, Unit, compile_units
from repro.backends.fused import FusedBackend
from repro.backends.reference import ReferenceBackend
from repro.backends.registry import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available,
    get,
    get_default,
    register,
    resolve,
    set_default,
    using_backend,
)

__all__ = [
    "Backend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "FusedBackend",
    "ReferenceBackend",
    "Unit",
    "available",
    "compile_units",
    "get",
    "get_default",
    "register",
    "resolve",
    "set_default",
    "using_backend",
]
