"""The reference backend: layer-by-layer numpy forwards.

This is the execution strategy the repo has always used — every layer's
own ``forward`` in pipeline order — packaged behind the
:class:`~repro.backends.base.Backend` interface so it can be selected,
compared against and benchmarked like any other backend.  It is the
ground truth the fused backend's bitwise-parity property tests compare
against.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.module import Module
from repro.nn.network import Sequential

__all__ = ["ReferenceBackend"]


class ReferenceBackend(Backend):
    """Executes every unit through the layer's own ``forward``."""

    name = "reference"

    def dense(self, layer: Dense, x: np.ndarray) -> np.ndarray:
        return layer.forward(x)

    def conv(self, layer: Conv2D, x: np.ndarray) -> np.ndarray:
        return layer.forward(x)

    def pool(self, layer: Module, x: np.ndarray) -> np.ndarray:
        return layer.forward(x)

    def act(self, layer: Module, x: np.ndarray) -> np.ndarray:
        return layer.forward(x)

    def run(self, pipeline: Sequential, x: np.ndarray) -> np.ndarray:
        return pipeline.forward(x)
