"""The fused backend: single-pass kernels over reusable buffers.

Executes each :func:`~repro.backends.base.compile_units` unit through
the :mod:`repro.kernels` fused routines — quantize, matmul/im2col-conv,
pool and ReLU collapsed into mask-based passes writing into
preallocated per-layer :class:`~repro.kernels.workspace.Workspace`
buffers that are reused across batches.  Outputs are bitwise-equal to
the reference backend for every paper precision (property-tested in
``tests/kernels/test_parity.py``).

Thread safety: workspaces are mutable scratch memory, so the backend
keeps one compiled plan (units + workspace) per *(pipeline, thread)*
via a ``threading.local`` of weak pipeline maps.  Concurrent serve
workers running the same frozen pipeline therefore never share a
buffer, preserving the lock-free inference contract of
``QuantizedNetwork.freeze()``.

Fallbacks (always safe, never silent — counted on
``kernels.fused.fallback_units``):

- training mode runs the whole pipeline through ``Sequential.forward``
  (range trackers must observe, layers must cache backward state);
- a layer with an instance-level ``forward`` wrapper (e.g. attached by
  :class:`~repro.obs.hooks.LayerProfiler`) runs through that wrapper;
- a quantizer the kernels cannot reproduce exactly (stochastic
  rounding, custom subclass) runs through its own ``quantize``.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backends.base import Backend, Unit, compile_units
from repro.core.fake_quant import FakeQuantLayer
from repro.errors import ShapeError
from repro.kernels.fused import (
    fusable_quantizer,
    fused_avgpool,
    fused_conv2d,
    fused_dense,
    fused_maxpool,
    fused_quantize,
    fused_relu_quantize,
    to_nchw,
)
from repro.kernels.workspace import Workspace
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.im2col import conv_output_size
from repro.nn.module import Module
from repro.nn.network import Sequential
from repro.nn.pooling import AvgPool2D, MaxPool2D
from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

__all__ = ["FusedBackend"]

#: Unit kinds with a fused kernel.
_FUSED_KINDS = frozenset({"dense", "conv", "maxpool", "avgpool", "act", "quant", "reshape"})


class _Plan:
    """Compiled units + scratch workspace for one (pipeline, thread)."""

    __slots__ = ("layer_ids", "units", "fusable", "workspace")

    def __init__(self, pipeline: Sequential):
        self.layer_ids = tuple(id(layer) for layer in pipeline.layers)
        self.units: List[Unit] = compile_units(pipeline)
        self.fusable = tuple(_unit_fusable(unit) for unit in self.units)
        self.workspace = Workspace()


def _unit_fusable(unit: Unit) -> bool:
    """Static eligibility: kind has a kernel and quantizers are exact."""
    if unit.kind not in _FUSED_KINDS:
        return False
    if unit.kind == "quant":
        return (
            type(unit.layer) is FakeQuantLayer
            and fusable_quantizer(unit.layer.quantizer)
        )
    if unit.quant is not None:
        return (
            type(unit.quant) is FakeQuantLayer
            and fusable_quantizer(unit.quant.quantizer)
        )
    return True


def _wrapped(unit: Unit) -> bool:
    """Instance-level ``forward`` (profiler hook) demands the real call."""
    if "forward" in unit.layer.__dict__:
        return True
    return unit.quant is not None and "forward" in unit.quant.__dict__


def _hint(quant: FakeQuantLayer) -> Optional[float]:
    tracker = quant.tracker
    return tracker.max_abs if tracker.initialized else None


class FusedBackend(Backend):
    """Fused-kernel execution with per-(pipeline, thread) workspaces."""

    name = "fused"

    def __init__(self) -> None:
        self._local = threading.local()
        #: When True, per-unit wall times accumulate for ``kernel_stats``
        #: (used by ``repro profile --backend fused``); not thread-safe,
        #: enable only for single-threaded profiling runs.
        self.profiling = False
        self._stats: Dict[Tuple[int, str], Dict[str, object]] = {}
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------
    def _plans(self) -> "weakref.WeakKeyDictionary[Sequential, _Plan]":
        try:
            return self._local.plans
        except AttributeError:
            plans: "weakref.WeakKeyDictionary[Sequential, _Plan]" = (
                weakref.WeakKeyDictionary()
            )
            self._local.plans = plans
            return plans

    def _plan(self, pipeline: Sequential) -> _Plan:
        plans = self._plans()
        plan = plans.get(pipeline)
        if plan is None or plan.layer_ids != tuple(
            id(layer) for layer in pipeline.layers
        ):
            plan = _Plan(pipeline)
            plans[pipeline] = plan
        return plan

    def workspace_for(self, pipeline: Sequential) -> Workspace:
        """This thread's workspace for ``pipeline`` (for buffer tests)."""
        return self._plan(pipeline).workspace

    # ------------------------------------------------------------------
    # Whole-pipeline execution
    # ------------------------------------------------------------------
    def run(self, pipeline: Sequential, x: np.ndarray) -> np.ndarray:
        if pipeline.training:
            # Trackers must observe and layers must cache backward
            # state — the reference path is the only correct one.
            return pipeline.forward(x)
        plan = self._plan(pipeline)
        metrics = get_metrics()
        with get_tracer().span("kernels.run", backend=self.name):
            out, fallbacks = self._run_units(plan, np.asarray(x))
        metrics.counter("kernels.fused.batches").inc()
        if fallbacks:
            metrics.counter("kernels.fused.fallback_units").inc(fallbacks)
        return out

    def _run_units(self, plan: _Plan, x: np.ndarray) -> Tuple[np.ndarray, int]:
        ws = plan.workspace
        profiling = self.profiling
        fallbacks = 0
        # Ownership state of x: "user" (caller's array — never write,
        # never copy), "fresh" (dead temporary from a fallback forward
        # — writable, caller may keep it), "ws" (workspace buffer —
        # writable, must be copied out before returning, because the
        # next batch overwrites it).  `chwn` tracks whether x is in
        # channel-major (C, H, W, N) layout.
        state = "user"
        chwn = False
        for unit, fusable in zip(plan.units, plan.fusable):
            started = time.perf_counter() if profiling else 0.0
            fused = fusable and not _wrapped(unit)
            if not fused:
                if chwn:
                    x = to_nchw(x, ws, ("fallback", unit.index))
                    chwn = False
                    state = "ws"
                prev = x
                x = unit.layer.forward(x)
                if unit.quant is not None:
                    x = unit.quant.forward(x)
                # A forward that handed back the same array or a view
                # (Flatten, identity quant) inherits prev's ownership;
                # only a genuinely new allocation is a dead temporary.
                if x is not prev and x.base is None:
                    state = "fresh"
                fallbacks += 1
            else:
                x, state, chwn = self._run_fused(unit, x, ws, state, chwn)
            if profiling:
                self._record(unit, fused, time.perf_counter() - started)
        if chwn:
            x = to_nchw(x, ws, "final")
            state = "ws"
        return (x.copy() if state == "ws" else x), fallbacks

    def _run_fused(
        self, unit: Unit, x: np.ndarray, ws: Workspace, state: str, chwn: bool
    ) -> Tuple[np.ndarray, str, bool]:
        kind, layer, key = unit.kind, unit.layer, unit.index
        writable = state != "user"
        if kind == "dense":
            if x.ndim != 2 or x.shape[1] != layer.in_features:
                raise ShapeError(
                    f"{layer.name}: expected (N, {layer.in_features}) input, "
                    f"got {x.shape}"
                )
            bias = layer.bias.data if layer.bias is not None else None
            out = fused_dense(x, layer.weight.data, bias, ws, key)
            return self._quant_tail(unit, out, ws, key), "ws", False
        if kind == "conv":
            in_c = x.shape[0] if chwn else (x.shape[1] if x.ndim == 4 else -1)
            if x.ndim != 4 or in_c != layer.in_channels:
                raise ShapeError(
                    f"{layer.name}: expected NCHW input with "
                    f"C={layer.in_channels}, got shape {x.shape}"
                )
            h, w = (x.shape[1], x.shape[2]) if chwn else (x.shape[2], x.shape[3])
            out_h = conv_output_size(h, layer.kernel_size, layer.stride, layer.padding)
            out_w = conv_output_size(w, layer.kernel_size, layer.stride, layer.padding)
            bias = layer.bias.data if layer.bias is not None else None
            out = fused_conv2d(
                x, layer.weight.data, bias, layer.stride, layer.padding,
                out_h, out_w, ws, key, chwn_in=chwn,
            )
            return self._quant_tail(unit, out, ws, key), "ws", True
        if kind in ("maxpool", "avgpool"):
            if x.ndim != 4:
                raise ShapeError(
                    f"{layer.name}: expected NCHW input, got {x.shape}"
                )
            h, w = (x.shape[1], x.shape[2]) if chwn else (x.shape[2], x.shape[3])
            out_h = conv_output_size(
                h, layer.kernel_size, layer.stride, layer.padding, layer.ceil_mode
            )
            out_w = conv_output_size(
                w, layer.kernel_size, layer.stride, layer.padding, layer.ceil_mode
            )
            kernel_fn = fused_maxpool if kind == "maxpool" else fused_avgpool
            out = kernel_fn(
                x, layer.kernel_size, layer.stride, layer.padding,
                out_h, out_w, ws, key, chwn=chwn,
            )
            return self._quant_tail(unit, out, ws, key), "ws", chwn
        if kind == "act":
            quant = unit.quant.quantizer if unit.quant is not None else None
            hint = _hint(unit.quant) if unit.quant is not None else None
            out = fused_relu_quantize(quant, x, hint, ws, key, in_place=writable)
            return out, (state if out is x else "ws"), chwn
        if kind == "quant":
            out = fused_quantize(
                layer.quantizer, x, _hint(layer), ws, key, in_place=writable
            )
            return out, (state if out is x else "ws"), chwn
        # reshape (Flatten)
        if chwn:
            c, h, w, n = x.shape
            flat = ws.get((key, "flat"), (n, c * h * w), np.float32)
            np.copyto(flat.reshape(n, c, h, w), x.transpose(3, 0, 1, 2))
            return flat, "ws", False
        # a plain view: ownership follows the input
        return x.reshape(x.shape[0], -1), state, False

    def _quant_tail(
        self, unit: Unit, out: np.ndarray, ws: Workspace, key: int
    ) -> np.ndarray:
        if unit.quant is None:
            return out
        # `out` is always this unit's own scratch buffer: quantize it
        # where it sits
        return fused_quantize(
            unit.quant.quantizer, out, _hint(unit.quant), ws, (key, "post"),
            in_place=True,
        )

    # ------------------------------------------------------------------
    # Per-operation entry points (each returns a caller-owned array)
    # ------------------------------------------------------------------
    def _scratch(self) -> Workspace:
        try:
            return self._local.scratch
        except AttributeError:
            scratch = self._local.scratch = Workspace()
            return scratch

    def dense(self, layer: Dense, x: np.ndarray) -> np.ndarray:
        if type(layer) is not Dense:
            return layer.forward(x)
        bias = layer.bias.data if layer.bias is not None else None
        return fused_dense(x, layer.weight.data, bias, self._scratch(), "dense").copy()

    def conv(self, layer: Conv2D, x: np.ndarray) -> np.ndarray:
        if type(layer) is not Conv2D:
            return layer.forward(x)
        out_h = conv_output_size(
            x.shape[2], layer.kernel_size, layer.stride, layer.padding
        )
        out_w = conv_output_size(
            x.shape[3], layer.kernel_size, layer.stride, layer.padding
        )
        bias = layer.bias.data if layer.bias is not None else None
        out = fused_conv2d(
            x, layer.weight.data, bias, layer.stride, layer.padding,
            out_h, out_w, self._scratch(), "conv",
        )
        return out.transpose(3, 0, 1, 2).copy()

    def pool(self, layer: Module, x: np.ndarray) -> np.ndarray:
        if type(layer) not in (MaxPool2D, AvgPool2D):
            return layer.forward(x)
        out_h = conv_output_size(
            x.shape[2], layer.kernel_size, layer.stride, layer.padding,
            layer.ceil_mode,
        )
        out_w = conv_output_size(
            x.shape[3], layer.kernel_size, layer.stride, layer.padding,
            layer.ceil_mode,
        )
        kernel_fn = fused_maxpool if type(layer) is MaxPool2D else fused_avgpool
        return kernel_fn(
            x, layer.kernel_size, layer.stride, layer.padding,
            out_h, out_w, self._scratch(), "pool",
        ).copy()

    def act(self, layer: Module, x: np.ndarray) -> np.ndarray:
        from repro.nn.activations import ReLU

        if type(layer) is not ReLU:
            return layer.forward(x)
        return fused_relu_quantize(None, x, None, self._scratch(), "act").copy()

    # ------------------------------------------------------------------
    # Profiling support (repro profile --backend fused)
    # ------------------------------------------------------------------
    def _record(self, unit: Unit, fused: bool, elapsed: float) -> None:
        label = unit.layer.name
        if unit.quant is not None:
            label += f"+{unit.quant.name}"
        with self._stats_lock:
            entry = self._stats.get((unit.index, label))
            if entry is None:
                entry = {
                    "index": unit.index,
                    "unit": label,
                    "kind": unit.kind,
                    "fused": fused,
                    "calls": 0,
                    "seconds": 0.0,
                }
                self._stats[(unit.index, label)] = entry
            entry["calls"] += 1
            entry["seconds"] += elapsed
            entry["fused"] = entry["fused"] and fused

    def kernel_stats(self) -> List[Dict[str, object]]:
        """Per-unit timing rows collected while ``profiling`` was True."""
        with self._stats_lock:
            return [dict(entry) for _, entry in sorted(self._stats.items())]

    def reset_stats(self) -> None:
        with self._stats_lock:
            self._stats.clear()
