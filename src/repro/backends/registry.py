"""Backend registry: name -> backend instance, plus default selection.

Selection precedence, strongest first:

1. an explicit ``backend=`` argument (name or :class:`Backend`
   instance) on the call — ``QuantizedNetwork.infer(x, backend=...)``,
   ``freeze(backend=...)``;
2. a process-wide override installed with :func:`set_default` (the
   ``--backend`` CLI flag uses this);
3. the ``REPRO_BACKEND`` environment variable — inherited by sweep
   worker processes, which is how ``repro sweep --backend`` reaches a
   ``ProcessPoolExecutor``;
4. the built-in default, ``"fused"`` (safe because the fused backend is
   bitwise-equal to the reference path for every paper precision).
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.backends.base import Backend
from repro.backends.fused import FusedBackend
from repro.backends.reference import ReferenceBackend
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "available",
    "get",
    "get_default",
    "register",
    "resolve",
    "set_default",
    "using_backend",
]

#: Environment variable consulted when no explicit default is set.
ENV_VAR = "REPRO_BACKEND"

#: Built-in default backend name.
DEFAULT_BACKEND = "fused"

_lock = threading.Lock()
_factories: Dict[str, Callable[[], Backend]] = {
    "reference": ReferenceBackend,
    "fused": FusedBackend,
}
_instances: Dict[str, Backend] = {}
_default_override: Optional[str] = None


def register(name: str, factory: Callable[[], Backend]) -> None:
    """Add (or replace) a backend under ``name``.

    ``factory`` is called once, lazily, on the first :func:`get`;
    re-registering drops any existing instance so the next ``get``
    builds from the new factory.
    """
    if not name:
        raise ConfigurationError("backend name must be non-empty")
    with _lock:
        _factories[name] = factory
        _instances.pop(name, None)


def available() -> List[str]:
    """Registered backend names, sorted."""
    with _lock:
        return sorted(_factories)


def get(name: str) -> Backend:
    """The (lazily constructed, shared) backend registered as ``name``."""
    with _lock:
        if name not in _factories:
            raise ConfigurationError(
                f"unknown backend {name!r}; available: "
                f"{', '.join(sorted(_factories))}"
            )
        instance = _instances.get(name)
        if instance is None:
            instance = _instances[name] = _factories[name]()
            if not instance.name:
                instance.name = name
        return instance


def get_default() -> str:
    """The backend name used when no explicit backend is passed."""
    if _default_override is not None:
        return _default_override
    return os.environ.get(ENV_VAR) or DEFAULT_BACKEND


def set_default(name: Optional[str]) -> None:
    """Install (or with ``None`` clear) the process-wide default."""
    global _default_override
    if name is not None:
        with _lock:
            if name not in _factories:
                raise ConfigurationError(
                    f"unknown backend {name!r}; available: "
                    f"{', '.join(sorted(_factories))}"
                )
    _default_override = name


def resolve(backend: Union[Backend, str, None] = None) -> Backend:
    """Normalize an optional backend argument to a :class:`Backend`."""
    if backend is None:
        return get(get_default())
    if isinstance(backend, str):
        return get(backend)
    if isinstance(backend, Backend):
        return backend
    raise ConfigurationError(
        f"backend must be a name or Backend instance, got {type(backend).__name__}"
    )


@contextlib.contextmanager
def using_backend(name: str) -> Iterator[Backend]:
    """Temporarily make ``name`` the process-wide default backend."""
    previous = _default_override
    set_default(name)
    try:
        yield get(name)
    finally:
        set_default(previous)
