"""Every example script must at least parse and import cleanly.

(Full example runs are exercised manually / in CI with longer budgets;
this guards against bit-rot of the example code paths.)
"""

import ast
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLE_FILES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 3, "the paper repo ships at least 3 examples"
    assert "quickstart.py" in EXAMPLE_FILES


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_parses(name):
    path = os.path.join(EXAMPLES_DIR, name)
    with open(path) as handle:
        source = handle.read()
    tree = ast.parse(source, filename=name)
    # every example is documented and runnable as a script
    assert ast.get_docstring(tree), f"{name} needs a module docstring"
    assert "__main__" in source, f"{name} should be runnable as a script"


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_imports_resolve(name):
    """Compile the example and import the repro modules it references."""
    path = os.path.join(EXAMPLES_DIR, name)
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=name)
    imported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            imported.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.module:
            imported.add(node.module)
    repro_modules = [mod for mod in imported if mod.startswith("repro")]
    assert repro_modules, f"{name} should exercise the repro API"
    for module in repro_modules:
        __import__(module)
