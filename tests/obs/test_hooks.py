"""FLOP / byte-traffic models and the layer profiler."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ConfigurationError
from repro.obs import LayerProfiler, MetricsRegistry, layer_bytes, layer_flops
from tests.conftest import make_tiny_cnn


def test_conv_flops_match_hand_count():
    conv = nn.Conv2D(1, 2, kernel_size=3, name="conv", rng=np.random.default_rng(0))
    # 8x8 input, no padding -> 6x6 output; per output pixel one
    # 1x3x3 window per output channel.
    macs = 2 * 6 * 6 * (1 * 3 * 3)
    assert conv.macs((1, 8, 8)) == macs
    assert layer_flops(conv, (1, 8, 8)) == 2 * macs
    assert layer_flops(conv, (1, 8, 8), batch=4) == 2 * macs * 4


def test_dense_flops_match_hand_count():
    dense = nn.Dense(4, 3, name="fc", rng=np.random.default_rng(0))
    assert layer_flops(dense, (4,)) == 2 * 4 * 3
    assert layer_flops(dense, (4,), batch=2) == 2 * 4 * 3 * 2


def test_elementwise_layers_cost_one_flop_per_output():
    relu = nn.ReLU(name="relu")
    assert layer_flops(relu, (2, 6, 6)) == 72
    assert layer_flops(relu, (2, 6, 6), batch=3) == 216


def test_flatten_is_free():
    flatten = nn.Flatten(name="flatten")
    assert layer_flops(flatten, (2, 6, 6), batch=8) == 0


def test_dense_bytes_match_hand_count():
    dense = nn.Dense(4, 3, name="fc", rng=np.random.default_rng(0))
    # weights 4*3 + bias 3 = 15 params; 4 in + 3 out activations.
    assert layer_bytes(dense, (4,), batch=1,
                       weight_bits=8, activation_bits=8) == 7 + 15
    assert layer_bytes(dense, (4,), batch=2,
                       weight_bits=8, activation_bits=8) == 14 + 15
    # 32-bit everything scales activations and weights by 4
    assert layer_bytes(dense, (4,), batch=1,
                       weight_bits=32, activation_bits=32) == 4 * (7 + 15)


def test_profiler_counts_forward_work():
    network = make_tiny_cnn()
    network.eval_mode()
    images = np.random.default_rng(0).standard_normal(
        (6, 1, 28, 28)
    ).astype(np.float32)
    with LayerProfiler(network) as profiler:
        network.forward(images)
    stats = {s.name: s for s in profiler.stats()}
    assert set(stats) == {layer.name for layer in network.layers}
    conv1 = stats["conv1"]
    assert conv1.calls == 1
    assert conv1.samples == 6
    assert conv1.forward_s > 0.0
    assert conv1.flops == 2 * network.layers[0].macs((1, 28, 28)) * 6
    assert profiler.total_flops() == sum(s.flops for s in profiler.stats())
    assert profiler.total_bytes() > 0


def test_profiler_detach_restores_methods():
    network = make_tiny_cnn()
    profiler = LayerProfiler(network)
    profiler.attach()
    assert "forward" in network.layers[0].__dict__
    profiler.detach()
    for layer in network.layers:
        assert "forward" not in layer.__dict__
        assert "backward" not in layer.__dict__
    # detaching twice is harmless
    profiler.detach()


def test_profiler_times_backward_in_training():
    network = make_tiny_cnn()
    rng = np.random.default_rng(0)
    images = rng.standard_normal((4, 1, 28, 28)).astype(np.float32)
    network.train_mode()
    with LayerProfiler(network) as profiler:
        logits = network.forward(images)
        network.backward(np.ones_like(logits))
    for stats in profiler.stats():
        assert stats.backward_calls == 1
        assert stats.backward_s >= 0.0


def test_profiler_rejects_layerless_object():
    with pytest.raises(ConfigurationError):
        LayerProfiler(object())
    with pytest.raises(ConfigurationError):
        LayerProfiler(make_tiny_cnn()).attach().attach()


def test_annotate_adds_extra_column():
    network = make_tiny_cnn()
    network.eval_mode()
    images = np.zeros((1, 1, 28, 28), dtype=np.float32)
    with LayerProfiler(network) as profiler:
        network.forward(images)
    profiler.annotate("quant_rms", {"conv1": 0.0123, "ip1": 0.0456})
    stats = {s.name: s for s in profiler.stats()}
    assert stats["conv1"].extra["quant_rms"] == 0.0123
    assert "quant_rms" not in stats["relu1"].extra
    table = profiler.table()
    assert "quant_rms" in table
    assert "0.01230" in table
    assert "TOTAL" in table
    assert stats["conv1"].as_dict()["quant_rms"] == 0.0123


def test_profiler_feeds_metrics_registry():
    registry = MetricsRegistry()
    network = make_tiny_cnn()
    network.eval_mode()
    images = np.zeros((2, 1, 28, 28), dtype=np.float32)
    with LayerProfiler(network, metrics=registry) as profiler:
        network.forward(images)
        network.forward(images)
    snap = registry.snapshot()
    assert snap["histograms"]["profile.forward_ms.conv1"]["count"] == 2
    assert profiler.stats()[0].calls == 2


def test_byte_model_shrinks_with_bit_width():
    network = make_tiny_cnn()
    network.eval_mode()
    images = np.zeros((1, 1, 28, 28), dtype=np.float32)
    totals = {}
    for bits in (32, 8):
        with LayerProfiler(network, weight_bits=bits,
                           activation_bits=bits) as profiler:
            network.forward(images)
        totals[bits] = profiler.total_bytes()
    assert totals[8] * 4 == pytest.approx(totals[32], rel=0.01)
