"""Tracer spans: nesting, tags, thread-safety, sinks, no-op path."""

import json
import threading

from repro.obs import ConsoleTableSink, JsonlSink, Tracer, get_tracer, set_tracer


def test_span_records_name_and_duration():
    tracer = Tracer()
    with tracer.span("work"):
        pass
    records = tracer.records()
    assert len(records) == 1
    record = records[0]
    assert record.name == "work"
    assert record.duration_s >= 0.0
    assert record.depth == 0
    assert record.parent is None


def test_nested_spans_track_depth_and_parent():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("middle"):
            with tracer.span("inner"):
                pass
    by_name = {r.name: r for r in tracer.records()}
    assert by_name["outer"].depth == 0
    assert by_name["middle"].depth == 1
    assert by_name["middle"].parent == "outer"
    assert by_name["inner"].depth == 2
    assert by_name["inner"].parent == "middle"
    # completion order is innermost first
    assert [r.name for r in tracer.records()] == ["inner", "middle", "outer"]


def test_sibling_spans_share_parent():
    tracer = Tracer()
    with tracer.span("parent"):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
    by_name = {r.name: r for r in tracer.records()}
    assert by_name["first"].parent == "parent"
    assert by_name["second"].parent == "parent"
    assert by_name["first"].depth == by_name["second"].depth == 1


def test_tags_from_kwargs_and_tag_method():
    tracer = Tracer()
    with tracer.span("sweep.precision", spec="fixed8") as span:
        span.tag(accuracy=0.97)
    (record,) = tracer.records()
    assert record.tags == {"spec": "fixed8", "accuracy": 0.97}
    event = record.to_event()
    assert event["tag.spec"] == "fixed8"
    assert event["name"] == "sweep.precision"


def test_disabled_tracer_is_shared_noop():
    tracer = Tracer(enabled=False)
    first = tracer.span("a", x=1)
    second = tracer.span("b")
    assert first is second  # one shared singleton, no allocation
    with first:
        pass
    assert tracer.records() == []
    tracer.enable()
    with tracer.span("c"):
        pass
    assert len(tracer.records()) == 1


def test_records_filter_and_reset():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("a"):
            pass
    with tracer.span("b"):
        pass
    assert len(tracer.records("a")) == 3
    assert len(tracer.records("b")) == 1
    summary = tracer.snapshot()
    assert summary["a"]["count"] == 3
    assert summary["a"]["total_s"] >= summary["a"]["max_s"]
    tracer.reset()
    assert tracer.records() == []


def test_max_records_bounds_memory():
    tracer = Tracer(max_records=5)
    for index in range(12):
        with tracer.span(f"s{index}"):
            pass
    records = tracer.records()
    assert len(records) == 5
    assert [r.name for r in records] == ["s7", "s8", "s9", "s10", "s11"]


def test_thread_safety_of_nesting_and_recording():
    tracer = Tracer()
    errors = []

    def worker(index: int) -> None:
        try:
            for _ in range(50):
                with tracer.span(f"outer{index}"):
                    with tracer.span(f"inner{index}"):
                        pass
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(tracer.records()) == 4 * 50 * 2
    for index in range(4):
        # each thread has its own stack: outer spans stay top-level
        for record in tracer.records(f"outer{index}"):
            assert record.depth == 0
        for record in tracer.records(f"inner{index}"):
            assert record.depth == 1
            assert record.parent == f"outer{index}"


def test_jsonl_sink_receives_every_span(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with JsonlSink(path) as sink:
        tracer = Tracer(sinks=[sink])
        with tracer.span("a", spec="fixed8"):
            with tracer.span("b"):
                pass
        assert sink.emitted == 2
    lines = [json.loads(line) for line in open(path)]
    assert [line["name"] for line in lines] == ["b", "a"]
    assert lines[1]["tag.spec"] == "fixed8"


def test_console_sink_renders_table():
    sink = ConsoleTableSink()
    tracer = Tracer()
    tracer.add_sink(sink)
    with tracer.span("alpha"):
        pass
    table = sink.render()
    assert "name" in table and "duration_s" in table
    assert "alpha" in table
    sink.flush()  # clears the buffer
    assert sink.events() == []


def test_default_tracer_swap_round_trip():
    original = get_tracer()
    assert original.enabled is False  # zero-cost until configured
    replacement = Tracer()
    try:
        previous = set_tracer(replacement)
        assert previous is original
        assert get_tracer() is replacement
    finally:
        set_tracer(original)
    assert get_tracer() is original
