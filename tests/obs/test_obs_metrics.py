"""Counters, gauges, windowed histograms and the registry snapshot."""

import math
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import Histogram, MetricsRegistry, get_metrics, set_metrics


def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("events")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ConfigurationError):
        counter.inc(-1)


def test_gauge_set_add_and_nan_default():
    registry = MetricsRegistry()
    gauge = registry.gauge("loss")
    assert math.isnan(gauge.value)
    gauge.add(2.0)  # add from the nan default starts at zero
    assert gauge.value == 2.0
    gauge.set(0.25)
    assert gauge.value == 0.25


def test_histogram_percentiles_match_numpy():
    histogram = Histogram("latency")
    values = list(range(1, 101))
    for value in values:
        histogram.observe(value)
    snap = histogram.snapshot()
    array = np.asarray(values, dtype=np.float64)
    assert snap["count"] == 100
    assert snap["sum"] == float(array.sum())
    assert snap["mean"] == pytest.approx(array.mean())
    assert snap["min"] == 1.0
    assert snap["max"] == 100.0
    assert snap["p50"] == np.percentile(array, 50)
    assert snap["p95"] == np.percentile(array, 95)
    assert snap["p99"] == np.percentile(array, 99)


def test_histogram_window_rolls_but_totals_keep_running():
    histogram = Histogram("rolled", window=4)
    for value in range(1, 11):  # 1..10; window holds 7,8,9,10
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 10          # over everything ever observed
    assert snap["sum"] == 55.0
    assert snap["min"] == 1.0           # running extrema survive the roll
    assert snap["max"] == 10.0
    assert snap["p50"] == np.percentile([7.0, 8.0, 9.0, 10.0], 50)


def test_empty_histogram_snapshot_is_zeros():
    snap = Histogram("empty").snapshot()
    assert snap == {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_histogram_rejects_bad_window():
    with pytest.raises(ConfigurationError):
        Histogram("bad", window=0)


def test_registry_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    assert registry.counter("c") is registry.counter("c")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_registry_snapshot_structure_and_reset():
    registry = MetricsRegistry()
    registry.counter("done").inc(3)
    registry.gauge("depth").set(7)
    registry.histogram("ms").observe(1.5)
    snap = registry.snapshot()
    assert set(snap) == {"counters", "gauges", "histograms"}
    assert snap["counters"]["done"] == 3.0
    assert snap["gauges"]["depth"] == 7.0
    assert snap["histograms"]["ms"]["count"] == 1
    registry.reset()
    empty = registry.snapshot()
    assert empty == {"counters": {}, "gauges": {}, "histograms": {}}


def test_concurrent_observations_are_not_lost():
    registry = MetricsRegistry()

    def worker() -> None:
        for _ in range(200):
            registry.counter("hits").inc()
            registry.histogram("h").observe(1.0)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter("hits").value == 800
    assert registry.histogram("h").count == 800


def test_default_registry_swap_round_trip():
    original = get_metrics()
    replacement = MetricsRegistry()
    try:
        previous = set_metrics(replacement)
        assert previous is original
        assert get_metrics() is replacement
    finally:
        set_metrics(original)
    assert get_metrics() is original
