"""End-to-end observability: trainer, sweep and serving stats land in
one registry snapshot, with spans nesting across subsystems."""

import numpy as np
import pytest

from repro import nn, obs
from repro.core.sweep import PrecisionSweep, SweepConfig
from repro.serve.stats import ServerStats
from tests.conftest import make_tiny_cnn


@pytest.fixture
def observed():
    """Fresh tracer + registry installed as the process defaults."""
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    old_tracer = obs.set_tracer(tracer)
    old_metrics = obs.set_metrics(registry)
    try:
        yield tracer, registry
    finally:
        obs.set_tracer(old_tracer)
        obs.set_metrics(old_metrics)


def _fit_tiny(split, epochs=2):
    network = make_tiny_cnn()
    trainer = nn.Trainer(
        network,
        nn.SGD(network.parameters(), lr=0.01, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(0),
    )
    trainer.fit(
        split.train.images, split.train.labels,
        split.val.images, split.val.labels,
        epochs=epochs,
    )
    return trainer


def test_fit_produces_spans_and_metrics(observed, tiny_digits):
    tracer, registry = observed
    _fit_tiny(tiny_digits, epochs=2)

    fit_spans = tracer.records("trainer.fit")
    epoch_spans = tracer.records("trainer.epoch")
    assert len(fit_spans) == 1
    assert len(epoch_spans) == 2
    assert all(span.parent == "trainer.fit" for span in epoch_spans)
    assert fit_spans[0].duration_s >= sum(s.duration_s for s in epoch_spans) * 0.5

    snap = registry.snapshot()
    assert snap["counters"]["trainer.epochs"] == 2
    assert snap["histograms"]["trainer.epoch_s"]["count"] == 2
    assert 0.0 <= snap["gauges"]["trainer.train_accuracy"] <= 1.0
    assert snap["gauges"]["trainer.throughput_sps"] > 0
    assert 0.0 <= snap["gauges"]["trainer.val_accuracy"] <= 1.0


def test_sweep_spans_tagged_with_precision_key(observed, tiny_digits):
    tracer, registry = observed
    sweep = PrecisionSweep(
        builder=make_tiny_cnn,
        split=tiny_digits,
        config=SweepConfig(float_epochs=1, qat_epochs=0,
                           calibration_samples=32),
    )
    result = sweep.run_precision("fixed8")

    spans = tracer.records("sweep.precision")
    assert len(spans) == 1
    assert spans[0].tags == {"spec": "fixed8"}
    # the float-baseline fit ran inside the sweep span
    fit_spans = tracer.records("trainer.fit")
    assert fit_spans and fit_spans[0].parent == "sweep.precision"

    snap = registry.snapshot()
    assert snap["counters"]["sweep.precisions"] == 1
    assert snap["gauges"]["sweep.accuracy.fixed8"] == result.accuracy
    assert snap["gauges"]["sweep.converged.fixed8"] == float(result.converged)


def test_trainer_sweep_and_serve_share_one_snapshot(observed, tiny_digits):
    _, registry = observed
    _fit_tiny(tiny_digits, epochs=1)
    stats = ServerStats()  # picks up the installed default registry
    stats.record_batch(4, queue_depth=1)
    stats.record_completion(latency_ms=2.0, queue_ms=0.5, energy_uj=1.25)

    snap = registry.snapshot()
    assert snap["counters"]["trainer.epochs"] == 1
    assert snap["counters"]["serve.completed"] == 1
    assert snap["counters"]["serve.energy_uj"] == 1.25
    assert snap["histograms"]["serve.latency_ms"]["count"] == 1


def test_qat_tracks_per_layer_quant_error(observed, tiny_digits):
    from repro.core.qat import QATTrainer
    from repro.core.quantized import QuantizedNetwork

    _, registry = observed
    network = make_tiny_cnn()
    qnet = QuantizedNetwork(network, "fixed8")
    qnet.calibrate(tiny_digits.train.images[:32])
    trainer = QATTrainer(
        qnet,
        nn.SGD(network.parameters(), lr=0.005, momentum=0.9),
        batch_size=32,
        rng=np.random.default_rng(1),
    )
    trainer.evaluate(tiny_digits.test.images, tiny_digits.test.labels)

    gauges = registry.snapshot()["gauges"]
    rms_gauges = {k: v for k, v in gauges.items()
                  if k.startswith("qat.weight_rms.")}
    weight_names = {p.name for p in network.weight_parameters()}
    assert {k.replace("qat.weight_rms.", "") for k in rms_gauges} == weight_names
    # shadow (full-precision) weights were resident, so 8-bit error is
    # small but nonzero
    assert all(0.0 < v < 0.1 for v in rms_gauges.values())


def test_disabled_default_tracer_records_nothing(tiny_digits):
    # without set_tracer, the process default stays disabled
    baseline = obs.get_tracer()
    assert baseline.enabled is False
    before = len(baseline.records())
    _fit_tiny(tiny_digits, epochs=1)
    assert len(baseline.records()) == before
